"""A1 (ablation) — what the evaluator's optimizations buy.

The engine's three throughput-critical design choices are (1) semi-naive
delta evaluation with exactly-once firing, (2) cross-step activity
gating (a rule is only re-seeded when a relation it reads changed), and
(3) compiled join plans (rules pre-compiled into index-probing closures
at install time, see docs/EVALUATOR.md).  ``compile_plans=False`` falls
back to the AST-walking interpreter; ``naive=True`` disables all three.

Workload: grow a transitive closure one edge per timestep (the shape of
every recursive view in BOOM-FS, e.g. ``fqpath``) and count work.  The
workload is fully deterministic — naive re-evaluation is unsound for
programs calling nondeterministic builtins like ``f_newid()`` (each naive
round would mint fresh ids and the fixpoint diverges), which is itself a
finding this ablation documents.
"""

import time

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.overlog import OverlogRuntime

EDGES = 32

PROGRAM = """
program tc;
define(edge, keys(0, 1), {Int, Int});
define(reach, keys(0, 1), {Int, Int});
reach(X, Y) :- edge(X, Y);
reach(X, Z) :- edge(X, Y), reach(Y, Z);
"""


def run_one(naive: bool = False, compile_plans: bool = True):
    rt = OverlogRuntime(PROGRAM, naive=naive, compile_plans=compile_plans)
    start = time.perf_counter()
    for i in range(EDGES):
        rt.insert("edge", (i, i + 1))
        rt.tick()
    wall = time.perf_counter() - start
    paths = len(rt.rows("reach"))
    assert paths == EDGES * (EDGES + 1) // 2
    return {"wall_ms": wall * 1000, "derivations": rt.total_derivations}


def run_experiment():
    return {
        "compiled plans (default)": run_one(),
        "semi-naive interpreter": run_one(compile_plans=False),
        "naive fixpoint": run_one(naive=True),
    }


def build_report(results) -> str:
    default = results["compiled plans (default)"]
    rows = [
        [
            name,
            r["derivations"],
            round(r["wall_ms"], 1),
            f'{r["wall_ms"] / default["wall_ms"]:.1f}x',
        ]
        for name, r in results.items()
    ]
    table = render_table(
        ["evaluator", "derivations", "host ms", "relative"],
        rows,
        title=(
            f"A1 (ablation) -- evaluation strategy: {EDGES}-edge chain, "
            "one edge per timestep"
        ),
    )
    return table + (
        "\nNaive evaluation re-derives the whole closure on every step;\n"
        "incremental semi-naive evaluation is what keeps per-operation cost\n"
        "bounded as recursive views (like BOOM-FS's fqpath) grow, and\n"
        "compiling rules into cached join plans removes the AST walk from\n"
        "the remaining hot path.  Naive mode is also unsound for rules\n"
        "using f_newid()/f_uid() — the exactly-once firing discipline is a\n"
        "correctness feature, not just an optimization."
    )


def test_a1_incremental_eval(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a1_incremental_eval", report)
    write_json_report("a1_incremental_eval", results)
    compiled = results["compiled plans (default)"]
    interpreted = results["semi-naive interpreter"]
    naive = results["naive fixpoint"]
    assert compiled["wall_ms"] < interpreted["wall_ms"]
    assert compiled["wall_ms"] < naive["wall_ms"]
    # All three evaluators reach the same fixpoint with the same number of
    # materialized derivations.
    assert compiled["derivations"] == interpreted["derivations"]
    assert compiled["derivations"] == naive["derivations"]
