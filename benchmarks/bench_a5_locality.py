"""A5 (ablation) — data-locality scheduling on/off.

BOOM-MR's FIFO port includes Hadoop's data-locality preference (rules
fl1–fl4 in boom_mr.olg): a heartbeating tracker first receives a map
whose input chunk lives on its machine.  We run the same wordcount with
locality hints enabled and disabled and report cross-machine traffic and
job time.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.mapreduce import (
    JobRunner,
    JobSpec,
    build_mr_cluster,
    make_input_files,
    wordcount_map,
    wordcount_reduce,
)


def run_one(use_locality: bool):
    mr = build_mr_cluster(num_trackers=6, seed=21)
    runner = JobRunner(mr)
    datasets = make_input_files(6000, 12, seed=21)
    paths = runner.stage_inputs("/in", datasets)
    spec = JobSpec(0, paths, 4, wordcount_map, wordcount_reduce, "/out")
    remote_before = mr.cluster.network.stats.remote_bytes
    result = runner.run_job(spec, use_locality=use_locality)
    remote_mb = (mr.cluster.network.stats.remote_bytes - remote_before) / 1e6
    jt = mr.jobtracker
    local_sets: dict[tuple, set] = {}
    for j, t, addr in jt.runtime.rows("task_loc"):
        local_sets.setdefault((j, t), set()).add(addr)
    local = sum(
        1
        for j, t, a, tracker, _, _ in jt.attempts(result.job_id)
        if t < 1_000_000 and a == 0 and tracker in local_sets.get((j, t), set())
    )
    return {
        "duration": result.duration_ms,
        "remote_mb": remote_mb,
        "local_maps": local,
    }


def run_experiment():
    return {
        "locality on": run_one(True),
        "locality off": run_one(False),
    }


def build_report(results) -> str:
    rows = [
        [name, f"{r['local_maps']}/12", round(r["remote_mb"], 2), r["duration"]]
        for name, r in results.items()
    ]
    table = render_table(
        ["scheduler", "data-local maps", "cross-machine MB", "job ms"],
        rows,
        title="A5 (ablation) -- data-locality rules, wordcount 12 maps / 6 nodes",
    )
    return table + (
        "\nFour extra Overlog rules (fl1-fl4) recover Hadoop's locality\n"
        "preference: most maps read input from their own machine, cutting\n"
        "cross-machine shuffle-in traffic."
    )


def test_a5_locality(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a5_locality", report)
    write_json_report("a5_locality", results, seed=21)
    on, off = results["locality on"], results["locality off"]
    assert on["local_maps"] > off["local_maps"] or on["remote_mb"] < off["remote_mb"]
    assert on["remote_mb"] < off["remote_mb"]
