"""A2 (ablation) — chunk size vs data-path performance.

BOOM-FS inherits HDFS's chunked data plane; the chunk size trades
per-chunk metadata round-trips against transfer pipelining.  We write and
read a fixed 1 MiB file at several chunk sizes over a bandwidth-modelled
network and report simulated completion times and master message load.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.sim import Cluster, LatencyModel

FILE_BYTES = 1 << 20
CHUNK_SIZES = [16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024]


def run_one(chunk_size: int):
    cluster = Cluster(latency=LatencyModel(1, 1, kb_per_ms=2000))
    cluster.add(BoomFSMaster("master", replication=2))
    for i in range(3):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=400))
    fs = cluster.add(
        BoomFSClient("client", masters=["master"], chunk_size=chunk_size)
    )
    cluster.run_for(900)
    data = bytes(range(256)) * (FILE_BYTES // 256)
    msgs_before = cluster.network.stats.sent
    t0 = cluster.now
    chunks = fs.write("/blob", data)
    write_ms = cluster.now - t0
    t0 = cluster.now
    assert fs.read("/blob") == data
    read_ms = cluster.now - t0
    return {
        "chunks": chunks,
        "write_ms": write_ms,
        "read_ms": read_ms,
        "messages": cluster.network.stats.sent - msgs_before,
    }


def run_experiment():
    return {size: run_one(size) for size in CHUNK_SIZES}


def build_report(results) -> str:
    rows = [
        [
            f"{size // 1024} KiB",
            r["chunks"],
            r["write_ms"],
            r["read_ms"],
            r["messages"],
        ]
        for size, r in results.items()
    ]
    table = render_table(
        ["chunk size", "chunks", "write ms", "read ms", "messages"],
        rows,
        title="A2 (ablation) -- 1 MiB write+read vs chunk size (2 replicas)",
    )
    return table + (
        "\nFor a single sequential stream, every chunk costs a metadata\n"
        "round-trip (addchunk) plus a store/ack cycle, so larger chunks win\n"
        "monotonically here — the reason HDFS default chunks are huge.  The\n"
        "counter-pressure (parallel re-replication and map-input spread)\n"
        "shows up in A4/E7, not in single-stream IO."
    )


def test_a2_chunk_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a2_chunk_size", report)
    write_json_report("a2_chunk_size", results)
    smallest = results[CHUNK_SIZES[0]]
    assert smallest["messages"] > results[CHUNK_SIZES[-1]]["messages"]
