"""E3 — Stack-combination job CDFs (the paper's Figures 1-2).

The paper ran wordcount on EC2 under four stacks — {Hadoop, BOOM-MR} x
{HDFS, BOOM-FS} — and showed map/reduce completion CDFs essentially
overlap: the declarative rewrite does not change job behaviour.  We run
the same 2x2 matrix on the simulator and report the same series.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table, summarize
from repro.hadoop import BaselineJobTracker
from repro.mapreduce import (
    local_wordcount,
    make_input_files,
    run_wordcount,
)

SETUP = dict(
    num_trackers=5, num_maps=10, num_reduces=4, words_per_file=2000, seed=6
)


def _baseline_jt(addr, policy, seed):
    return BaselineJobTracker(addr, policy="fifo")


COMBOS = [
    ("BOOM-MR/BOOM-FS", {}),
    ("BOOM-MR/HDFS", dict(fs_kind="hadoop")),
    ("Hadoop/BOOM-FS", dict(jobtracker_factory=_baseline_jt)),
    ("Hadoop/HDFS", dict(jobtracker_factory=_baseline_jt, fs_kind="hadoop")),
]


def run_matrix():
    expected = local_wordcount(
        make_input_files(SETUP["words_per_file"], SETUP["num_maps"], SETUP["seed"])
    )
    results = []
    for name, kw in COMBOS:
        result, output, _ = run_wordcount(**SETUP, **kw)
        assert output == expected, f"{name} produced wrong output"
        results.append((name, result))
    return results


def build_report(results) -> str:
    rows = []
    for name, result in results:
        m = summarize(result.map_completion_times())
        r = summarize(result.reduce_completion_times())
        rows.append(
            [name, result.duration_ms, m["p50"], m["max"], r["p50"], r["max"]]
        )
    table = render_table(
        ["stack", "job ms", "map p50", "map max", "reduce p50", "reduce max"],
        rows,
        title="E3 / paper Figs 1-2 -- wordcount under four stack combinations",
    )
    durations = [r.duration_ms for _, r in results]
    spread = max(durations) / min(durations)
    lines = [table, "", "Map-completion CDF points (ms at each fraction):"]
    for name, result in results:
        cdf = result.map_completion_times()
        marks = [cdf[int(f * (len(cdf) - 1))] for f in (0.25, 0.5, 0.75, 1.0)]
        lines.append(f"  {name:18s} p25={marks[0]} p50={marks[1]} "
                     f"p75={marks[2]} p100={marks[3]}")
    lines.append(
        f"\nAll four stacks complete within {spread:.2f}x of each other and "
        "produce identical output\n(the paper's conclusion: comparable "
        "performance, interchangeable components)."
    )
    return "\n".join(lines)


def test_e3_stack_cdfs(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e3_stack_cdfs", report)
    write_json_report(
        "e3_stack_cdfs",
        {
            name: {
                "duration_ms": result.duration_ms,
                "map_completion_ms": result.map_completion_times(),
                "reduce_completion_ms": result.reduce_completion_times(),
            }
            for name, result in results
        },
        seed=SETUP["seed"],
    )
    durations = [r.duration_ms for _, r in results]
    assert max(durations) / min(durations) < 1.5
