"""E2 — The BOOM-FS relational catalog (the paper's Table 2).

The paper's Table 2 lists the handful of relations that replace HDFS's
NameNode data structures.  We regenerate it from the actual program
text, with the Hadoop-class correspondence the paper gives.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import master_program

# The paper's "relevant Hadoop class" column.
HADOOP_EQUIVALENT = {
    "file": "INode / INodeDirectory.children",
    "fqpath": "FSDirectory path resolution (computed)",
    "fchunk": "INodeFile.blocks / BlocksMap",
    "datanode": "DatanodeDescriptor / heartbeat monitor",
    "hb_chunk": "BlocksMap block -> datanode index",
    "chunk_cnt": "INodeFile block count (derived)",
    "rep_cnt": "UnderReplicatedBlocks (derived)",
    "repfactor": "dfs.replication config",
    "dn_timeout": "heartbeat.recheck.interval config",
}


def build_table() -> str:
    program = master_program()
    rows = []
    for decl in program.tables():
        keys = ",".join(map(str, decl.keys)) or "all"
        rows.append(
            [
                decl.name,
                decl.arity,
                keys,
                ", ".join(decl.types),
                HADOOP_EQUIVALENT.get(decl.name, "-"),
            ]
        )
    table = render_table(
        ["relation", "arity", "key cols", "schema", "relevant Hadoop structure"],
        rows,
        title="E2 / paper Table 2 -- BOOM-FS NameNode relations",
    )
    extra = (
        f"\n{len(program.rules)} rules, {len(program.events())} transient "
        f"event relations, {len(program.timers())} timers complete the "
        "metadata plane."
    )
    return table + extra


def test_e2_fs_catalog(benchmark):
    report = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_report("e2_fs_catalog", report)
    write_json_report("e2_fs_catalog", {"report": report})
    assert "fqpath" in report
