"""E4 — NameNode metadata-operation throughput: BOOM-FS vs baseline.

The paper benchmarks NameNode metadata ops against stock HDFS.  On the
simulator, both masters speak the same protocol over the same network, so
we report two complementary measures:

* simulated throughput with a windowed asynchronous client (protocol
  behaviour: are the declarative master's responses equivalent?), and
* host CPU wall-time per operation (the real cost of evaluating Overlog
  rules versus hand-written dictionaries — the honest price of the
  declarative NameNode in this reproduction).
"""

import time

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import BoomFSMaster
from repro.boomfs.client import FSSession
from repro.hadoop import BaselineNameNode
from repro.sim import Cluster, LatencyModel, Process

TOTAL_OPS = 300
WINDOW = 8


class MetadataLoadGen(Process):
    """Keeps WINDOW metadata ops in flight until TOTAL_OPS complete."""

    def __init__(self, address, master, total_ops=TOTAL_OPS, window=WINDOW):
        super().__init__(address)
        self.session = FSSession(self, [master])
        self.total = total_ops
        self.window = window
        self.issued = 0
        self.completed = 0
        self.started_ms = None
        self.finished_ms = None

    def start(self) -> None:
        self.started_ms = self.now
        self.session.mkdir("/bench", self._after_mkdir)

    def _after_mkdir(self, ok, payload, retried) -> None:
        for _ in range(self.window):
            self._issue()

    def _issue(self) -> None:
        if self.issued >= self.total:
            return
        i = self.issued
        self.issued += 1
        # Mixed workload: 60% create, 20% exists, 20% ls.
        if i % 5 in (0, 1, 2):
            self.session.create(f"/bench/f{i}", self._done)
        elif i % 5 == 3:
            self.session.exists(f"/bench/f{max(0, i - 2)}", self._done)
        else:
            self.session.ls("/bench", self._done)

    def _done(self, ok, payload, retried) -> None:
        self.completed += 1
        if self.completed >= self.total:
            self.finished_ms = self.now
        else:
            self._issue()

    def handle_message(self, relation, row) -> None:
        if self.session.handles(relation):
            self.session.on_message(relation, row)

    @property
    def done(self) -> bool:
        return self.finished_ms is not None


def run_one(master_cls, repeats=3, batching=True):
    # Wall time is best-of-N: the minimum is the least-noise estimate of
    # the actual CPU cost on a shared host (sim results are deterministic
    # and identical across repeats).
    best_wall = None
    for _ in range(repeats):
        cluster = Cluster(latency=LatencyModel(1, 1), batching=batching)
        cluster.add(master_cls("master", replication=2))
        gen = cluster.add(MetadataLoadGen("loadgen", "master"))
        wall_start = time.perf_counter()
        ok = cluster.run_until(lambda: gen.done, max_time_ms=600_000)
        wall = time.perf_counter() - wall_start
        assert ok, "load generator did not finish"
        best_wall = wall if best_wall is None else min(best_wall, wall)
    sim_ms = gen.finished_ms - gen.started_ms
    stats = cluster.transport.stats
    return {
        "sim_ms": sim_ms,
        "sim_ops_per_s": TOTAL_OPS / (sim_ms / 1000),
        "wall_us_per_op": best_wall * 1e6 / TOTAL_OPS,
        "envelopes": stats.envelopes_sent,
        "deltas": stats.sent,
        "bytes": stats.bytes_sent,
    }


class MetricsOffMaster(BoomFSMaster):
    """Ablation: the always-on runtime metrics registry disabled."""

    METRICS = False


class ClosureTierMaster(BoomFSMaster):
    """Ablation: closure step-pipeline tier (no generated source)."""

    COMPILE_MODE = "closure"


class InterpreterTierMaster(BoomFSMaster):
    """Ablation: tree-walking reference interpreter, no plan cache."""

    COMPILE_MODE = "interpreter"


def run_experiment():
    return {
        # The two rows the headline ratio is computed from get extra
        # repeats: best-of-N wall time converges to the true CPU cost
        # as N grows, and these two are the ones a CI gate compares.
        "BOOM-FS (Overlog)": run_one(BoomFSMaster, repeats=5),
        # Evaluator-tier ablation: the same rules run through the
        # closure step-pipeline and the reference interpreter, so the
        # report shows what each compilation tier buys.
        "BOOM-FS (closure tier)": run_one(ClosureTierMaster),
        "BOOM-FS (interpreter tier)": run_one(InterpreterTierMaster),
        "BOOM-FS (metrics off)": run_one(MetricsOffMaster),
        # Ablation: flush-on-fixpoint envelope batching disabled — one
        # envelope per delta, the pre-transport wire behaviour.
        "BOOM-FS (batching off)": run_one(BoomFSMaster, batching=False),
        "Baseline (imperative)": run_one(BaselineNameNode, repeats=5),
    }


def build_report(results) -> str:
    rows = [
        [
            name,
            TOTAL_OPS,
            r["sim_ms"],
            round(r["sim_ops_per_s"]),
            round(r["wall_us_per_op"]),
            r["envelopes"],
            r["deltas"],
        ]
        for name, r in results.items()
    ]
    table = render_table(
        ["NameNode", "ops", "sim ms", "sim ops/s", "host us/op", "envs", "deltas"],
        rows,
        title="E4 -- metadata throughput (300 mixed ops, window=8)",
    )
    boom = results["BOOM-FS (Overlog)"]
    closure = results["BOOM-FS (closure tier)"]
    interp = results["BOOM-FS (interpreter tier)"]
    bare = results["BOOM-FS (metrics off)"]
    nobatch = results["BOOM-FS (batching off)"]
    base = results["Baseline (imperative)"]
    ratio = boom["wall_us_per_op"] / base["wall_us_per_op"]
    closure_x = closure["wall_us_per_op"] / boom["wall_us_per_op"]
    interp_x = interp["wall_us_per_op"] / boom["wall_us_per_op"]
    metrics_pct = (boom["wall_us_per_op"] / bare["wall_us_per_op"] - 1) * 100
    batch_factor = nobatch["envelopes"] / boom["envelopes"]
    return table + (
        f"\nSimulated throughput is protocol-bound and near-identical; the\n"
        f"declarative master costs {ratio:.1f}x more host CPU per op — the\n"
        f"interpretation overhead the paper also observed (JOL vs Java).\n"
        f"Tier ablation: the closure pipeline is {closure_x:.1f}x and the\n"
        f"reference interpreter {interp_x:.1f}x the source-codegen tier.\n"
        f"Always-on runtime metrics add {metrics_pct:+.1f}% host CPU per op.\n"
        f"Flush-on-fixpoint batching sends {batch_factor:.1f}x fewer wire\n"
        f"messages for the same {boom['deltas']} deltas, at equal-or-better\n"
        f"simulated throughput."
    )


def test_e4_metadata_throughput(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e4_metadata_throughput", report)
    write_json_report("e4_metadata_throughput", results)
    sim_rates = [r["sim_ops_per_s"] for r in results.values()]
    assert max(sim_rates) / min(sim_rates) < 1.5  # protocol parity
    # The always-on metrics registry must stay cheap.  Measured cost is
    # ~2% per op; the gate is 25% because best-of-N wall times on a
    # virtualised host still jitter by 10-20% between the two runs.
    boom = results["BOOM-FS (Overlog)"]
    bare = results["BOOM-FS (metrics off)"]
    assert boom["wall_us_per_op"] < bare["wall_us_per_op"] * 1.25
    # Batching ablation: >= 3x fewer wire messages for the same deltas,
    # without giving up simulated throughput.
    nobatch = results["BOOM-FS (batching off)"]
    assert nobatch["deltas"] == boom["deltas"]
    assert nobatch["envelopes"] >= 3 * boom["envelopes"]
    assert boom["sim_ops_per_s"] >= nobatch["sim_ops_per_s"]
    # Headline cost of the declarative NameNode: the source-codegen tier
    # targets <= 3x the imperative baseline's us/op (typical measured
    # ratio 3.0-3.5 on a quiet host); 4.0 is the hard gate so shared-CI
    # scheduling noise cannot flake the suite.  check_e4_regression.py
    # enforces the tighter 20%-vs-committed-baseline bound.
    base = results["Baseline (imperative)"]
    assert boom["wall_us_per_op"] <= 4.0 * base["wall_us_per_op"]
    # All three tiers must agree on protocol behaviour (identical sim
    # results), and the tiers should stay ordered: generated source is
    # never slower than the interpreter it replaces.
    closure = results["BOOM-FS (closure tier)"]
    interp = results["BOOM-FS (interpreter tier)"]
    assert closure["sim_ms"] == boom["sim_ms"]
    assert interp["sim_ms"] == boom["sim_ms"]
    assert interp["deltas"] == boom["deltas"]
    assert boom["wall_us_per_op"] < interp["wall_us_per_op"]
