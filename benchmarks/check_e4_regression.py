"""CI perf-regression gate for the E4 metadata-throughput benchmark.

Compares a freshly written ``benchmarks/reports/e4_metadata_throughput.json``
against the committed reference ``benchmarks/reports/e4_codegen_baseline.json``
and exits nonzero when the source-codegen tier regresses:

* the BOOM-FS / imperative-baseline wall-time ratio may not grow by more
  than ``--tolerance`` (default 20%) over the committed ratio — ratios
  are paired within one run, so this gate is host-speed independent;
* the deterministic protocol fields (``sim_ms``, ``deltas``,
  ``envelopes``) must match the baseline exactly for every row both
  files share — a drift here means evaluator semantics changed, not
  just speed;
* the tier ordering must hold: generated source strictly cheaper than
  the reference interpreter.

Regenerate the committed baseline after an intentional perf change::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_e4_metadata_throughput.py
    PYTHONPATH=src python benchmarks/check_e4_regression.py --rebaseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPORTS_DIR = Path(__file__).resolve().parent / "reports"
REPORT = REPORTS_DIR / "e4_metadata_throughput.json"
BASELINE = REPORTS_DIR / "e4_codegen_baseline.json"

BOOM = "BOOM-FS (Overlog)"
BASE = "Baseline (imperative)"
INTERP = "BOOM-FS (interpreter tier)"
EXACT_FIELDS = ("sim_ms", "deltas", "envelopes")


def _rows(path: Path) -> dict:
    payload = json.loads(path.read_text())
    return payload.get("results", payload)


def _ratio(rows: dict) -> float:
    return rows[BOOM]["wall_us_per_op"] / rows[BASE]["wall_us_per_op"]


def rebaseline() -> int:
    rows = _rows(REPORT)
    baseline = {
        "_source": REPORT.name,
        "_note": "Committed E4 reference; regenerate with check_e4_regression.py --rebaseline",
        "ratio_boom_vs_imperative": round(_ratio(rows), 3),
        "rows": {
            name: {f: r[f] for f in EXACT_FIELDS} for name, r in rows.items()
        },
    }
    BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"baseline written to {BASELINE} (ratio {baseline['ratio_boom_vs_imperative']}x)")
    return 0


def check(tolerance: float) -> int:
    if not BASELINE.exists():
        print(f"FAIL: committed baseline {BASELINE} is missing", file=sys.stderr)
        return 1
    if not REPORT.exists():
        print(
            f"FAIL: {REPORT} not found — run the E4 bench first:\n"
            "  PYTHONPATH=src python -m pytest -q "
            "benchmarks/bench_e4_metadata_throughput.py",
            file=sys.stderr,
        )
        return 1
    rows = _rows(REPORT)
    baseline = json.loads(BASELINE.read_text())

    failures = []
    current_ratio = _ratio(rows)
    committed = baseline["ratio_boom_vs_imperative"]
    limit = committed * (1.0 + tolerance)
    print(
        f"E4 codegen gate: ratio {current_ratio:.2f}x vs committed "
        f"{committed:.2f}x (limit {limit:.2f}x, tolerance {tolerance:.0%})"
    )
    if current_ratio > limit:
        failures.append(
            f"wall-time ratio regressed: {current_ratio:.2f}x > {limit:.2f}x"
        )

    for name, expected in baseline["rows"].items():
        got = rows.get(name)
        if got is None:
            failures.append(f"row {name!r} missing from current report")
            continue
        for field in EXACT_FIELDS:
            if got[field] != expected[field]:
                failures.append(
                    f"{name}: {field} changed {expected[field]} -> {got[field]} "
                    "(deterministic protocol field; evaluator semantics drifted)"
                )

    if BOOM in rows and INTERP in rows:
        if rows[BOOM]["wall_us_per_op"] >= rows[INTERP]["wall_us_per_op"]:
            failures.append(
                "tier inversion: source-codegen tier is not faster than "
                "the reference interpreter"
            )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("ok: no E4 perf regression")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional growth of the boom/imperative wall ratio "
        "(default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="rewrite the committed baseline from the current report",
    )
    args = parser.parse_args(argv)
    if args.rebaseline:
        return rebaseline()
    return check(args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
