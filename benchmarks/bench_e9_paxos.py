"""E9 — Overlog Paxos microbenchmark.

Characterizes the consensus substrate the availability revision builds
on: decision latency and message cost per decree for 3- and 5-replica
groups, with and without message loss.  (The paper reports Paxos adds
modest latency to NameNode operations; this isolates that cost.)
"""

from harness import write_json_report, write_report

from repro.analysis import render_table, summarize
from repro.paxos import PaxosReplica
from repro.sim import Cluster, LatencyModel

DECREES = 60


def run_one(n: int, loss_rate: float, seed: int = 0):
    cluster = Cluster(
        seed=seed, latency=LatencyModel(1, 2), loss_rate=loss_rate
    )
    group = [f"p{i}" for i in range(n)]
    replicas = [cluster.add(PaxosReplica(a, group)) for a in group]
    ok = cluster.run_until(
        lambda: any(r.is_leader for r in replicas), max_time_ms=30_000
    )
    assert ok
    leader = next(r for r in replicas if r.is_leader)
    latencies = []
    messages_before = cluster.network.stats.sent
    for i in range(DECREES):
        submit_at = cluster.now
        leader.submit(("op", i))
        decided = cluster.run_until(
            lambda i=i: any(
                ("op", i) in r.decided_log().values()
                for r in replicas
                if not r.crashed
            ),
            max_time_ms=cluster.now + 60_000,
        )
        assert decided, f"decree {i} not decided"
        latencies.append(cluster.now - submit_at)
    # Let followers converge, then count total message cost.
    cluster.run_until(
        lambda: all(
            r.applied_through() == DECREES for r in replicas if not r.crashed
        ),
        max_time_ms=cluster.now + 60_000,
    )
    messages = cluster.network.stats.sent - messages_before
    return {
        "latency": summarize(latencies),
        "msgs_per_decree": messages / DECREES,
        "all_applied": all(
            r.applied_through() == DECREES for r in replicas if not r.crashed
        ),
    }


def run_experiment():
    return {
        ("3 replicas", "0% loss"): run_one(3, 0.0),
        ("3 replicas", "5% loss"): run_one(3, 0.05, seed=5),
        ("5 replicas", "0% loss"): run_one(5, 0.0),
        ("5 replicas", "5% loss"): run_one(5, 0.05, seed=5),
    }


def build_report(results) -> str:
    rows = []
    for (group, loss), r in results.items():
        lat = r["latency"]
        rows.append(
            [
                group,
                loss,
                lat["p50"],
                lat["p95"],
                lat["max"],
                round(r["msgs_per_decree"], 1),
                "yes" if r["all_applied"] else "NO",
            ]
        )
    table = render_table(
        [
            "group",
            "loss",
            "decide p50 ms",
            "p95",
            "max",
            "msgs/decree",
            "all replicas applied",
        ],
        rows,
        title=f"E9 -- Overlog MultiPaxos: {DECREES} decrees per configuration",
    )
    return table + (
        "\nSteady-state MultiPaxos needs one accept round (~2 message\n"
        "delays); loss is absorbed by the declarative retransmit/catch-up\n"
        "rules at the cost of tail latency — as expected of the protocol."
    )


def test_e9_paxos(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e9_paxos", report)
    write_json_report(
        "e9_paxos",
        {f"{size} / {loss}": r for (size, loss), r in results.items()},
        seed=(0, 5),
    )
    clean3 = results[("3 replicas", "0% loss")]
    lossy3 = results[("3 replicas", "5% loss")]
    assert clean3["all_applied"] and lossy3["all_applied"]
    assert clean3["latency"]["p50"] <= lossy3["latency"]["max"]
