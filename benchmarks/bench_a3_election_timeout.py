"""A3 (ablation) — election timeout vs failover downtime.

The replicated NameNode's recovery gap (E5) is dominated by the election
timeout: shorter timeouts recover faster but false-suspect healthy
leaders under jitter.  We sweep the base timeout and measure recovery
time after a leader kill plus the number of elections during a calm
steady-state period (spurious elections indicate instability).
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import DataNode
from repro.paxos import ReplicatedFSClient, ReplicatedMaster
from repro.sim import Cluster, LatencyModel

TIMEOUTS = [400, 800, 1600, 3200]


def run_one(base_timeout_ms: int):
    cluster = Cluster(latency=LatencyModel(1, 2))
    group = ["m0", "m1", "m2"]
    masters = [
        cluster.add(
            ReplicatedMaster(
                a,
                group,
                replication=1,
                base_election_timeout_ms=base_timeout_ms,
                election_stagger_ms=base_timeout_ms // 2,
            )
        )
        for a in group
    ]
    cluster.add(DataNode("dn0", masters=group, heartbeat_ms=300))
    fs = cluster.add(ReplicatedFSClient("client", group, op_timeout_ms=60_000))
    assert cluster.run_until(
        lambda: any(m.is_leader for m in masters), max_time_ms=60_000
    )
    cluster.run_for(500)
    fs.mkdir("/w")
    # Calm period: count ballot changes (elections) over 10s of quiet.
    ballots_before = max(
        m.runtime.rows("curr_ballot")[0][1] for m in masters
    )
    cluster.run_for(10_000)
    ballots_after = max(m.runtime.rows("curr_ballot")[0][1] for m in masters)
    spurious = ballots_after > ballots_before
    # Kill the leader and time the next successful op.
    leader = next(m for m in masters if not m.crashed and m.is_leader)
    cluster.crash(leader.address)
    t0 = cluster.now
    fs.create("/w/after")
    recovery_ms = cluster.now - t0
    return {"recovery_ms": recovery_ms, "spurious_elections": spurious}


def run_experiment():
    return {t: run_one(t) for t in TIMEOUTS}


def build_report(results) -> str:
    rows = [
        [
            f"{t} ms",
            r["recovery_ms"],
            "yes" if r["spurious_elections"] else "no",
        ]
        for t, r in results.items()
    ]
    table = render_table(
        ["base election timeout", "failover recovery ms", "spurious elections (10s calm)"],
        rows,
        title="A3 (ablation) -- election timeout sweep, 3 replicas, leader killed",
    )
    return table + (
        "\nRecovery tracks the timeout roughly linearly; very short timeouts\n"
        "risk deposing healthy leaders under network jitter — the standard\n"
        "failure-detector trade-off, here tuned entirely in bootstrap facts."
    )


def test_a3_election_timeout(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a3_election_timeout", report)
    write_json_report("a3_election_timeout", results)
    assert results[400]["recovery_ms"] < results[3200]["recovery_ms"]
