"""A4 (ablation) — what the provenance layer costs, and what why() pays.

Three measurements over the provenance ledger (docs/PROVENANCE.md):

1. **Ledger append cost** — microseconds per ``record()`` call, the
   per-derivation price every enabled node pays.
2. **why() latency vs derivation depth** — reconstructing a derivation
   DAG is read-time work (recording defers body resolution); this tracks
   how reconstruction scales with the depth of the chain it walks.
3. **Enabled-mode overhead gate** — the A1 transitive-closure workload
   with provenance + profiler on vs off.  The acceptance bar is <10%
   overhead.  Wall-clock noise on shared CI boxes swamps a single run,
   so modes are interleaved round-robin and compared by their *minima*
   across rounds (the minimum is the least noise-contaminated estimate
   of true cost; interleaving cancels thermal/scheduling drift).

The profiler's hot-rules report for the gated run is written alongside
the A4 reports (``a4_provenance_hot_rules.json``) — the same artifact CI
uploads.
"""

import time

from harness import REPORTS_DIR, write_json_report, write_report

from repro.analysis import render_table
from repro.metrics.export import hot_rules_json
from repro.overlog import OverlogRuntime
from repro.provenance.ledger import DerivationLedger

PROGRAM = """
program tc;
define(edge, keys(0, 1), {Int, Int});
define(reach, keys(0, 1), {Int, Int});
reach(X, Y) :- edge(X, Y);
reach(X, Z) :- edge(X, Y), reach(Y, Z);
"""

APPEND_RECORDS = 20_000
WHY_DEPTHS = (4, 16, 64)
GATE_EDGES = 32
GATE_ROUNDS = 9
GATE_LIMIT_PCT = 10.0


# -- 1. ledger append cost ---------------------------------------------------


def measure_append_cost() -> dict:
    ledger = DerivationLedger(node="bench")
    ledger.begin_step(1, 0, ())
    rows = [(i, i + 1) for i in range(APPEND_RECORDS)]
    start = time.perf_counter_ns()
    for row in rows:
        ledger.record("rule", "r1", 0, 0, "reach", row, None)
    elapsed = time.perf_counter_ns() - start
    return {
        "records": APPEND_RECORDS,
        "us_per_record": elapsed / APPEND_RECORDS / 1000,
    }


# -- 2. why() latency vs derivation depth ------------------------------------


def measure_why_latency() -> list[dict]:
    out = []
    for depth in WHY_DEPTHS:
        rt = OverlogRuntime(PROGRAM, provenance=True)
        for i in range(depth):
            rt.insert("edge", (i, i + 1))
            rt.tick()
        # path(0, depth) chains through every edge: DAG depth == depth.
        best = None
        for _ in range(3):
            start = time.perf_counter_ns()
            dag = rt.why("reach", (0, depth), fmt="json")
            elapsed = time.perf_counter_ns() - start
            best = elapsed if best is None else min(best, elapsed)
        assert dag["status"] == "derived"
        out.append({"depth": depth, "why_ms": best / 1e6})
    return out


# -- 3. enabled-mode overhead gate -------------------------------------------


def _gate_workload(**kwargs) -> float:
    rt = OverlogRuntime(PROGRAM, **kwargs)
    start = time.perf_counter()
    for i in range(GATE_EDGES):
        rt.insert("edge", (i, i + 1))
        rt.tick()
    wall = time.perf_counter() - start
    assert len(rt.rows("reach")) == GATE_EDGES * (GATE_EDGES + 1) // 2
    return wall * 1000


def measure_overhead_gate() -> dict:
    modes = {
        "off": {},
        "provenance": {"provenance": True},
        "provenance+profiler": {"provenance": True, "profile": True},
    }
    minima = {name: None for name in modes}
    for _ in range(GATE_ROUNDS):
        for name, kwargs in modes.items():
            wall = _gate_workload(**kwargs)
            if minima[name] is None or wall < minima[name]:
                minima[name] = wall
    off = minima["off"]
    return {
        "edges": GATE_EDGES,
        "rounds": GATE_ROUNDS,
        "wall_ms": minima,
        "overhead_pct": {
            name: (wall / off - 1) * 100 for name, wall in minima.items()
        },
    }


def write_hot_rules_artifact() -> None:
    rt = OverlogRuntime(PROGRAM, provenance=True, profile=True)
    for i in range(GATE_EDGES):
        rt.insert("edge", (i, i + 1))
        rt.tick()
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / "a4_provenance_hot_rules.json"
    path.write_text(hot_rules_json(rt.profile_report(fmt="json")) + "\n")
    print(f"[hot-rules report written to {path}]")


# -- report ------------------------------------------------------------------


def run_experiment():
    return {
        "append": measure_append_cost(),
        "why_latency": measure_why_latency(),
        "gate": measure_overhead_gate(),
    }


def build_report(results) -> str:
    append = results["append"]
    gate = results["gate"]
    why_table = render_table(
        ["derivation depth", "why() ms"],
        [[r["depth"], round(r["why_ms"], 3)] for r in results["why_latency"]],
        title=(
            "A4 -- why() reconstruction latency vs chain depth "
            "(best of 3)"
        ),
    )
    gate_table = render_table(
        ["mode", "best ms", "overhead"],
        [
            [
                name,
                round(wall, 2),
                f"{gate['overhead_pct'][name]:+.1f}%",
            ]
            for name, wall in gate["wall_ms"].items()
        ],
        title=(
            f"A4 -- enabled-mode overhead: {gate['edges']}-edge TC chain, "
            f"interleaved minima over {gate['rounds']} rounds"
        ),
    )
    return (
        f"A4 -- ledger append: {append['us_per_record']:.2f} us/record "
        f"over {append['records']} records\n\n"
        + why_table
        + "\n\n"
        + gate_table
        + "\n\nRecording stores the firing's final body environment and"
        "\ndefers body-tuple reconstruction to first read, so the append"
        "\npath stays a few machine operations; why() pays the deferred"
        "\nresolution, scaling linearly in the DAG it walks.  The gate row"
        "\nis the acceptance bar: provenance+profiler must stay within"
        f"\n{GATE_LIMIT_PCT:.0f}% of the disabled evaluator."
    )


def test_a4_provenance(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a4_provenance", report)
    write_json_report("a4_provenance", results)
    write_hot_rules_artifact()
    # Recording must stay cheap in absolute terms (~1-2 us/record on any
    # modern host; 25 is the "something is pathologically wrong" bar).
    assert results["append"]["us_per_record"] < 25
    # why() must resolve the full chain at every depth (asserted inside
    # the measurement) and stay interactive.
    assert all(r["why_ms"] < 1000 for r in results["why_latency"])
    # The acceptance gate: enabled-mode overhead within 10% of disabled.
    overhead = results["gate"]["overhead_pct"]["provenance+profiler"]
    assert overhead < GATE_LIMIT_PCT, (
        f"provenance+profiler overhead {overhead:.1f}% exceeds "
        f"{GATE_LIMIT_PCT:.0f}%"
    )
