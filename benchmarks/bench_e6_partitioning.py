"""E6 — Scale-out via NameNode partitioning (the paper's scalability fig).

The paper hash-partitions the FS metadata over several NameNodes and
shows metadata throughput scaling.  We model master CPU with a
per-derivation service time (so a single master is genuinely the
bottleneck) and drive the partitions with a windowed asynchronous client;
throughput is reported for 1, 2, 4 and 8 partitions.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs.client import FSSession
from repro.boomfs.partition import PARTITION_DROPPED_RULES, partition_of
from repro.boomfs.master import BoomFSMaster
from repro.sim import Cluster, LatencyModel, Process

TOTAL_OPS = 240
WINDOW = 32
PER_DERIVATION_US = 400  # master CPU service time per derived tuple


class PartitionedLoadGen(Process):
    """Creates files round-robin, routed to the owning partition."""

    def __init__(self, address, masters, total_ops=TOTAL_OPS, window=WINDOW):
        super().__init__(address)
        import itertools

        rids = itertools.count(1)
        self.sessions = [
            FSSession(self, [m], rid_counter=rids) for m in masters
        ]
        self.total = total_ops
        self.window = window
        self.issued = 0
        self.completed = 0
        self.mkdirs_done = 0
        self.started_ms = None
        self.finished_ms = None

    def start(self) -> None:
        for session in self.sessions:
            session.mkdir("/bench", self._after_mkdir)

    def _after_mkdir(self, ok, payload, retried) -> None:
        self.mkdirs_done += 1
        if self.mkdirs_done == len(self.sessions):
            self.started_ms = self.now
            for _ in range(self.window):
                self._issue()

    def _issue(self) -> None:
        if self.issued >= self.total:
            return
        i = self.issued
        self.issued += 1
        path = f"/bench/f{i}"
        owner = self.sessions[partition_of(path, len(self.sessions))]
        owner.create(path, self._done)

    def _done(self, ok, payload, retried) -> None:
        self.completed += 1
        if self.completed >= self.total:
            self.finished_ms = self.now
        else:
            self._issue()

    def handle_message(self, relation, row) -> None:
        for session in self.sessions:
            if session.handles(relation):
                session.on_message(relation, row)

    @property
    def done(self) -> bool:
        return self.finished_ms is not None


def run_one(partitions: int):
    cluster = Cluster(latency=LatencyModel(1, 1))
    masters = []
    for p in range(partitions):
        masters.append(
            cluster.add(
                BoomFSMaster(
                    f"master{p}",
                    replication=1,
                    drop_rules=PARTITION_DROPPED_RULES,
                    per_derivation_cost_us=PER_DERIVATION_US,
                )
            )
        )
    gen = cluster.add(
        PartitionedLoadGen("loadgen", [m.address for m in masters])
    )
    ok = cluster.run_until(lambda: gen.done, max_time_ms=600_000)
    assert ok, "load generator stalled"
    sim_ms = gen.finished_ms - gen.started_ms
    return sim_ms, TOTAL_OPS / (sim_ms / 1000)


def run_experiment():
    return {p: run_one(p) for p in (1, 2, 4, 8)}


def build_report(results) -> str:
    base_rate = results[1][1]
    rows = [
        [p, sim_ms, round(rate), round(rate / base_rate, 2)]
        for p, (sim_ms, rate) in results.items()
    ]
    table = render_table(
        ["partitions", "sim ms for 240 creates", "ops/s", "speedup"],
        rows,
        title=(
            "E6 / paper scale-out figure -- metadata throughput vs "
            "NameNode partitions"
        ),
    )
    return table + (
        f"\nWith master CPU modelled ({PER_DERIVATION_US}us/derivation), file"
        " creates spread\nacross partitions by path hash; throughput scales"
        " near-linearly until the\nwindowed client, not the masters, is the"
        " bottleneck — the paper's shape."
    )


def test_e6_partitioning(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e6_partitioning", report)
    write_json_report("e6_partitioning", results)
    assert results[2][1] > results[1][1] * 1.3  # 2 partitions help
    assert results[4][1] > results[1][1] * 1.8  # 4 partitions help more
