"""E3b — Request-latency CDFs and the cost of knowing why.

Extends E3's completion CDFs from jobs to individual metadata requests:
the open/closed-loop load driver (``repro.workload``) runs a seeded
NameNode op mix on both backends and reports p50/p99/p999 per op type.
With per-op tracing on, the latency accounting layer (``repro.latency``)
must then *explain* the slow tail — the slowest decile's critical paths
have to attribute >=95% of each trace's wall time to a named category.

The second half is the honesty gate: tracing + step annotation must stay
cheap.  The same workload runs traced and untraced, interleaved within
each repetition (like E8) with best-of-N wall time, and the accounting
overhead is asserted < 10%.
"""

import gc
import time

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import BoomFSMaster
from repro.boomfs.datanode import DataNode
from repro.latency import CATEGORIES, critical_path
from repro.sim import Cluster, LatencyModel
from repro.transport import AsyncCluster
from repro.workload import LoadDriver, run_driver

OPS = 1000
SEED = 13
SCALE = 20.0  # async backend: virtual-ms compression factor


def _populate(cluster):
    cluster.add(BoomFSMaster("master", replication=2))
    for i in range(2):
        cluster.add(DataNode(f"dn{i}", masters=["master"]))
    cluster.run_for(700)  # heartbeats register the DataNodes


def _run_once(backend: str, trace: bool, ops: int = OPS):
    if backend == "sim":
        cluster = Cluster(seed=SEED, latency=LatencyModel(1, 3))
    else:
        cluster = AsyncCluster(time_scale=SCALE)
    try:
        _populate(cluster)
        driver = LoadDriver(
            "loadgen",
            masters=["master"],
            total_ops=ops,
            window=8,
            seed=SEED,
            trace=trace,
        )
        wall_start = time.perf_counter()
        run_driver(cluster, driver)
        wall = time.perf_counter() - wall_start
        return cluster, driver, wall
    except BaseException:
        cluster.shutdown()
        raise


def run_cdfs():
    """Per-op latency CDFs on both backends; on the simulator (traced)
    also the critical-path attribution of the slow tail."""
    results = {}
    for backend in ("sim", "async"):
        cluster, driver, _wall = _run_once(backend, trace=(backend == "sim"))
        try:
            entry = {
                "percentiles": driver.percentile_report(),
                "rendered": driver.render_report(),
            }
            if backend == "sim":
                slow = driver.slowest(0.1)
                reports = [
                    critical_path(cluster.tracer, r.trace_id) for r in slow
                ]
                coverages = [r.coverage for r in reports]
                totals = {cat: 0 for cat in CATEGORIES}
                for r in reports:
                    for cat, ms in r.by_category.items():
                        totals[cat] += ms
                entry["tail"] = {
                    "count": len(slow),
                    "min_coverage": min(coverages),
                    "by_category_ms": totals,
                }
            results[backend] = entry
        finally:
            cluster.shutdown()
    return results


def run_overhead(repeats: int = 5):
    """Accounting overhead: per-op tracing + step annotation on vs off.

    Modes alternate inside each repetition (clock drift on a shared host
    would bias whichever runs last) and wall time is best-of-N — the sim
    is deterministic, so the minimum is the least-noise CPU estimate.

    The collector is paused inside each timed region (timeit's
    methodology): the traced run retains ~30 event dicts per op, and
    those allocations advance the gen-0 trigger, so with GC live the
    delta mostly measures *collector scheduling* over the evaluator's
    whole heap — real for a default-tuned process, but a property of
    global heap state, not of this layer.  Pausing GC makes the gate
    bound what the accounting code itself costs on the request path."""
    walls = {False: [], True: []}
    for _ in range(repeats):
        for traced in (False, True):
            gc.collect()
            gc.disable()
            try:
                cluster, _driver, wall = _run_once("sim", trace=traced)
            finally:
                gc.enable()
            cluster.shutdown()
            walls[traced].append(wall)
    off, on = min(walls[False]), min(walls[True])
    return {
        "untraced_ms": off * 1000,
        "traced_ms": on * 1000,
        "overhead_pct": (on / off - 1) * 100,
        "repeats": repeats,
        "gc": "paused during timed regions (timeit methodology)",
    }


def build_report(cdfs, overhead) -> str:
    rows = []
    for backend, entry in cdfs.items():
        for op, r in entry["percentiles"].items():
            rows.append(
                [
                    backend,
                    op,
                    r["count"],
                    r["p50"],
                    r["p99"],
                    r["p999"],
                    r["max"],
                ]
            )
    table = render_table(
        ["backend", "op", "count", "p50", "p99", "p999", "max"],
        rows,
        title=(
            f"E3b -- metadata-op latency CDFs, {OPS} ops per backend "
            "(ms; sim virtual / async real-scaled)"
        ),
    )
    tail = cdfs["sim"]["tail"]
    tail_total = sum(tail["by_category_ms"].values()) or 1
    cat_rows = [
        [cat, f"{ms:.0f}", f"{ms / tail_total * 100:.1f}%"]
        for cat, ms in sorted(
            tail["by_category_ms"].items(), key=lambda kv: -kv[1]
        )
        if ms or cat == "other"
    ]
    lines = [
        table,
        "",
        "Slowest-decile critical paths (sim, traced):",
        f"  {tail['count']} traces, minimum attribution "
        f"{tail['min_coverage'] * 100:.1f}% of wall time",
        render_table(["category", "ms", "share"], cat_rows),
        "",
        (
            f"Accounting overhead (tracing on vs off, best of 5): "
            f"{overhead['overhead_pct']:+.1f}% "
            f"({overhead['traced_ms']:.0f} ms vs "
            f"{overhead['untraced_ms']:.0f} ms)"
        ),
    ]
    return "\n".join(lines)


def test_e3_latency_cdfs(benchmark):
    cdfs = benchmark.pedantic(run_cdfs, rounds=1, iterations=1)
    overhead = run_overhead()
    report = build_report(cdfs, overhead)
    write_report("e3_latency_cdfs", report)
    write_json_report(
        "e3_latency_cdfs",
        {
            "cdfs": {
                backend: {
                    "percentiles": entry["percentiles"],
                    **({"tail": entry["tail"]} if "tail" in entry else {}),
                }
                for backend, entry in cdfs.items()
            },
            "overhead": overhead,
        },
        backend="sim+async",
        seed=SEED,
        mode="matrix",
    )
    for backend in ("sim", "async"):
        report_all = cdfs[backend]["percentiles"]["all"]
        assert report_all["count"] == OPS
        assert report_all["p50"] <= report_all["p99"] <= report_all["p999"]
    # The slow tail must be explained, not just measured.
    assert cdfs["sim"]["tail"]["min_coverage"] >= 0.95
    # And knowing why must stay cheap: < 10% on the full workload.
    assert overhead["overhead_pct"] < 10.0, overhead
