"""A6 — Sketch accuracy and memory: the telemetry plane's error budget.

The telemetry plane (docs/TELEMETRY.md) answers quantile and
cardinality questions from mergeable sketches instead of raw samples,
so its numbers are only as good as the sketches.  This bench measures,
at 10^5 observations per run:

* t-digest rank error at p50/p99/p999 across uniform, exponential and
  lognormal distributions — and again after a 10-way shard merge (how
  digests actually arrive at the monitor);
* HyperLogLog relative error at 10^3..10^5 distinct items, plus exact
  merge-order invariance over shuffled shard orders;
* memory: payload size as the item count grows 100x — the sub-linear
  guarantee that makes metrics-as-tuples shippable at all.

Gates (fail the job): t-digest rank error <= 1%, HLL error <= 2% at
10^5, payload growth far below input growth.
"""

import random

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.sketches import HyperLogLog, TDigest

N = 100_000
SEED = 7

DISTRIBUTIONS = {
    "uniform": lambda rng: rng.random() * 1000,
    "exponential": lambda rng: rng.expovariate(1 / 50),
    "lognormal": lambda rng: rng.lognormvariate(3.0, 1.2),
}

QUANTILES = (0.5, 0.99, 0.999)


def _rank_error(samples_sorted, estimate, q) -> float:
    """|empirical rank of the estimate - q|: the t-digest error metric
    (value error is meaningless across distributions)."""
    import bisect

    rank = bisect.bisect_right(samples_sorted, estimate) / len(samples_sorted)
    return abs(rank - q)


def run_tdigest():
    results = {}
    for name, draw in DISTRIBUTIONS.items():
        rng = random.Random(SEED)
        samples = [draw(rng) for _ in range(N)]
        whole = TDigest()
        whole.extend(samples)
        # 10-way sharding: how per-node digests reach the monitor.
        shards = [TDigest() for _ in range(10)]
        for i, v in enumerate(samples):
            shards[i % 10].add(v)
        merged = TDigest()
        for shard in shards:
            merged.merge(shard)
        samples.sort()
        per_q = {}
        for q in QUANTILES:
            per_q[q] = {
                "whole": _rank_error(samples, whole.quantile(q), q),
                "merged": _rank_error(samples, merged.quantile(q), q),
            }
        results[name] = {
            "rank_errors": per_q,
            "centroids": len(whole),
            "payload_bytes": len(repr(whole.to_payload())),
        }
    return results


def run_hll():
    results = {}
    for n in (1_000, 10_000, 100_000):
        hll = HyperLogLog()
        hll.extend(f"item-{i}" for i in range(n))
        estimate = hll.estimate()
        results[n] = {
            "estimate": estimate,
            "rel_error": abs(estimate - n) / n,
            "payload_bytes": len(repr(hll.to_payload())),
        }
    # Merge-order invariance: shards folded in shuffled orders must give
    # bit-identical registers (register-wise max is commutative).
    shards = []
    for s in range(8):
        h = HyperLogLog()
        h.extend(f"item-{i}" for i in range(s * 12_500, (s + 1) * 12_500))
        shards.append(h)
    estimates = set()
    rng = random.Random(SEED)
    for _ in range(5):
        order = list(range(8))
        rng.shuffle(order)
        merged = HyperLogLog()
        for idx in order:
            merged.merge(shards[idx])
        estimates.add(merged.estimate())
    results["merge_order_estimates"] = sorted(estimates)
    return results


def run_memory():
    """Payload growth vs input growth for both sketches."""
    rows = {}
    rng = random.Random(SEED)
    for n in (1_000, 10_000, 100_000):
        d = TDigest()
        d.extend(rng.random() for _ in range(n))
        h = HyperLogLog()
        h.extend(f"k{i}" for i in range(n))
        rows[n] = {
            "tdigest_bytes": len(repr(d.to_payload())),
            "hll_bytes": len(repr(h.to_payload())),
        }
    return rows


def run_experiment():
    return {
        "tdigest": run_tdigest(),
        "hll": run_hll(),
        "memory": run_memory(),
    }


def build_report(results) -> str:
    td_rows = []
    for name, r in results["tdigest"].items():
        for q, errs in r["rank_errors"].items():
            td_rows.append(
                [
                    name,
                    f"p{q * 100:g}",
                    f"{errs['whole'] * 100:.3f}%",
                    f"{errs['merged'] * 100:.3f}%",
                    r["centroids"],
                ]
            )
    td = render_table(
        ["distribution", "quantile", "rank err", "10-shard err", "centroids"],
        td_rows,
        title=f"A6 -- t-digest rank error ({N} samples, compression 200)",
    )
    hll_rows = [
        [n, r["estimate"], f"{r['rel_error'] * 100:.2f}%", r["payload_bytes"]]
        for n, r in results["hll"].items()
        if isinstance(n, int)
    ]
    hll = render_table(
        ["distinct items", "estimate", "error", "payload bytes"],
        hll_rows,
        title="A6 -- HyperLogLog cardinality (precision 12)",
    )
    mem_rows = [
        [n, r["tdigest_bytes"], r["hll_bytes"]]
        for n, r in results["memory"].items()
    ]
    mem = render_table(
        ["items", "t-digest bytes", "HLL bytes"],
        mem_rows,
        title="A6 -- payload size vs item count (sub-linear gate)",
    )
    orders = results["hll"]["merge_order_estimates"]
    return "\n\n".join([td, hll, mem]) + (
        f"\nHLL shard-merge estimates over shuffled orders: {orders}\n"
        "(one value = exactly order-invariant; telemetry rollups converge\n"
        "to identical tables on any backend's delivery order)."
    )


def test_a6_sketch_accuracy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a6_sketch_accuracy", report)
    write_json_report("a6_sketch_accuracy", results, seed=SEED)
    # Gate: <= 1% rank error at every quantile, whole and shard-merged.
    for name, r in results["tdigest"].items():
        for q, errs in r["rank_errors"].items():
            assert errs["whole"] <= 0.01, (name, q, errs)
            assert errs["merged"] <= 0.01, (name, q, errs)
    # Gate: <= 2% cardinality error at 10^5 distinct items.
    assert results["hll"][100_000]["rel_error"] <= 0.02
    # Gate: merging in any order gives one identical estimate.
    assert len(results["hll"]["merge_order_estimates"]) == 1
    # Gate: memory is sub-linear — 100x the items must cost far less
    # than 100x the payload (t-digest is capped by compression, HLL by
    # its register file).
    mem = results["memory"]
    assert mem[100_000]["tdigest_bytes"] < 10 * mem[1_000]["tdigest_bytes"]
    assert mem[100_000]["hll_bytes"] < 10 * mem[1_000]["hll_bytes"]
