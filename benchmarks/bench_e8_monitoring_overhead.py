"""E8 — Overhead of metaprogrammed monitoring (the monitoring revision).

The paper's monitoring rewrite doubles every rule (a tracing twin shares
the original body).  We run the identical NameNode metadata workload on
the plain, rule-traced, and invariant-checked programs and report the
extra derivations and host CPU time each rewrite costs.
"""

import time

from harness import write_report

from repro.analysis import render_table
from repro.boomfs import master_program
from repro.monitoring import (
    TraceCollector,
    add_rule_tracing,
    boomfs_invariants_program,
    with_invariants,
)
from repro.overlog import OverlogRuntime

OPS = 120


def _workload(rt: OverlogRuntime) -> None:
    now = 0
    for i in range(OPS):
        now += 5
        kind = i % 4
        if kind == 0:
            rt.insert("request", (i, "c", "mkdir", f"/d{i}", None))
        elif kind == 1:
            rt.insert("request", (i, "c", "create", f"/d{i-1}/f", None))
        elif kind == 2:
            rt.insert("request", (i, "c", "ls", f"/d{i-2}", None))
        else:
            rt.insert("request", (i, "c", "exists", f"/d{i-3}/f", None))
        rt.tick(now=now)
        while rt.has_pending_work:
            rt.tick(now=now)


def run_one(program, with_collector=False):
    rt = OverlogRuntime(program, address="m")
    rt.install("file", [(0, -1, "", True)])
    rt.install("repfactor", [(2,)])
    rt.install("dn_timeout", [(3000,)])
    collector = None
    if with_collector:
        collector = TraceCollector()
        collector.attach(rt)
    start = time.perf_counter()
    _workload(rt)
    wall = time.perf_counter() - start
    return {
        "wall_ms": wall * 1000,
        "derivations": rt.total_derivations,
        "rules": len(rt.program.rules),
        "trace_events": len(collector.events) if collector else 0,
    }


def run_experiment():
    base = master_program()
    return {
        "plain": run_one(base),
        "rule-traced": run_one(add_rule_tracing(base), with_collector=True),
        "with invariants": run_one(
            with_invariants(base, boomfs_invariants_program())
        ),
    }


def build_report(results) -> str:
    plain = results["plain"]
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r["rules"],
                r["derivations"],
                round(r["wall_ms"], 1),
                f"{(r['wall_ms'] / plain['wall_ms'] - 1) * 100:+.0f}%",
                r["trace_events"],
            ]
        )
    table = render_table(
        [
            "program",
            "rules",
            "derivations",
            "host ms",
            "overhead",
            "trace events",
        ],
        rows,
        title=(
            f"E8 -- monitoring rewrite overhead ({OPS} NameNode metadata ops)"
        ),
    )
    return table + (
        "\nTracing twins re-evaluate every rule body, so the derivation\n"
        "count reflects the full tracing cost; the paper likewise reported\n"
        "modest, measurable overhead for metaprogrammed monitoring."
    )


def test_e8_monitoring_overhead(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e8_monitoring_overhead", report)
    assert results["rule-traced"]["trace_events"] > 0
    assert (
        results["rule-traced"]["derivations"] > results["plain"]["derivations"]
    )
