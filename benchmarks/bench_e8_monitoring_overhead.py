"""E8 — Overhead of metaprogrammed monitoring (the monitoring revision).

The paper's monitoring rewrite doubles every rule (a tracing twin shares
the original body).  We run the identical NameNode metadata workload on
the plain, rule-traced, and invariant-checked programs and report the
extra derivations and host CPU time each rewrite costs.

This repo also has a *runtime-level* alternative: the always-on metrics
registry (``repro.metrics``) counts rule firings and relation sizes
inside the evaluator instead of doubling the program.  The experiment
runs both monitoring modes against a metrics-off baseline, so the table
compares metaprogrammed tracing against runtime instrumentation.
"""

import time

from bench_e4_metadata_throughput import TOTAL_OPS, MetadataLoadGen
from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import BoomFSMaster, master_program
from repro.monitoring import (
    TraceCollector,
    add_rule_tracing,
    boomfs_invariants_program,
    with_invariants,
)
from repro.overlog import OverlogRuntime
from repro.sim import Cluster, LatencyModel

OPS = 120


def _workload(rt: OverlogRuntime) -> None:
    now = 0
    for i in range(OPS):
        now += 5
        kind = i % 4
        if kind == 0:
            rt.insert("request", (i, "c", "mkdir", f"/d{i}", None))
        elif kind == 1:
            rt.insert("request", (i, "c", "create", f"/d{i-1}/f", None))
        elif kind == 2:
            rt.insert("request", (i, "c", "ls", f"/d{i-2}", None))
        else:
            rt.insert("request", (i, "c", "exists", f"/d{i-3}/f", None))
        rt.tick(now=now)
        while rt.has_pending_work:
            rt.tick(now=now)


def run_one(program, with_collector=False, metrics=False, **runtime_kwargs):
    rt = OverlogRuntime(program, address="m", metrics=metrics, **runtime_kwargs)
    rt.install("file", [(0, -1, "", True)])
    rt.install("repfactor", [(2,)])
    rt.install("dn_timeout", [(3000,)])
    collector = None
    if with_collector:
        collector = TraceCollector()
        collector.attach(rt)
    start = time.perf_counter()
    _workload(rt)
    wall = time.perf_counter() - start
    metric_points = 0
    if rt.metrics is not None:
        snap = rt.metrics.registry.snapshot()
        metric_points = sum(
            len(v) for v in snap.values() if isinstance(v, dict)
        )
    return {
        "wall_ms": wall * 1000,
        "derivations": rt.total_derivations,
        "rules": len(rt.program.rules),
        "trace_events": len(collector.events) if collector else 0,
        "metric_points": metric_points,
    }


#: 4x the E4 op count: long enough (~500 sim-ms) that several exports
#: fire inside the timed window and per-export cost amortizes the way a
#: production cadence would against continuous load.
TELEM_OPS = 4 * TOTAL_OPS


def _run_telemetry_once(telemetry: bool):
    cluster = Cluster(latency=LatencyModel(1, 1))
    cluster.add(BoomFSMaster("master", replication=2))
    if telemetry:
        cluster.enable_telemetry(interval_ms=100)
    gen = cluster.add(
        MetadataLoadGen("loadgen", "master", total_ops=TELEM_OPS)
    )
    wall_start = time.perf_counter()
    ok = cluster.run_until(lambda: gen.done, max_time_ms=600_000)
    wall = time.perf_counter() - wall_start
    assert ok, "load generator did not finish"
    if telemetry:
        # Drain in-flight telemetry envelopes (untimed) so the
        # monitor-sample column reflects the whole run.
        cluster.run_for(200)
    monitor = cluster.monitor
    return wall, {
        "sim_ms": gen.finished_ms - gen.started_ms,
        "monitor_samples": len(monitor.samples()) if monitor else 0,
        "monitor_alarms": len(monitor.alarms()) if monitor else 0,
    }


def run_telemetry_overhead(repeats: int = 5):
    """The E4 metadata workload end-to-end, telemetry plane on vs off.

    The two modes alternate within each repetition (clock-frequency
    drift on a shared host would otherwise bias whichever mode runs
    last) and wall time is best-of-N: the sim is deterministic, so the
    minimum is the least-noise estimate of actual CPU cost."""
    walls = {False: [], True: []}
    info = {}
    for _ in range(repeats):
        for telemetry in (False, True):
            wall, detail = _run_telemetry_once(telemetry)
            walls[telemetry].append(wall)
            info[telemetry] = detail
    results = {}
    for telemetry, label in ((False, "telemetry off"), (True, "telemetry on")):
        best = min(walls[telemetry])
        results[label] = {
            "wall_ms": best * 1000,
            "wall_us_per_op": best * 1e6 / TELEM_OPS,
            **info[telemetry],
        }
    results["overhead_pct"] = (
        results["telemetry on"]["wall_ms"]
        / results["telemetry off"]["wall_ms"]
        - 1
    ) * 100
    return results


def run_experiment():
    base = master_program()
    # Both monitoring modes measured against the same metrics-off plain
    # run: the rewrite pays in derivations, the registry in bookkeeping.
    return {
        "plain": run_one(base),
        "runtime metrics": run_one(base, metrics=True),
        "provenance+profiler": run_one(base, provenance=True, profile=True),
        "rule-traced": run_one(add_rule_tracing(base), with_collector=True),
        "with invariants": run_one(
            with_invariants(base, boomfs_invariants_program())
        ),
    }


def build_report(results) -> str:
    plain = results["plain"]
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r["rules"],
                r["derivations"],
                round(r["wall_ms"], 1),
                f"{(r['wall_ms'] / plain['wall_ms'] - 1) * 100:+.0f}%",
                r["trace_events"],
                r["metric_points"],
            ]
        )
    table = render_table(
        [
            "program",
            "rules",
            "derivations",
            "host ms",
            "overhead",
            "trace events",
            "metric points",
        ],
        rows,
        title=(
            f"E8 -- monitoring overhead, rewrite vs runtime metrics "
            f"({OPS} NameNode metadata ops)"
        ),
    )
    return table + (
        "\nTracing twins re-evaluate every rule body, so the derivation\n"
        "count reflects the full tracing cost; the runtime metrics registry\n"
        "and the provenance ledger + plan profiler (docs/PROVENANCE.md)\n"
        "observe the same firings without adding rules or derivations."
    )


def build_telemetry_report(results) -> str:
    rows = [
        [
            name,
            round(r["wall_ms"], 1),
            round(r["wall_us_per_op"], 1),
            r["monitor_samples"],
        ]
        for name, r in results.items()
        if isinstance(r, dict)
    ]
    table = render_table(
        ["mode", "host ms", "us/op", "monitor samples"],
        rows,
        title=(
            f"E8b -- telemetry-plane overhead "
            f"({TELEM_OPS} NameNode metadata ops, export every 100 sim-ms)"
        ),
    )
    return table + (
        f"\noverhead: {results['overhead_pct']:+.1f}% — the export loop\n"
        "snapshots each registry into telemetry tuples on a timer, so the\n"
        "cost scales with metric count x export rate, not with request\n"
        "rate (docs/TELEMETRY.md)."
    )


def test_e8_monitoring_overhead(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    telemetry = run_telemetry_overhead()
    report = (
        build_report(results) + "\n\n" + build_telemetry_report(telemetry)
    )
    write_report("e8_monitoring_overhead", report)
    write_json_report(
        "e8_monitoring_overhead",
        {"rewrites": results, "telemetry": telemetry},
        mode="matrix",
    )
    # End-to-end telemetry overhead gate: shipping metrics-as-tuples to
    # the monitor must cost < 10% on the E4 metadata workload.
    assert telemetry["overhead_pct"] < 10.0, telemetry
    assert telemetry["telemetry on"]["monitor_samples"] > 0
    # Virtual time is essentially untouched: export timers interleave
    # with step scheduling at equal timestamps, so completion may shift
    # by a tick or two, but telemetry must not slow the workload itself.
    assert (
        abs(
            telemetry["telemetry on"]["sim_ms"]
            - telemetry["telemetry off"]["sim_ms"]
        )
        <= 5
    )
    assert results["rule-traced"]["trace_events"] > 0
    assert (
        results["rule-traced"]["derivations"] > results["plain"]["derivations"]
    )
    # The registry counts firings without rewriting the program.
    assert results["runtime metrics"]["metric_points"] > 0
    assert (
        results["runtime metrics"]["derivations"]
        == results["plain"]["derivations"]
    )
    # The provenance ledger and sampled profiler are pure observers too.
    assert (
        results["provenance+profiler"]["derivations"]
        == results["plain"]["derivations"]
    )
