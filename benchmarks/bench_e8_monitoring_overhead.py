"""E8 — Overhead of metaprogrammed monitoring (the monitoring revision).

The paper's monitoring rewrite doubles every rule (a tracing twin shares
the original body).  We run the identical NameNode metadata workload on
the plain, rule-traced, and invariant-checked programs and report the
extra derivations and host CPU time each rewrite costs.

This repo also has a *runtime-level* alternative: the always-on metrics
registry (``repro.metrics``) counts rule firings and relation sizes
inside the evaluator instead of doubling the program.  The experiment
runs both monitoring modes against a metrics-off baseline, so the table
compares metaprogrammed tracing against runtime instrumentation.
"""

import time

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import master_program
from repro.monitoring import (
    TraceCollector,
    add_rule_tracing,
    boomfs_invariants_program,
    with_invariants,
)
from repro.overlog import OverlogRuntime

OPS = 120


def _workload(rt: OverlogRuntime) -> None:
    now = 0
    for i in range(OPS):
        now += 5
        kind = i % 4
        if kind == 0:
            rt.insert("request", (i, "c", "mkdir", f"/d{i}", None))
        elif kind == 1:
            rt.insert("request", (i, "c", "create", f"/d{i-1}/f", None))
        elif kind == 2:
            rt.insert("request", (i, "c", "ls", f"/d{i-2}", None))
        else:
            rt.insert("request", (i, "c", "exists", f"/d{i-3}/f", None))
        rt.tick(now=now)
        while rt.has_pending_work:
            rt.tick(now=now)


def run_one(program, with_collector=False, metrics=False, **runtime_kwargs):
    rt = OverlogRuntime(program, address="m", metrics=metrics, **runtime_kwargs)
    rt.install("file", [(0, -1, "", True)])
    rt.install("repfactor", [(2,)])
    rt.install("dn_timeout", [(3000,)])
    collector = None
    if with_collector:
        collector = TraceCollector()
        collector.attach(rt)
    start = time.perf_counter()
    _workload(rt)
    wall = time.perf_counter() - start
    metric_points = 0
    if rt.metrics is not None:
        snap = rt.metrics.registry.snapshot()
        metric_points = sum(
            len(v) for v in snap.values() if isinstance(v, dict)
        )
    return {
        "wall_ms": wall * 1000,
        "derivations": rt.total_derivations,
        "rules": len(rt.program.rules),
        "trace_events": len(collector.events) if collector else 0,
        "metric_points": metric_points,
    }


def run_experiment():
    base = master_program()
    # Both monitoring modes measured against the same metrics-off plain
    # run: the rewrite pays in derivations, the registry in bookkeeping.
    return {
        "plain": run_one(base),
        "runtime metrics": run_one(base, metrics=True),
        "provenance+profiler": run_one(base, provenance=True, profile=True),
        "rule-traced": run_one(add_rule_tracing(base), with_collector=True),
        "with invariants": run_one(
            with_invariants(base, boomfs_invariants_program())
        ),
    }


def build_report(results) -> str:
    plain = results["plain"]
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r["rules"],
                r["derivations"],
                round(r["wall_ms"], 1),
                f"{(r['wall_ms'] / plain['wall_ms'] - 1) * 100:+.0f}%",
                r["trace_events"],
                r["metric_points"],
            ]
        )
    table = render_table(
        [
            "program",
            "rules",
            "derivations",
            "host ms",
            "overhead",
            "trace events",
            "metric points",
        ],
        rows,
        title=(
            f"E8 -- monitoring overhead, rewrite vs runtime metrics "
            f"({OPS} NameNode metadata ops)"
        ),
    )
    return table + (
        "\nTracing twins re-evaluate every rule body, so the derivation\n"
        "count reflects the full tracing cost; the runtime metrics registry\n"
        "and the provenance ledger + plan profiler (docs/PROVENANCE.md)\n"
        "observe the same firings without adding rules or derivations."
    )


def test_e8_monitoring_overhead(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e8_monitoring_overhead", report)
    write_json_report("e8_monitoring_overhead", results)
    assert results["rule-traced"]["trace_events"] > 0
    assert (
        results["rule-traced"]["derivations"] > results["plain"]["derivations"]
    )
    # The registry counts firings without rewriting the program.
    assert results["runtime metrics"]["metric_points"] > 0
    assert (
        results["runtime metrics"]["derivations"]
        == results["plain"]["derivations"]
    )
    # The provenance ledger and sampled profiler are pure observers too.
    assert (
        results["provenance+profiler"]["derivations"]
        == results["plain"]["derivations"]
    )
