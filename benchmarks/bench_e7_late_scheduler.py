"""E7 — Speculative execution under stragglers (the paper's LATE figures).

The paper re-implements Zaharia et al.'s LATE policy in a handful of
Overlog rules and reproduces its result: with heterogeneous/straggling
nodes, LATE's backup tasks cut job completion substantially versus no
speculation, and choose better backups than Hadoop's native heuristic.
We run wordcount on a cluster with 25% straggler nodes for all three
policies and report durations, backup counts, and reduce-completion CDFs.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.mapreduce import run_wordcount

SETUP = dict(
    num_trackers=8,
    num_maps=16,
    num_reduces=6,
    words_per_file=2500,
    straggler_count=2,
    straggler_factor=8.0,
    seed=3,
    jt_kwargs=dict(spec_min_runtime_ms=800),
)
POLICIES = ("fifo", "hadoop", "late")


def run_experiment():
    results = {}
    outputs = set()
    for policy in POLICIES:
        result, output, mr = run_wordcount(policy=policy, **SETUP)
        results[policy] = {
            "duration": result.duration_ms,
            "backups": len(mr.jobtracker.speculative_attempts(result.job_id)),
            "reduce_cdf": result.reduce_completion_times(),
            "map_cdf": result.map_completion_times(),
        }
        outputs.add(tuple(sorted(output.items())))
    assert len(outputs) == 1, "speculation must not change job output"
    return results


def build_report(results) -> str:
    fifo = results["fifo"]["duration"]
    rows = [
        [
            policy,
            r["duration"],
            round(fifo / r["duration"], 2),
            r["backups"],
            r["reduce_cdf"][len(r["reduce_cdf"]) // 2],
            r["reduce_cdf"][-1],
        ]
        for policy, r in results.items()
    ]
    table = render_table(
        [
            "policy",
            "job ms",
            "speedup vs fifo",
            "backups",
            "reduce p50 ms",
            "reduce max ms",
        ],
        rows,
        title=(
            "E7 / paper LATE figures -- wordcount, 8 trackers, "
            "2 stragglers (8x slow)"
        ),
    )
    lines = [table, "", "Reduce completion series (ms, one point per task):"]
    for policy in POLICIES:
        lines.append(f"  {policy:7s} {results[policy]['reduce_cdf']}")
    lines.append(
        "\nNo-speculation FIFO waits for stragglers; both speculative\n"
        "policies launch backups and pull the CDF tail in, with identical\n"
        "job output — the paper's scheduler-agility demonstration."
    )
    return "\n".join(lines)


def test_e7_late_scheduler(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e7_late_scheduler", report)
    write_json_report("e7_late_scheduler", results, seed=SETUP["seed"])
    assert results["late"]["duration"] < results["fifo"]["duration"] * 0.8
    assert results["late"]["backups"] >= 1
    assert results["fifo"]["backups"] == 0
