"""E1 — Code size (the paper's Table 1).

The paper reports that BOOM-FS's metadata plane is ~85 Overlog rules
versus ~21,700 lines of Java in HDFS, and BOOM-MR's scheduler a similar
ratio.  Here we measure this repository the same way: declarative rules
(plus their Python glue) versus the imperative baseline implementations
of the *same* protocols on the same substrate.
"""

from pathlib import Path

from harness import write_json_report, write_report

from repro.analysis import count_olg, count_package, render_table

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _olg_stats(*relpaths: str):
    rules = lines = 0
    for rel in relpaths:
        stats = count_olg(SRC / rel)
        rules += stats.rules
        lines += stats.lines
    return rules, lines


def _py_loc(package: str, only: set[str] | None = None) -> int:
    counts = count_package(SRC / package)
    if only is not None:
        counts = {k: v for k, v in counts.items() if k in only}
    return sum(counts.values())


def build_table() -> str:
    fs_rules, fs_lines = _olg_stats("boomfs/programs/boomfs_master.olg")
    fs_glue = _py_loc(
        "boomfs", {"master.py", "partition.py"}
    )
    px_rules, px_lines = _olg_stats("paxos/programs/paxos.olg")
    px_glue = _py_loc("paxos")
    mr_rules, mr_lines = _olg_stats(
        "mapreduce/scheduler_programs/boom_mr.olg",
        "mapreduce/scheduler_programs/spec_hadoop.olg",
        "mapreduce/scheduler_programs/spec_late.olg",
    )
    mr_glue = _py_loc("mapreduce", {"jobtracker.py"})

    base_nn = _py_loc("hadoop", {"hdfs.py"})
    base_jt = _py_loc("hadoop", {"jobtracker.py"})

    rows = [
        ["BOOM-FS NameNode", fs_rules, fs_lines, fs_glue, base_nn,
         round(base_nn / fs_lines, 2)],
        ["BOOM-MR JobTracker (3 policies)", mr_rules, mr_lines, mr_glue,
         base_jt, round(base_jt / mr_lines, 2)],
        ["Overlog Paxos + replicated NN", px_rules, px_lines, px_glue, "-", "-"],
    ]
    table = render_table(
        [
            "component",
            "olg rules",
            "olg lines",
            "python glue loc",
            "imperative baseline loc",
            "imperative/olg line ratio",
        ],
        rows,
        title="E1 / paper Table 1 -- code size: declarative vs imperative",
    )
    note = (
        "\nNote: the paper compared against production Hadoop (~21.7k lines\n"
        "of Java for HDFS alone); our baseline implements the same protocols\n"
        "on the same simulator, so the ratio here is a lower bound on the\n"
        "paper's (a production system carries far more incidental code)."
    )
    return table + note


def test_e1_code_size(benchmark):
    report = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_report("e1_code_size", report)
    write_json_report("e1_code_size", {"report": report})
    assert "BOOM-FS NameNode" in report
