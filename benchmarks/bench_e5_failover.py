"""E5 — NameNode availability under failure (the paper's Paxos figures).

The paper kills the primary NameNode during a workload and shows the
Paxos-replicated master rides through while an unreplicated master loses
everything.  We reproduce the timeline: a client performs steady metadata
operations; at T we crash the (leader) master; we report per-operation
latency before/during/after, the measured recovery gap, and what survives
— for an unreplicated master versus 3 and 5 replicas.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode, FSError, FSTimeout
from repro.paxos import ReplicatedFSClient, ReplicatedMaster
from repro.sim import Cluster, LatencyModel

OPS_BEFORE = 10
OPS_AFTER = 10


def _run_workload(cluster, fs, crash_action):
    latencies = []
    for i in range(OPS_BEFORE):
        t0 = cluster.now
        fs.create(f"/w/pre{i}")
        latencies.append(("pre", i, cluster.now - t0))
    crash_action()
    recovery_gap = None
    for i in range(OPS_AFTER):
        t0 = cluster.now
        try:
            fs.create(f"/w/post{i}")
            if recovery_gap is None:
                recovery_gap = cluster.now - t0
            latencies.append(("post", i, cluster.now - t0))
        except (FSError, FSTimeout) as exc:
            latencies.append(("post", i, -1))
    return latencies, recovery_gap


def run_unreplicated():
    cluster = Cluster(latency=LatencyModel(1, 2))
    master = cluster.add(BoomFSMaster("m0", replication=1))
    cluster.add(DataNode("dn0", masters=["m0"], heartbeat_ms=300))
    fs = cluster.add(
        BoomFSClient("client", masters=["m0"], op_timeout_ms=8000)
    )
    cluster.run_for(700)
    fs.mkdir("/w")

    def crash():
        cluster.crash("m0")
        cluster.restart_at(cluster.now + 500, "m0")

    latencies, gap = _run_workload(cluster, fs, crash)
    surviving = len(master.paths()) - 1  # minus root
    return {
        "label": "unreplicated (restart after 500ms)",
        "latencies": latencies,
        "recovery_ms": gap,
        "paths_after": surviving,
    }


def run_replicated(n):
    cluster = Cluster(latency=LatencyModel(1, 2))
    group = [f"m{i}" for i in range(n)]
    masters = [
        cluster.add(ReplicatedMaster(a, group, replication=1)) for a in group
    ]
    cluster.add(DataNode("dn0", masters=group, heartbeat_ms=300))
    fs = cluster.add(ReplicatedFSClient("client", group, op_timeout_ms=30_000))
    cluster.run_until(lambda: any(m.is_leader for m in masters), max_time_ms=15_000)
    cluster.run_for(300)
    fs.mkdir("/w")

    def crash():
        leader = next(m for m in masters if not m.crashed and m.is_leader)
        cluster.crash(leader.address)

    latencies, gap = _run_workload(cluster, fs, crash)
    survivor = next(m for m in masters if not m.crashed)
    return {
        "label": f"{n} Paxos replicas (leader killed)",
        "latencies": latencies,
        "recovery_ms": gap,
        "paths_after": len(survivor.paths()) - 1,
    }


def run_experiment():
    return [run_unreplicated(), run_replicated(3), run_replicated(5)]


def build_report(results) -> str:
    expected_total = OPS_BEFORE + OPS_AFTER + 1  # +1 for /w
    rows = []
    for r in results:
        pre = [ms for phase, _, ms in r["latencies"] if phase == "pre" and ms >= 0]
        post = [ms for phase, _, ms in r["latencies"] if phase == "post" and ms >= 0]
        rows.append(
            [
                r["label"],
                round(sum(pre) / len(pre)) if pre else "-",
                r["recovery_ms"] if r["recovery_ms"] is not None else "never",
                round(sum(post) / len(post)) if post else "-",
                f"{r['paths_after']}/{expected_total}",
            ]
        )
    table = render_table(
        [
            "configuration",
            "pre-crash op ms (avg)",
            "first-op recovery ms",
            "post-crash op ms (avg)",
            "metadata surviving",
        ],
        rows,
        title="E5 / paper availability figure -- master killed mid-workload",
    )
    return table + (
        "\nThe unreplicated master comes back empty (every path created is\n"
        "lost); Paxos groups lose nothing and stall only for the election\n"
        "plus client retry — the paper's availability-revision result."
    )


def test_e5_failover(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("e5_failover", report)
    write_json_report("e5_failover", results)
    unrep, rep3, rep5 = results
    expected_total = OPS_BEFORE + OPS_AFTER + 1
    assert unrep["paths_after"] < expected_total  # data loss
    assert rep3["paths_after"] == expected_total  # nothing lost
    assert rep5["paths_after"] == expected_total
