"""A4 (ablation) — replication factor vs data survival.

BOOM-FS's re-replication rules (u1–u5) restore lost replicas from
heartbeat state.  We store a population of files, then repeatedly crash
random DataNodes (with staggered restarts) and measure how many files
remain readable, for replication factors 1–3.
"""

from harness import write_json_report, write_report

from repro.analysis import render_table
from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode, FSError, FSTimeout
from repro.sim import Cluster, LatencyModel

FILES = 12
DATANODES = 6
CRASH_ROUNDS = 3


def run_one(replication: int, seed: int = 1):
    import random

    rng = random.Random(seed)
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 1))
    cluster.add(BoomFSMaster("master", replication=replication))
    for i in range(DATANODES):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
    fs = cluster.add(
        BoomFSClient("client", masters=["master"], op_timeout_ms=5000)
    )
    cluster.run_for(900)
    fs.mkdir("/d")
    for i in range(FILES):
        fs.write(f"/d/f{i}", bytes([i]) * 300)
    cluster.run_for(1000)

    # Crash rounds: kill two random DataNodes, wait (re-replication may
    # repair), restart them empty... their chunks are gone for good, so
    # only re-replicated data survives.
    for _ in range(CRASH_ROUNDS):
        victims = rng.sample(range(DATANODES), 2)
        for v in victims:
            dn = cluster.get(f"dn{v}")
            dn.chunks.clear()  # disk loss, not just downtime
            cluster.crash(f"dn{v}")
        cluster.run_for(8000)  # detection + re-replication window
        for v in victims:
            cluster.restart(f"dn{v}")
        cluster.run_for(2000)

    readable = 0
    for i in range(FILES):
        try:
            if fs.read(f"/d/f{i}") == bytes([i]) * 300:
                readable += 1
        except (FSError, FSTimeout):
            pass
    return readable


def run_experiment():
    return {r: run_one(r) for r in (1, 2, 3)}


def build_report(results) -> str:
    rows = [
        [r, f"{survived}/{FILES}", f"{survived / FILES:.0%}"]
        for r, survived in results.items()
    ]
    table = render_table(
        ["replication", "files readable", "survival"],
        rows,
        title=(
            f"A4 (ablation) -- {CRASH_ROUNDS} rounds of double DataNode "
            f"disk loss, {DATANODES} DataNodes"
        ),
    )
    return table + (
        "\nUnreplicated data dies with its DataNode; with r>=2 the master's\n"
        "re-replication rules race the failures and win for most files —\n"
        "the availability argument for (declarative) replica repair."
    )


def test_a4_replication_durability(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = build_report(results)
    write_report("a4_replication_durability", report)
    write_json_report("a4_replication_durability", results, seed=1)
    assert results[1] < FILES  # unreplicated loses data
    assert results[3] >= results[1]
    assert results[3] == FILES  # r=3 survives this schedule
