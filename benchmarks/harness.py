"""Shared helpers for the experiment benchmarks.

Every ``bench_eN_*.py`` regenerates one of the paper's tables/figures:
it runs the experiment on the simulator, renders the same rows/series the
paper reports, writes the report under ``benchmarks/reports/`` and prints
it (visible with ``pytest benchmarks/ --benchmark-only -s``).

Reports are the artifacts EXPERIMENTS.md cites.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

REPORTS_DIR = Path(__file__).resolve().parent / "reports"

# Import time is as close to bench-process start as the harness can see:
# every JSON report stamps its wall-clock age against this, so CI trends
# catch a bench whose runtime quietly balloons even when its numbers stay
# healthy.
_T0 = time.perf_counter()


def write_report(name: str, text: str) -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")
    return path


def _jsonable(value):
    """Coerce experiment payloads to plain JSON types (tuples/sets become
    lists, unknown objects their repr)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_json_report(
    name: str,
    payload,
    backend: str = "sim",
    seed=0,
    mode: str = "metrics",
) -> Path:
    """Write the machine-readable twin of a text report:
    ``benchmarks/reports/<name>.json``.

    Every report records which transport backend produced it (``sim`` by
    default — pass ``cluster.backend`` when a bench runs elsewhere), the
    seed(s) the run used, and which observability planes were live
    (``mode``: ``"off"`` — metrics disabled, ``"metrics"`` — the
    always-on registry, ``"metrics+telemetry"`` — the export loop too,
    ``"matrix"`` — the rows themselves compare modes), so numbers from
    different substrates or instrumentation levels are never compared
    silently.
    """
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{name}.json"
    document = {
        "_backend": backend,
        "_mode": mode,
        "_seed": _jsonable(seed),
        "_wall_s": round(time.perf_counter() - _T0, 3),
        "results": _jsonable(payload),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"[json report written to {path}]")
    return path
