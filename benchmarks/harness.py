"""Shared helpers for the experiment benchmarks.

Every ``bench_eN_*.py`` regenerates one of the paper's tables/figures:
it runs the experiment on the simulator, renders the same rows/series the
paper reports, writes the report under ``benchmarks/reports/`` and prints
it (visible with ``pytest benchmarks/ --benchmark-only -s``).

Reports are the artifacts EXPERIMENTS.md cites.
"""

from __future__ import annotations

from pathlib import Path

REPORTS_DIR = Path(__file__).resolve().parent / "reports"


def write_report(name: str, text: str) -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")
    return path
