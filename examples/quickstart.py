#!/usr/bin/env python3
"""Quickstart: the three layers of the reproduction in ~60 lines.

1. Run a raw Overlog program (the paper's substrate, here in Python).
2. Bring up BOOM-FS — the HDFS-workalike whose NameNode *is* an Overlog
   program — and use it like a filesystem.
3. Show the paper's point: the entire metadata plane is a few dozen
   declarative rules.

Run:  python examples/quickstart.py
"""

from repro.analysis import count_olg
from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.overlog import OverlogRuntime
from repro.sim import Cluster, LatencyModel

# ---------------------------------------------------------------- layer 1
print("== 1. Overlog in ten lines: transitive closure ==")
rt = OverlogRuntime(
    """
    program paths;
    define(link, keys(0, 1), {Str, Str});
    define(path, keys(0, 1), {Str, Str});
    path(X, Y) :- link(X, Y);
    path(X, Z) :- link(X, Y), path(Y, Z);
    """
)
rt.insert_many("link", [("a", "b"), ("b", "c"), ("c", "d")])
rt.tick()
print("   paths:", sorted(rt.rows("path")))

# ---------------------------------------------------------------- layer 2
print("\n== 2. BOOM-FS: a filesystem whose NameNode is Overlog ==")
cluster = Cluster(latency=LatencyModel(base_ms=1, jitter_ms=2))
master = cluster.add(BoomFSMaster("master", replication=2))
for i in range(3):
    cluster.add(DataNode(f"dn{i}", masters=["master"]))
fs = cluster.add(BoomFSClient("client", masters=["master"]))
cluster.run_for(1000)  # DataNodes heartbeat in

fs.mkdir("/demo")
fs.write("/demo/hello.txt", b"hello, declarative cloud!")
print("   ls /        :", fs.ls("/"))
print("   ls /demo    :", fs.ls("/demo"))
print("   read back   :", fs.read("/demo/hello.txt").decode())
print("   fqpath view :", master.paths())

fs.mv("/demo/hello.txt", "/demo/renamed.txt")
print("   after mv    :", fs.ls("/demo"))
fs.rm("/demo")
print("   after rm    :", fs.ls("/"))

# ---------------------------------------------------------------- layer 3
print("\n== 3. The whole NameNode is this many rules ==")
from pathlib import Path

olg = (
    Path(__file__).resolve().parents[1]
    / "src/repro/boomfs/programs/boomfs_master.olg"
)
stats = count_olg(olg)
print(
    f"   {stats.rules} Overlog rules over {stats.tables} tables "
    f"({stats.lines} non-comment lines) implement mkdir/create/ls/rm/mv,"
)
print(
    "   chunk placement, DataNode liveness, garbage collection and "
    "re-replication."
)
