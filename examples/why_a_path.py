"""Ask the NameNode *why* a path exists — provenance across nodes.

Builds a small BOOM-FS deployment with the provenance ledger and the
sampled plan profiler enabled on the master, runs a few traced metadata
ops, and prints:

* ``why``: the derivation DAG of ``fqpath('/data/reports', ...)``,
  walked from the master's ledger back to EDB facts — attributing each
  request to the client via the trace context stamped on it, and
* ``why not``: which rule and which body atom blocks a path that was
  never created, and
* the profiler's hot-rules report for the run.

Tracing each op with ``fs.start_trace`` is what lets the DAG cross
nodes: untraced requests carry no trace context, so the master-side DAG
bottoms out at an ``input`` entry of unknown origin.  See
docs/PROVENANCE.md for the model.
"""

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.sim import Cluster, LatencyModel

cluster = Cluster(seed=7, latency=LatencyModel(base_ms=2, jitter_ms=3))
master = cluster.add(
    BoomFSMaster("master", replication=2, provenance=True, profile=True)
)
for i in range(2):
    cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=500))
fs = cluster.add(BoomFSClient("client", masters=["master"]))
cluster.run_for(1200)  # heartbeats register the DataNodes

# Trace each op so the derivation DAG can stitch client -> master.
fs.start_trace("mkdir /data")
fs.mkdir("/data")
fs.start_trace("mkdir /data/reports")
fs.mkdir("/data/reports")
cluster.run_for(500)

print("=== why does /data/reports exist? ===")
print(master.why_path("/data/reports"))
print()
print("=== why is there no /data/missing? ===")
print(master.why_not_path("/data/missing"))
print()
print("=== hot rules on the master (sampled) ===")
print(master.runtime.profile_report(top=5))
