#!/usr/bin/env python3
"""Fault-campaign observatory: measure the monitoring plane itself.

The monitoring revision's claim is that invariants and alarms are "just
more Overlog"; a fault campaign asks the follow-up question an operator
would: *how long after a real fault does the first signal fire, and is
the plane silent when nothing is wrong?*

This walkthrough runs three campaigns on the deterministic simulator:

1. a **no-fault control** — full observability stack, empty fault
   schedule; any alarm or violation here is a false positive by
   construction;
2. a **multi-class campaign** — seeded crash group, rolling partition
   and amnesiac disk-loss restart injected under an open-loop metadata
   workload, with every injection and detection on one timeline;
3. the **same campaign again** — byte-identical JSON artifact, which is
   what lets CI diff two runs of the same seed.

Run it::

    PYTHONPATH=src python examples/run_a_fault_campaign.py
"""

from repro.campaign import (
    CampaignSpec,
    render_campaign_text,
    render_matrix_text,
    run_campaign,
    run_matrix,
)

BASE = dict(
    backend="sim",
    datanodes=5,
    replication=2,
    preload_files=4,
    total_ops=400,
    arrival_ms=60,
    slot_ms=12_000,
)


def main() -> None:
    # -- 1. the control: a healthy cluster must be boring ----------------
    control = run_campaign(
        CampaignSpec(name="control", seed=0, classes=(), **BASE)
    )
    print(
        f"[control] alarms={control.report['alarms_total']} "
        f"violations={control.report['violations_total']}"
    )
    assert control.report["alarms_total"] == 0
    assert control.report["violations_total"] == 0

    # -- 2. the campaign: three fault classes, one timeline --------------
    spec = CampaignSpec(
        name="demo",
        seed=1,
        classes=("crash", "partition", "amnesia"),
        **BASE,
    )
    result = run_campaign(spec)
    print()
    print(render_campaign_text(result))

    # Detection latency is per incident: first attributed signal minus
    # injection time.  A censored recovery (--) is a finding: amnesia's
    # chunk-agreement violation never clears because no repair retracts
    # the master's stale chunk beliefs.
    for incident in result.report["incidents"]:
        print(
            f"  incident {incident['class']:<10} at {incident['ms']}ms -> "
            f"detected after {incident['detection_ms']}ms"
        )

    # -- 3. determinism: same spec, same bytes ---------------------------
    again = run_campaign(spec)
    assert again.to_json() == result.to_json()
    print("\nsame seed, same bytes:", len(result.to_json()), "chars")

    # Pooling across campaigns (normally: seeds x backends) gives the
    # scenario matrix CI publishes as an artifact.
    print()
    print(render_matrix_text(run_matrix([result, again])))


if __name__ == "__main__":
    main()
