#!/usr/bin/env python3
"""Run the full BOOM analytics stack: wordcount on BOOM-MR over BOOM-FS.

Mirrors the paper's EC2 experiment in miniature: stage a synthetic crawl
into the distributed filesystem, run a MapReduce job whose JobTracker is
an Overlog program, and verify the distributed result against a local
single-process reference run.

Run:  python examples/wordcount_cluster.py
"""

from repro.analysis import render_table, summarize
from repro.mapreduce import (
    JobRunner,
    JobSpec,
    build_mr_cluster,
    local_wordcount,
    make_input_files,
    wordcount_map,
    wordcount_reduce,
)

NUM_TRACKERS = 6
NUM_MAPS = 12
NUM_REDUCES = 4
WORDS_PER_FILE = 3000

print(f"Bringing up {NUM_TRACKERS} TaskTrackers + DataNodes + 1 NameNode "
      f"+ 1 JobTracker (declarative FIFO policy)...")
mr = build_mr_cluster(num_trackers=NUM_TRACKERS, policy="fifo", seed=42)
runner = JobRunner(mr)

print(f"Staging {NUM_MAPS} input files x {WORDS_PER_FILE} words into BOOM-FS...")
datasets = make_input_files(WORDS_PER_FILE, NUM_MAPS, seed=42)
paths = runner.stage_inputs("/crawl", datasets)

spec = JobSpec(
    job_id=0,
    inputs=paths,
    num_reduces=NUM_REDUCES,
    map_func=wordcount_map,
    reduce_func=wordcount_reduce,
    output_dir="/out",
)
print("Submitting wordcount job...")
result = runner.run_job(spec)

print(f"\nJob finished in {result.duration_ms} simulated ms")
rows = [
    ["map", len(result.map_times), *summarize(result.map_completion_times()).values()],
    [
        "reduce",
        len(result.reduce_times),
        *summarize(result.reduce_completion_times()).values(),
    ],
]
print(
    render_table(
        ["phase", "tasks", "min", "p25", "p50", "p75", "p95", "max", "mean"],
        rows,
        title="Task completion offsets from submit (ms)",
    )
)

output = runner.fetch_output("/out")
expected = local_wordcount(datasets)
assert output == expected, "distributed result != local reference!"
print(f"\nOutput verified against local reference: {len(output)} distinct words")
top = sorted(output.items(), key=lambda kv: -kv[1])[:8]
print(render_table(["word", "count"], top, title="Top words (Zipf skew visible)"))
