#!/usr/bin/env python3
"""Scheduler agility: swap BOOM-MR's policy rules and re-run the job.

The paper's BOOM-MR point: the Hadoop FIFO policy and the LATE
speculative policy (Zaharia et al., OSDI'08) are just alternative rule
sets for the same JobTracker.  With a quarter of the cluster straggling
8x slow, watch what each policy does to the task-completion CDF.

Run:  python examples/late_vs_fifo.py
"""

from repro.analysis import render_ascii_cdf, render_table
from repro.mapreduce import run_wordcount

SETUP = dict(
    num_trackers=6,
    num_maps=12,
    num_reduces=4,
    words_per_file=2000,
    straggler_count=2,
    straggler_factor=8.0,
    seed=3,
    jt_kwargs=dict(spec_min_runtime_ms=800),
)

print("Cluster: 6 TaskTrackers, 2 of them 8x slow.  Same wordcount, three "
      "scheduler policies.\n")

rows = []
reduce_cdfs = {}
for policy in ("fifo", "hadoop", "late"):
    result, output, mr = run_wordcount(policy=policy, **SETUP)
    spec_attempts = mr.jobtracker.speculative_attempts(result.job_id)
    rows.append(
        [
            policy,
            result.duration_ms,
            len(spec_attempts),
            max(result.map_completion_times()),
            max(result.reduce_completion_times()),
        ]
    )
    reduce_cdfs[policy] = result.reduce_completion_times()

print(
    render_table(
        ["policy", "job ms", "backups", "last map ms", "last reduce ms"],
        rows,
        title="Policy comparison under stragglers",
    )
)

print()
print(render_ascii_cdf(reduce_cdfs, title="Reduce completion time CDFs (ms)"))

fifo_ms = rows[0][1]
late_ms = rows[2][1]
print(f"\nLATE finishes the job {fifo_ms / late_ms:.1f}x faster than "
      f"no-speculation FIFO — the paper's (and Zaharia et al.'s) result shape.")
