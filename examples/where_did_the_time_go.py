"""Where did the time go? — latency accounting end to end.

Drives a seeded closed-loop mix of NameNode metadata operations against
a small BOOM-FS deployment, then explains the result three ways:

* per-op p50/p99/p999 latency CDFs from the load driver,
* critical-path breakdowns of the slowest requests — every millisecond
  attributed to compute (per rule), outbox batching, backpressure,
  network, timer wait, or honestly left as "other",
* a flight-recorder dump of the moments before an SLO alarm fired.

The master is given a CPU cost model so requests genuinely queue behind
each other's fixpoints — an isolated request never shows compute time;
contention does.  Deterministic: same seed, same report, byte-identical
dump.  See docs/OBSERVABILITY.md §latency accounting for the model.
"""

from repro.boomfs import BoomFSMaster, DataNode
from repro.latency import latency_reports, render_category_summary
from repro.sim import Cluster, LatencyModel
from repro.workload import LoadDriver, run_driver

cluster = Cluster(seed=7, latency=LatencyModel(base_ms=1, jitter_ms=3))
master = cluster.add(
    BoomFSMaster("master", replication=2, per_derivation_cost_us=500)
)
for i in range(2):
    cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=500))
recorder = cluster.enable_flight_recorder(dump_on=("alarm",))
monitor = cluster.enable_telemetry(interval_ms=1000, per_op_latency=True)
cluster.run_for(1200)  # heartbeats register the DataNodes

# -- drive 300 mixed metadata ops, one trace per op -------------------------

driver = LoadDriver(
    "loadgen", masters=["master"], total_ops=300, window=8, seed=7
)
run_driver(cluster, driver)

print("=== per-op latency CDFs ===")
print(driver.render_report())
print()

# -- explain the slowest op, then the whole slow decile ---------------------

slowest = driver.slowest(0.1)
worst = slowest[0]
print(f"=== critical path: {worst.op} {worst.path} "
      f"({worst.latency_ms} ms) ===")
print(cluster.latency_report(worst.trace_id))
print()
print("same thing, from the component:")
print(master.why_slow(worst.trace_id).splitlines()[0], "...")
print()

print("=== slow decile by category ===")
reports = latency_reports(
    cluster.tracer, [r.trace_id for r in slowest if r.trace_id]
)
print(render_category_summary(reports))
print()

# -- arm an SLO; the burn alarm dumps the flight recorder -------------------

monitor.set_slo("request.latency_ms.mkdir", 1.0)  # deliberately tight
cluster.run_for(2500)  # next export round samples, alarm fires, ring dumps

print("=== alarms ===")
for name, subject, detail in sorted(monitor.alarms()):
    print(f"  {name}: {subject} ({detail})")
for reason, node, _path, text in recorder.dumps:
    lines = text.splitlines()
    print(f"\n[flight dump: {reason} on {node}, {len(lines) - 1} entries]")
    print("\n".join(lines[:4]))
    print("  ...")
