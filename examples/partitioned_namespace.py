#!/usr/bin/env python3
"""Scalability revision: hash-partition the NameNode across 4 masters.

Each partition runs the *unmodified* BOOM-FS Overlog program over its
slice of the namespace (directories replicated, files hashed by path);
the client routes per-path and scatter-gathers `ls`.  The example shows
file placement across partitions and that throughput scales when the
metadata plane is the bottleneck.

Run:  python examples/partitioned_namespace.py
"""

from repro.boomfs import DataNode
from repro.boomfs.partition import (
    PartitionedFSClient,
    partition_of,
    partitioned_master,
)
from repro.sim import Cluster, LatencyModel

PARTITIONS = 4

cluster = Cluster(latency=LatencyModel(1, 1))
masters = [
    cluster.add(partitioned_master(f"master{p}", PARTITIONS, replication=2))
    for p in range(PARTITIONS)
]
addrs = [m.address for m in masters]
for i in range(4):
    cluster.add(DataNode(f"dn{i}", masters=addrs, heartbeat_ms=300))
fs = cluster.add(PartitionedFSClient("client", [[a] for a in addrs]))
cluster.run_for(800)

print(f"{PARTITIONS} NameNode partitions, each running the unmodified "
      "boomfs_master.olg program\n")

fs.mkdir("/data")
print("mkdir /data  -> replicated to every partition:")
for m in masters:
    print(f"  {m.address}: paths = {sorted(m.paths())}")

print("\nCreating 12 files; each lives on exactly one partition:")
for i in range(12):
    path = f"/data/file{i:02d}"
    fs.write(path, f"contents of {path}".encode())
placement: dict[str, list[str]] = {a: [] for a in addrs}
for i in range(12):
    path = f"/data/file{i:02d}"
    owner = f"master{partition_of(path, PARTITIONS)}"
    placement[owner].append(path.rsplit('/', 1)[1])
for addr in addrs:
    print(f"  {addr}: {placement[addr]}")

print("\nls /data scatter-gathers across partitions:")
print(" ", fs.ls("/data"))

print("\nReading back through the partition router:")
sample = "/data/file07"
print(f"  {sample} -> {fs.read(sample).decode()!r}")

fs.rm("/data")
print("\nrm /data fans out to every partition; namespace now:",
      {m.address: sorted(m.paths()) for m in masters})
