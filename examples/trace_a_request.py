"""Follow one request across the cluster — causal tracing + metrics.

Builds a small BOOM-FS deployment (one NameNode, two DataNodes, one
client), stamps two operations with trace ids, and prints:

* the reconstructed cross-node span tree of each request (mkdir touches
  the master; a write fans out into the data plane), and
* the cluster-wide metrics dashboard fed by the always-on registry.

Everything is deterministic: run it twice and the JSONL exports are
byte-identical.  See docs/OBSERVABILITY.md for the model.
"""

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.sim import Cluster, LatencyModel

cluster = Cluster(seed=42, latency=LatencyModel(base_ms=2, jitter_ms=3))
cluster.add(BoomFSMaster("master", replication=2))
for i in range(2):
    cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=500))
fs = cluster.add(BoomFSClient("client", masters=["master"]))
cluster.run_for(1200)  # heartbeats register the DataNodes

# -- trace a metadata op: client -> master -> client ------------------------

mkdir_ref = fs.start_trace("mkdir /data")
fs.mkdir("/data")

# -- trace a write: metadata + chunk placement into the data plane ----------

write_ref = fs.start_trace("write /data/blob")
fs.write("/data/blob", b"declarative clouds" * 100)

cluster.run_for(2000)  # let chunk reports and re-replication settle

print("=== span tree: mkdir /data ===")
print(cluster.tracer.render_tree(mkdir_ref.trace_id))
print()
print("=== span tree: write /data/blob ===")
print(cluster.tracer.render_tree(write_ref.trace_id))
print()
print(
    "write crossed nodes:",
    sorted(cluster.tracer.nodes_crossed(write_ref.trace_id)),
)
print()
print(cluster.dashboard())

cluster.export_traces_jsonl("traces.jsonl")
cluster.export_metrics_jsonl("metrics.jsonl")
print("\n[exported traces.jsonl and metrics.jsonl]")
