#!/usr/bin/env python3
"""Monitoring revision: instrument a running system by rewriting its rules.

Because an Overlog program is data, "add tracing to the NameNode" is a
pure function Program -> Program — no component code changes.  This
example instruments the real BOOM-FS master program, runs a workload,
and prints which rules fired how often; then it merges declarative
invariant checks into the same program and corrupts the metadata to show
a violation being caught.

Run:  python examples/monitoring_metaprogramming.py
"""

from repro.boomfs import master_program
from repro.monitoring import (
    InvariantMonitor,
    TraceCollector,
    add_rule_tracing,
    boomfs_invariants_program,
    with_invariants,
)
from repro.overlog import OverlogRuntime


def fresh_master_runtime(program):
    rt = OverlogRuntime(program, address="master")
    rt.install("file", [(0, -1, "", True)])
    rt.install("repfactor", [(2,)])
    rt.install("dn_timeout", [(3000,)])
    return rt


def run_workload(rt):
    ops = [
        (1, "mkdir", "/a", None),
        (2, "mkdir", "/a/b", None),
        (3, "create", "/a/b/f", None),
        (4, "ls", "/a", None),
        (5, "mv", "/a/b/f", "/a/g"),
        (6, "rm", "/a/b", None),
        (7, "exists", "/a/g", None),
    ]
    now = 0
    for rid, op, path, arg in ops:
        now += 10
        rt.insert("request", (rid, "client", op, path, arg))
        rt.tick(now=now)
        while rt.has_pending_work:
            rt.tick(now=now)


print("== Tracing by program rewrite ==")
base = master_program()
traced = add_rule_tracing(base)
print(f"  original program: {len(base.rules)} rules")
print(f"  traced program  : {len(traced.rules)} rules (one twin each)")

rt = fresh_master_runtime(traced)
collector = TraceCollector()
collector.attach(rt)
run_workload(rt)

print("\n  rule firings during the workload:")
for name, count in sorted(collector.rule_counts().items(), key=lambda kv: -kv[1]):
    print(f"    {name:6s} x{count}")
print(f"  namespace after workload: {sorted(p for p, _ in rt.rows('fqpath'))}")

print("\n== Declarative invariant checking ==")
checked = with_invariants(master_program(), boomfs_invariants_program())
rt2 = fresh_master_runtime(checked)
monitor = InvariantMonitor()
monitor.attach(rt2)
run_workload(rt2)
rt2.tick(now=1001)  # let the invariant timer fire
print(f"  after a clean workload: violations = {monitor.violations}")

print("  corrupting metadata: installing fqpath('/ghost', 999) with no file...")
rt2.install("fqpath", [("/ghost", 999)])
rt2.tick(now=2001)
print(f"  detected: {monitor.violations}")
assert ("orphan-fqpath", "/ghost") in monitor.violations
print("\nInvariant rules run inside the same fixpoint as the system itself —")
print("monitoring at the same semantic level as the monitored program.")
