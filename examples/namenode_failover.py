#!/usr/bin/env python3
"""Availability revision: kill the NameNode mid-workload, twice.

Scenario (paper section on the Paxos-replicated master):

* three NameNode replicas run Overlog Paxos + the unmodified BOOM-FS
  program in one runtime each;
* a client performs a steady stream of metadata operations;
* we crash the current leader in the middle — the client's RPC layer
  rides out the election and every surviving replica keeps a consistent
  namespace;
* the crashed replica restarts, replays the decided log, and converges.

Run:  python examples/namenode_failover.py
"""

from repro.boomfs import DataNode
from repro.paxos import ReplicatedFSClient, ReplicatedMaster
from repro.sim import Cluster, LatencyModel

GROUP = ["nn0", "nn1", "nn2"]

cluster = Cluster(latency=LatencyModel(1, 2))
masters = [cluster.add(ReplicatedMaster(a, GROUP, replication=2)) for a in GROUP]
for i in range(3):
    cluster.add(DataNode(f"dn{i}", masters=GROUP, heartbeat_ms=300))
fs = cluster.add(ReplicatedFSClient("client", GROUP))

print("Waiting for leader election...")
cluster.run_until(lambda: any(m.is_leader for m in masters), max_time_ms=10_000)
leader = next(m for m in masters if m.is_leader)
print(f"  leader: {leader.address} (t={cluster.now}ms)")

print("\nPhase 1: normal operation")
fs.mkdir("/logs")
for i in range(5):
    fs.write(f"/logs/day{i}", f"entries for day {i}".encode() * 20)
print("  wrote 5 files;  ls /logs =", fs.ls("/logs"))

print(f"\nPhase 2: killing leader {leader.address} at t={cluster.now}ms")
cluster.crash(leader.address)
t0 = cluster.now
fs.write("/logs/after-crash", b"written during failover")
print(f"  write completed {cluster.now - t0}ms after the crash "
      f"(election + client retry)")
new_leader = next(m for m in masters if not m.crashed and m.is_leader)
print(f"  new leader: {new_leader.address}")

print("\nPhase 3: killing the second leader too")
survivors = [m for m in masters if not m.crashed]
cluster.restart(leader.address)  # bring the first one back first (quorum!)
cluster.run_for(3000)
second_victim = next(m for m in masters if not m.crashed and m.is_leader)
print(f"  restarting {leader.address}, then killing {second_victim.address}")
cluster.crash(second_victim.address)
fs.write("/logs/after-second-crash", b"still alive")
print("  write completed;  ls /logs =", fs.ls("/logs"))

print("\nPhase 4: convergence check")
cluster.restart(second_victim.address)
cluster.run_for(8000)
namespaces = {m.address: m.paths() for m in masters}
reference = namespaces[GROUP[0]]
for addr, ns in namespaces.items():
    status = "==" if ns == reference else "!="
    print(f"  {addr}: {len(ns)} paths {status} reference")
assert all(ns == reference for ns in namespaces.values())
print("\nAll three replicas converged to the same namespace. "
      f"({len(reference)} paths, {cluster.now}ms simulated)")
