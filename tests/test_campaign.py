"""Fault-campaign observatory: episode folding, fault↔signal matching,
matrix pooling, and end-to-end campaign runs on both backends."""

import types

import pytest

from repro.campaign import (
    CampaignSpec,
    Timeline,
    alarm_episodes,
    campaign_report,
    run_campaign,
    run_matrix,
    violation_episodes,
)

# Small enough to run in well under a second on the simulator, but the
# workload still spans the single fault slot.
TINY = dict(
    total_ops=40,
    arrival_ms=50,
    classes=("crash",),
    slot_ms=9000,
    quiesce_ms=6000,
    datanodes=4,
    preload_files=3,
)


class TestAlarmEpisodes:
    def test_repeated_firings_fold_into_one_episode(self):
        log = [(1000, ("a", "s", 1)), (1500, ("a", "s", 2))]
        eps = alarm_episodes(log, clears=[(2500, ("a", "s"))])
        assert eps == [
            {
                "name": "a",
                "subject": "s",
                "start_ms": 1000,
                "clear_ms": 2500,
                "detail": "1",
            }
        ]

    def test_refiring_after_clear_opens_new_episode(self):
        log = [(1000, ("a", "s", 1)), (4000, ("a", "s", 2))]
        eps = alarm_episodes(log, clears=[(2000, ("a", "s"))])
        assert [(e["start_ms"], e["clear_ms"]) for e in eps] == [
            (1000, 2000),
            (4000, None),
        ]

    def test_unmatched_clear_keys_are_ignored(self):
        log = [(1000, ("a", "s", 1))]
        eps = alarm_episodes(log, clears=[(2000, ("other", "s"))])
        assert eps[0]["clear_ms"] is None


class TestViolationEpisodes:
    def test_contiguous_firings_are_one_episode_with_clear(self):
        log = [(1000, ("v", "s")), (1500, ("v", "s")), (2000, ("v", "s"))]
        eps = violation_episodes(log, end_ms=10_000, round_ms=500)
        assert eps == [
            {"name": "v", "subject": "s", "start_ms": 1000, "clear_ms": 2500}
        ]

    def test_wide_gap_splits_runs(self):
        log = [(1000, ("v", "s")), (5000, ("v", "s"))]
        eps = violation_episodes(log, end_ms=20_000, round_ms=500)
        assert [e["start_ms"] for e in eps] == [1000, 5000]

    def test_episode_live_at_end_is_censored(self):
        log = [(1000, ("v", "s")), (1500, ("v", "s"))]
        eps = violation_episodes(log, end_ms=2000, round_ms=500)
        assert eps[0]["clear_ms"] is None


class TestCampaignReport:
    def _timeline(self):
        t = Timeline()
        # correlated crash group -> one incident
        t.add(1000, "fault", "crash", "dn0")
        t.add(1500, "fault", "crash", "dn1")
        t.add(4000, "alarm", "under-replicated", "master")
        t.add(9000, "alarm-clear", "under-replicated", "master")
        # a second incident no signal ever matches (false negative)
        t.add(20_000, "fault", "partition", "dn2")
        # a signal owned by nothing (false positive)
        t.add(15_000, "alarm", "stalled-link", "dn3")
        return t

    def test_matching_and_latencies(self):
        report = campaign_report(
            self._timeline(), end_ms=30_000, match_window_ms=8000
        )
        crash, partition = report["incidents"]
        assert crash["class"] == "crash"
        assert crash["subjects"] == ["dn0", "dn1"]  # merged group
        assert crash["detection_ms"] == 3000
        assert crash["recovery_ms"] == 8000
        assert partition["detection_ms"] is None
        assert report["false_negatives"] == 1
        assert [fp["name"] for fp in report["false_positives"]] == [
            "stalled-link"
        ]
        assert report["classes"]["crash"]["detection"]["p50"] == 3000

    def test_recovery_ignores_later_incidents_reusing_the_alarm_key(self):
        # Two incidents trip the same alarm key; the second episode's
        # clear must not stretch the first incident's recovery window.
        t = Timeline()
        t.add(1000, "fault", "crash", "dn0")
        t.add(2000, "alarm", "under-replicated", "master")
        t.add(3000, "alarm-clear", "under-replicated", "master")
        t.add(20_000, "fault", "partition", "dn1")
        t.add(21_000, "alarm", "under-replicated", "master")
        t.add(25_000, "alarm-clear", "under-replicated", "master")
        report = campaign_report(t, end_ms=30_000)
        crash, partition = report["incidents"]
        assert crash["recovery_ms"] == 2000
        assert partition["recovery_ms"] == 5000

    def test_uncorrelated_same_class_faults_stay_separate(self):
        t = Timeline()
        t.add(1000, "fault", "crash", "dn0")
        t.add(9000, "fault", "crash", "dn1")  # > INCIDENT_JOIN_MS later
        report = campaign_report(t, end_ms=20_000)
        assert len(report["incidents"]) == 2


class TestRunMatrix:
    def _fake_result(self, name, seed, detections):
        timeline = Timeline()
        at = 1000
        for det in detections:
            timeline.add(at, "fault", "crash", "dn0")
            timeline.add(at + det, "alarm", "under-replicated", "master")
            at += 10_000
        report = campaign_report(timeline, end_ms=at)
        spec = CampaignSpec(name=name, seed=seed)
        return types.SimpleNamespace(spec=spec, report=report)

    def test_pools_detections_across_campaigns(self):
        matrix = run_matrix(
            [
                self._fake_result("a", 0, [2000, 4000]),
                self._fake_result("b", 1, [6000]),
            ]
        )
        pool = matrix["classes"]["crash"]
        assert pool["incidents"] == 3
        assert pool["detected"] == 3
        assert sorted(pool["detections"]) == [2000, 4000, 6000]
        assert pool["detection"]["p50"] == 4000
        assert [c["name"] for c in matrix["campaigns"]] == ["a", "b"]


class TestCampaignRunner:
    def test_sim_campaign_json_is_byte_deterministic(self):
        a = run_campaign(CampaignSpec(name="det", seed=5, **TINY))
        b = run_campaign(CampaignSpec(name="det", seed=5, **TINY))
        assert a.to_json() == b.to_json()

    def test_crash_campaign_detected_with_clean_workload(self):
        result = run_campaign(CampaignSpec(name="crash", seed=5, **TINY))
        crash = result.report["classes"]["crash"]
        assert crash["incidents"] == 1
        assert crash["detected"] == 1
        assert crash["detection"]["p50"] > 0
        assert result.report["false_positives"] == []
        # open-loop metadata workload rides through the fault slot
        assert result.latency["all"]["count"] == TINY["total_ops"]
        assert result.latency["all"]["errors"] == 0

    def test_amnesia_campaign_trips_chunk_agreement(self):
        spec = CampaignSpec(
            name="amnesia", seed=2, **{**TINY, "classes": ("amnesia",)}
        )
        result = run_campaign(spec)
        names = {
            e.name for e in result.timeline.select("violation")
        }
        assert "chunk-agreement" in names
        amnesia = result.report["classes"]["amnesia"]
        assert amnesia["detected"] == 1

    def test_no_fault_control_is_silent_on_sim(self):
        spec = CampaignSpec(
            name="control", seed=0, **{**TINY, "classes": ()}
        )
        result = run_campaign(spec)
        assert result.report["alarms_total"] == 0
        assert result.report["violations_total"] == 0
        assert result.latency["all"]["errors"] == 0

    def test_no_fault_control_is_silent_on_asyncio(self):
        spec = CampaignSpec(
            name="control-async",
            seed=0,
            backend="asyncio",
            time_scale=20.0,
            **{**TINY, "classes": (), "quiesce_ms": 3000},
        )
        result = run_campaign(spec)
        assert result.report["alarms_total"] == 0
        assert result.report["violations_total"] == 0
        assert result.latency["all"]["count"] == TINY["total_ops"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_campaign(CampaignSpec(backend="smoke-signals"))
