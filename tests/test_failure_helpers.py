"""Tests for failure-schedule helpers and network accounting."""

from repro.sim import (
    Cluster,
    FailureSchedule,
    LatencyModel,
    OverlogProcess,
    generate_campaign,
    random_crash_schedule,
)

PROGRAM = "program p; define(x, keys(0), {Int});"


def make_cluster(n=5):
    cluster = Cluster(latency=LatencyModel(1, 1))
    for i in range(n):
        cluster.add(OverlogProcess(f"n{i}", PROGRAM))
    return cluster


class TestRandomCrashSchedule:
    def test_deterministic_for_seed(self):
        addrs = [f"n{i}" for i in range(5)]
        a = random_crash_schedule(addrs, horizon_ms=1000, crash_count=3, seed=9)
        b = random_crash_schedule(addrs, horizon_ms=1000, crash_count=3, seed=9)
        assert a.crashes == b.crashes

    def test_distinct_victims(self):
        addrs = [f"n{i}" for i in range(5)]
        sched = random_crash_schedule(addrs, 1000, crash_count=4, seed=2)
        victims = [c.address for c in sched.crashes]
        assert len(set(victims)) == 4

    def test_crash_count_capped_at_population(self):
        sched = random_crash_schedule(["a", "b"], 1000, crash_count=10, seed=1)
        assert len(sched.crashes) == 2

    def test_applies_with_restarts(self):
        cluster = make_cluster()
        sched = random_crash_schedule(
            [f"n{i}" for i in range(5)],
            horizon_ms=500,
            crash_count=2,
            seed=3,
            restart_after_ms=300,
        )
        sched.apply(cluster)
        cluster.run_for(500)
        downs = [a for a in cluster.addresses() if not cluster.is_up(a)]
        assert len(downs) <= 2
        cluster.run_for(1000)
        assert all(cluster.is_up(a) for a in cluster.addresses())


class TestFailureScheduleChaining:
    def test_builder_chains(self):
        sched = (
            FailureSchedule()
            .crash(10, "n0")
            .crash(20, "n1", restart_after_ms=5)
            .partition(30, ("n0",), ("n1", "n2"), heal_after_ms=10)
        )
        assert len(sched.crashes) == 2
        assert len(sched.partitions) == 1

    def test_partition_and_heal_timing(self):
        cluster = make_cluster(3)
        FailureSchedule().partition(
            50, ("n0",), ("n1", "n2"), heal_after_ms=100
        ).apply(cluster)
        cluster.run_for(60)
        assert not cluster.network.can_reach("n0", "n1")
        assert cluster.network.can_reach("n1", "n2")
        cluster.run_for(100)
        assert cluster.network.can_reach("n0", "n1")


class TestNetworkAccounting:
    def test_stats_counted(self):
        cluster = make_cluster(2)
        node = cluster.get("n0")
        node.runtime  # overlog process
        cluster.network.send_row("n0", "n1", "x", (1,))
        cluster.network.send_row("n0", "nowhere", "x", (2,))
        cluster.run_for(10)
        stats = cluster.network.stats
        assert stats.sent == 2
        assert stats.delivered == 1
        assert stats.dropped_dead == 1
        assert stats.bytes_sent > 0
        # Envelope-level accounting rides along (satellite: bytes AND
        # envelopes, not just messages).
        assert stats.envelopes_sent == 2
        assert stats.envelopes_delivered == 1
        assert stats.deltas_dropped == 1

    def test_inflight_envelope_lost_across_partition(self):
        # Sent before the partition, still in flight when it lands:
        # dropped at delivery time.
        cluster = make_cluster(2)
        cluster.network.latency = LatencyModel(base_ms=20, jitter_ms=0)
        cluster.network.send_row("n0", "n1", "x", (1,))
        cluster.schedule_at(5, lambda: cluster.partition(["n0"], ["n1"]))
        cluster.run_for(50)
        stats = cluster.network.stats
        assert stats.dropped_partition == 1
        assert stats.delivered == 0

    def test_inflight_envelope_survives_heal(self):
        # In flight across a partition that heals before arrival: delivered.
        cluster = make_cluster(2)
        cluster.network.latency = LatencyModel(base_ms=20, jitter_ms=0)
        cluster.network.send_row("n0", "n1", "x", (1,))
        cluster.schedule_at(5, lambda: cluster.partition(["n0"], ["n1"]))
        cluster.schedule_at(10, cluster.heal)
        cluster.run_for(50)
        stats = cluster.network.stats
        assert stats.dropped_partition == 0
        assert stats.delivered == 1

    def test_partition_heal_schedule_preserves_inflight_semantics(self):
        # Same semantics driven through FailureSchedule (the envelope path).
        cluster = make_cluster(3)
        cluster.network.latency = LatencyModel(base_ms=30, jitter_ms=0)
        FailureSchedule().partition(
            5, ("n0",), ("n1", "n2"), heal_after_ms=10
        ).apply(cluster)
        cluster.network.send_row("n0", "n1", "x", (1,))  # heals before landing
        cluster.run_for(100)
        assert cluster.network.stats.delivered == 1
        assert cluster.network.stats.dropped_partition == 0


class TestGenerateCampaign:
    def _topology(self):
        return dict(
            masters=["m"],
            datanodes=[f"dn{i}" for i in range(5)],
            others=["client", "loadgen"],
        )

    def test_same_seed_same_schedule(self):
        a = generate_campaign(**self._topology(), seed=4)
        b = generate_campaign(**self._topology(), seed=4)
        assert (a.crashes, a.partitions, a.slowdowns) == (
            b.crashes,
            b.partitions,
            b.slowdowns,
        )

    def test_different_seed_changes_victims(self):
        a = generate_campaign(**self._topology(), seed=0)
        b = generate_campaign(**self._topology(), seed=1)
        assert (a.crashes, a.partitions, a.slowdowns) != (
            b.crashes,
            b.partitions,
            b.slowdowns,
        )

    def test_one_slot_per_class_and_end_ms(self):
        sched = generate_campaign(
            **self._topology(),
            seed=0,
            start_ms=1000,
            slot_ms=5000,
            classes=("crash", "partition"),
        )
        assert {ev.at_ms for ev in sched.crashes} == {1000}
        assert [ev.at_ms for ev in sched.partitions] == [6000]
        # last event: partition at 6000 healing after 4000
        assert sched.end_ms() == 10_000

    def test_partition_isolates_minority_from_everything(self):
        sched = generate_campaign(
            **self._topology(), seed=0, classes=("partition",)
        )
        (ev,) = sched.partitions
        minority, rest = ev.groups
        assert "m" in rest and "client" in rest and "loadgen" in rest
        assert set(minority).isdisjoint(rest)
        assert len(minority) == 2  # 5 datanodes -> minority of two

    def test_unknown_class_raises(self):
        import pytest

        with pytest.raises(ValueError, match="unknown fault class"):
            generate_campaign(**self._topology(), classes=("gamma-ray",))


class TestFailureScheduleEdgeCases:
    def test_observer_sees_faults_and_repairs_on_cluster_clock(self):
        cluster = make_cluster(3)
        events = []
        (
            FailureSchedule()
            .crash(10, "n0", restart_after_ms=30, label="restart-storm")
            .partition(20, ("n1",), ("n0", "n2"), heal_after_ms=40)
            .apply(cluster, observer=lambda k, ms, s: events.append((k, ms, s)))
        )
        cluster.run_for(100)
        assert events == [
            ("restart-storm", 10, "n0"),
            ("partition", 20, "n1"),
            ("restart", 40, "n0"),
            ("heal", 60, "n1"),
        ]

    def test_crash_of_already_dead_node_is_noop(self):
        cluster = make_cluster(2)
        (
            FailureSchedule()
            .crash(10, "n0")
            .crash(15, "n0", restart_after_ms=10)
            .apply(cluster)
        )
        cluster.run_for(50)
        assert cluster.is_up("n0")

    def test_second_partition_replaces_first_and_heal_is_global(self):
        cluster = make_cluster(3)
        (
            FailureSchedule()
            .partition(10, ("n0",), ("n1", "n2"))
            .partition(20, ("n1",), ("n0", "n2"), heal_after_ms=10)
            .apply(cluster)
        )
        cluster.run_for(25)
        # second partition replaced the first: n0 rejoined the majority
        assert cluster.network.can_reach("n0", "n2")
        assert not cluster.network.can_reach("n1", "n2")
        cluster.run_for(25)  # heal() restores everyone
        assert cluster.network.can_reach("n1", "n2")

    def test_slowdown_bumps_and_restores_step_cost(self):
        cluster = make_cluster(2)
        node = cluster.get("n0")
        assert node.step_cost_ms == 0
        FailureSchedule().slowdown(
            10, "n0", step_cost_ms=25, duration_ms=40
        ).apply(cluster)
        cluster.run_for(20)
        assert node.step_cost_ms == 25
        cluster.run_for(60)
        assert node.step_cost_ms == 0

    def test_amnesia_wipes_chunks_before_restart(self):
        from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode

        cluster = Cluster(seed=1)
        cluster.add(BoomFSMaster("master", replication=2))
        for i in range(3):
            cluster.add(DataNode(f"dn{i}", masters=["master"]))
        client = cluster.add(BoomFSClient("client", masters=["master"]))
        cluster.run_for(600)
        client.write("/a", b"chunk-payload " * 20)
        cluster.run_for(1500)
        victim = next(
            f"dn{i}" for i in range(3) if cluster.get(f"dn{i}").chunks
        )
        FailureSchedule().amnesia(
            cluster.now + 50, victim, restart_after_ms=200
        ).apply(cluster)
        cluster.run_for(1000)
        assert cluster.is_up(victim)
        assert cluster.get(victim).chunks == {}
