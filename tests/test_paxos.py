"""Tests for Overlog Paxos and the Paxos-replicated NameNode."""


from repro.boomfs import DataNode
from repro.paxos import PaxosReplica, ReplicatedFSClient, ReplicatedMaster
from repro.sim import Cluster, LatencyModel


def make_group(n=3, seed=0, loss_rate=0.0):
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 2), loss_rate=loss_rate)
    group = [f"p{i}" for i in range(n)]
    replicas = [cluster.add(PaxosReplica(a, group)) for a in group]
    return cluster, group, replicas


def wait_for_leader(cluster, replicas, max_ms=10_000):
    ok = cluster.run_until(
        lambda: any(r.is_leader for r in replicas if not r.crashed),
        max_time_ms=cluster.now + max_ms,
    )
    assert ok, "no leader elected"
    return next(r for r in replicas if not r.crashed and r.is_leader)


def logs_converged(replicas):
    live = [r for r in replicas if not r.crashed]
    logs = [r.decided_log() for r in live]
    return all(log == logs[0] for log in logs)


class TestElection:
    def test_single_leader_emerges(self):
        cluster, _, replicas = make_group()
        wait_for_leader(cluster, replicas)
        cluster.run_for(2000)
        leaders = [r for r in replicas if r.is_leader]
        assert len(leaders) == 1

    def test_leadership_is_stable(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        cluster.run_for(5000)
        assert leader.is_leader

    def test_five_replica_group(self):
        cluster, _, replicas = make_group(n=5)
        wait_for_leader(cluster, replicas)
        cluster.run_for(3000)
        assert sum(1 for r in replicas if r.is_leader) == 1

    def test_single_replica_group(self):
        cluster, _, replicas = make_group(n=1)
        leader = wait_for_leader(cluster, replicas)
        leader.submit(("solo",))
        cluster.run_for(2000)
        assert leader.decided_log() == {1: ("solo",)}


class TestReplication:
    def test_ops_decided_in_order_everywhere(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        for i in range(10):
            leader.submit(("op", i))
        cluster.run_for(3000)
        assert logs_converged(replicas)
        log = replicas[0].decided_log()
        assert len(log) == 10
        assert sorted(log) == list(range(1, 11))
        assert all(r.applied_through() == 10 for r in replicas)

    def test_follower_forwards_to_leader(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        follower = next(r for r in replicas if not r.is_leader)
        follower.submit(("via-follower",))
        cluster.run_for(2000)
        assert replicas[0].decided_log() == {1: ("via-follower",)}

    def test_agreement_under_message_loss(self):
        cluster, _, replicas = make_group(loss_rate=0.05, seed=5)
        leader = wait_for_leader(cluster, replicas)
        for i in range(8):
            leader.submit(("op", i))
        cluster.run_for(8000)
        assert logs_converged(replicas)
        assert len(replicas[0].decided_log()) == 8


class TestFailover:
    def test_new_leader_after_crash(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        cluster.crash(leader.address)
        new_leader = wait_for_leader(cluster, replicas)
        assert new_leader.address != leader.address

    def test_log_survives_leader_crash(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        for i in range(5):
            leader.submit(("pre", i))
        cluster.run_for(2000)
        cluster.crash(leader.address)
        new_leader = wait_for_leader(cluster, replicas)
        new_leader.submit(("post", 0))
        cluster.run_for(3000)
        live = [r for r in replicas if not r.crashed]
        assert logs_converged(replicas)
        log = live[0].decided_log()
        assert len(log) == 6
        assert ("post", 0) in log.values()

    def test_restarted_replica_catches_up(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        victim = next(r for r in replicas if not r.is_leader)
        cluster.crash(victim.address)
        for i in range(4):
            leader.submit(("op", i))
        cluster.run_for(2000)
        cluster.restart(victim.address)
        cluster.run_for(6000)
        assert victim.decided_log() == leader.decided_log()
        assert victim.applied_through() == 4

    def test_no_progress_without_quorum(self):
        cluster, _, replicas = make_group(n=3)
        leader = wait_for_leader(cluster, replicas)
        others = [r for r in replicas if r is not leader]
        cluster.crash(others[0].address)
        cluster.crash(others[1].address)
        leader.submit(("doomed",))
        cluster.run_for(4000)
        assert leader.decided_log() == {}

    def test_progress_resumes_when_quorum_returns(self):
        cluster, _, replicas = make_group(n=3)
        leader = wait_for_leader(cluster, replicas)
        others = [r for r in replicas if r is not leader]
        cluster.crash(others[0].address)
        cluster.crash(others[1].address)
        leader.submit(("delayed",))
        cluster.run_for(3000)
        cluster.restart(others[0].address)
        cluster.run_for(8000)
        live = [r for r in replicas if not r.crashed]
        assert any(
            ("delayed",) in r.decided_log().values() for r in live
        ), [r.decided_log() for r in live]


class TestSafetyInvariants:
    def test_no_conflicting_decisions_with_duelling_candidates(self):
        # Crash the leader repeatedly to force several elections, then
        # verify instance-level agreement across every replica.
        cluster, _, replicas = make_group(n=5, seed=3)
        leader = wait_for_leader(cluster, replicas)
        for i in range(3):
            leader.submit(("a", i))
        cluster.run_for(1500)
        cluster.crash(leader.address)
        second = wait_for_leader(cluster, replicas)
        for i in range(3):
            second.submit(("b", i))
        cluster.run_for(1500)
        cluster.restart(leader.address)
        cluster.run_for(8000)
        logs = [r.decided_log() for r in replicas if not r.crashed]
        for log in logs:
            for inst, val in log.items():
                for other in logs:
                    if inst in other:
                        assert other[inst] == val, "agreement violated"

    def test_decided_values_were_proposed(self):
        cluster, _, replicas = make_group()
        leader = wait_for_leader(cluster, replicas)
        submitted = [("op", i) for i in range(6)]
        for v in submitted:
            leader.submit(v)
        cluster.run_for(3000)
        decided = set(replicas[0].decided_log().values())
        assert decided <= set(submitted)  # validity


def make_fs_group(n=3, datanodes=3, seed=0):
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 2))
    group = [f"m{i}" for i in range(n)]
    masters = [
        cluster.add(ReplicatedMaster(a, group, replication=2)) for a in group
    ]
    for i in range(datanodes):
        cluster.add(DataNode(f"dn{i}", masters=group, heartbeat_ms=300))
    fs = cluster.add(ReplicatedFSClient("client", group))
    cluster.run_until(
        lambda: any(m.is_leader for m in masters), max_time_ms=10_000
    )
    cluster.run_for(500)
    return cluster, masters, fs


class TestReplicatedNameNode:
    def test_metadata_replicated_to_all(self):
        cluster, masters, fs = make_fs_group()
        fs.mkdir("/d")
        fs.create("/d/f")
        cluster.run_for(2000)
        expected = {"/": 0, "/d": 1, "/d/f": 2}
        for m in masters:
            assert m.paths() == expected

    def test_data_roundtrip(self):
        cluster, masters, fs = make_fs_group()
        fs.mkdir("/d")
        fs.write("/d/f", b"consensus bytes" * 20)
        assert fs.read("/d/f") == b"consensus bytes" * 20

    def test_chunk_ids_identical_across_replicas(self):
        cluster, masters, fs = make_fs_group()
        fs.mkdir("/d")
        fs.write("/d/f", b"z" * 10)
        cluster.run_for(1000)
        fid = masters[0].paths()["/d/f"]
        chunk_lists = [m.chunks_of(fid) for m in masters]
        assert chunk_lists[0] == chunk_lists[1] == chunk_lists[2]
        assert len(chunk_lists[0]) == 1

    def test_failover_preserves_namespace_and_data(self):
        cluster, masters, fs = make_fs_group()
        fs.mkdir("/d")
        fs.write("/d/f", b"must survive")
        leader = next(m for m in masters if m.is_leader)
        cluster.crash(leader.address)
        # Client rides out the election via retry/rotation.
        fs.write("/d/g", b"post failover")
        assert fs.read("/d/f") == b"must survive"
        assert fs.read("/d/g") == b"post failover"
        survivors = [m for m in masters if not m.crashed]
        assert survivors[0].paths() == survivors[1].paths()
        assert "/d/g" in survivors[0].paths()

    def test_restarted_master_rebuilds_fs_state_by_replay(self):
        cluster, masters, fs = make_fs_group()
        fs.mkdir("/d")
        fs.write("/d/f", b"replay me")
        cluster.run_for(1000)
        victim = next(m for m in masters if not m.is_leader)
        before = victim.paths()
        cluster.crash(victim.address)
        fs.create("/d/h")
        cluster.restart(victim.address)
        cluster.run_for(8000)
        assert victim.paths() == {**before, "/d/h": victim.paths()["/d/h"]}
        fid = masters[0].paths()["/d/f"]
        assert victim.chunks_of(fid) == masters[0].chunks_of(fid)
