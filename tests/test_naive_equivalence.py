"""Semi-naive evaluation must agree with textbook naive evaluation on
deterministic programs — the core soundness property of the optimizer,
checked exhaustively with hypothesis-generated databases."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.overlog import OverlogRuntime

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3)

RECURSIVE = """
program p;
define(edge, keys(0, 1), {Str, Str});
define(reach, keys(0, 1), {Str, Str});
define(cnt, keys(0), {Str, Int});
define(isolated, keys(0), {Str});
reach(X, Y) :- edge(X, Y);
reach(X, Z) :- edge(X, Y), reach(Y, Z);
cnt(X, count<Y>) :- reach(X, Y);
isolated(X) :- edge(_, X), notin edge(X, _);
"""

STATEFUL = """
program q;
define(kv, keys(0), {Str, Int});
define(doubled, keys(0), {Str, Int});
event(bump, 2);
kv(K, V)@next :- bump(K, V), notin kv(K, _);
doubled(K, V * 2) :- kv(K, V);
del delete kv(K, V) :- bump(K, -1), kv(K, V), V > 100;
"""


def run_both(src, inserts, ticks=1):
    states = []
    for naive in (False, True):
        rt = OverlogRuntime(src, naive=naive)
        for rel, rows in inserts:
            rt.insert_many(rel, rows)
        rt.tick()
        for _ in range(ticks - 1):
            rt.tick()
        while rt.has_pending_work:
            rt.tick()
        snapshot = {
            table: sorted(rt.rows(table)) for table in rt.catalog.tables
        }
        states.append(snapshot)
    return states


class TestNaiveEquivalence:
    @given(st.lists(st.tuples(names, names), max_size=20))
    def test_recursive_program(self, edges):
        a, b = run_both(RECURSIVE, [("edge", edges)])
        assert a == b

    @given(
        st.lists(
            st.tuples(names, st.integers(-5, 200)), max_size=15
        )
    )
    def test_stateful_program_with_deferred_rules(self, bumps):
        a, b = run_both(STATEFUL, [("bump", bumps)])
        assert a == b

    def test_multi_step(self):
        src = """
        program chain;
        define(counter, keys(0), {Int, Int});
        event(go, 1);
        counter(0, 0)@next :- go(_), notin counter(0, _);
        counter(0, V + 1)@next :- counter(0, V), V < 5;
        """
        a, b = run_both(src, [("go", [(1,)])], ticks=3)
        assert a == b
        assert a["counter"] == [(0, 5)]
