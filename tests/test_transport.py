"""Unit tests for the transport contract: envelopes, outbox batching,
wire codec, and envelope-level accounting shared by every backend."""

import pytest

from repro.transport import (
    Envelope,
    LatencyModel,
    Outbox,
    SimTransport,
    TransportStats,
    estimate_delta_size,
    estimate_row_size,
)
from repro.sim import Cluster, OverlogProcess, Simulator


class TestEnvelope:
    def test_make_computes_size(self):
        env = Envelope.make("a", "b", [("rel", (1, "xy"))])
        assert env.size_bytes == 16 + estimate_delta_size("rel", (1, "xy"))
        assert len(env) == 1

    def test_mids_must_parallel_deltas(self):
        with pytest.raises(ValueError):
            Envelope.make("a", "b", [("x", (1,))], mids=(1, 2))

    def test_items_pads_missing_mids(self):
        env = Envelope.make("a", "b", [("x", (1,)), ("y", (2,))])
        assert list(env.items()) == [("x", (1,), None), ("y", (2,), None)]

    def test_size_estimate_recurses_tuples(self):
        flat = estimate_row_size(("abc",))
        nested = estimate_row_size((("abc",),))
        assert nested == flat + 8

    def test_codec_roundtrip(self):
        env = Envelope.make(
            "n0",
            "n1",
            [("rel", (1, 2.5, "s", b"b", None, True, (3, "t")))],
            mids=(7,),
            seq=9,
        )
        back = Envelope.decode(env.encode())
        assert back == env
        assert back.size_bytes == env.size_bytes

    def test_codec_deterministic(self):
        env = Envelope.make("a", "b", [("x", (1,)), ("y", ("z",))], seq=3)
        assert env.encode() == Envelope.decode(env.encode()).encode()


class TestOutbox:
    def test_batches_one_envelope_per_destination(self):
        box = Outbox("src")
        box.add("b", "x", (1,))
        box.add("c", "x", (2,))
        box.add("b", "y", (3,))
        envs = box.flush()
        assert [(e.dst, e.deltas) for e in envs] == [
            ("b", (("x", (1,)), ("y", (3,)))),
            ("c", (("x", (2,)),)),
        ]
        assert len(box) == 0

    def test_unbatched_mode_one_envelope_per_delta(self):
        box = Outbox("src")
        box.add("b", "x", (1,))
        box.add("b", "y", (2,))
        envs = box.flush(batch=False)
        assert [len(e) for e in envs] == [1, 1]

    def test_seq_numbers_are_per_destination(self):
        box = Outbox("src")
        box.add("b", "x", (1,))
        box.flush()
        box.add("b", "x", (2,))
        box.add("c", "x", (3,))
        envs = box.flush()
        assert {(e.dst, e.seq) for e in envs} == {("b", 2), ("c", 1)}

    def test_clear_discards_unsent(self):
        box = Outbox("src")
        box.add("b", "x", (1,))
        box.clear()
        assert box.flush() == []

    def test_mids_ride_the_envelope(self):
        box = Outbox("src")
        box.add("b", "x", (1,), mid=11)
        box.add("b", "y", (2,), mid=None)
        (env,) = box.flush()
        assert env.mids == (11, None)


class TestSimTransportUnit:
    def make(self, **kw):
        sim = Simulator()
        net = SimTransport(sim, **kw)
        inbox = []
        net.register("b", lambda env: inbox.append(env))
        return sim, net, inbox

    def test_batched_envelope_single_trip(self):
        sim, net, inbox = self.make(latency=LatencyModel(2, 0))
        net.send(Envelope.make("a", "b", [("x", (i,)) for i in range(5)]))
        sim.run_until(10)
        assert len(inbox) == 1 and len(inbox[0]) == 5
        assert net.stats.envelopes_delivered == 1
        assert net.stats.delivered == 5

    def test_stats_is_transport_stats(self):
        _, net, _ = self.make()
        assert isinstance(net.stats, TransportStats)

    def test_record_sends_logs_deltas(self):
        sim, net, _ = self.make(latency=LatencyModel(1, 0))
        net.record_sends = True
        net.send(Envelope.make("a", "b", [("x", (1,)), ("y", (2,))]))
        assert net.sent_log == [("a", "b", "x", (1,)), ("a", "b", "y", (2,))]


COUNT_PROGRAM = """
program counts;
event(evt, 2);
define(seen, keys(0), {Int});
seen(N) :- evt(_, N);
"""

FANOUT_PROGRAM = """
program fanout;
event(go, 0);
event(evt, 2);
define(numbers, keys(0), {Int});
define(sink, keys(0), {Str});
evt(@S, N) :- go(), sink(S), numbers(N);
"""


def _fanout_node(address):
    node = OverlogProcess(address, FANOUT_PROGRAM)
    original = node.bootstrap

    def bootstrap():
        original()
        node.runtime.insert("sink", ("sink",))
        for i in range(4):
            node.runtime.insert("numbers", (i,))

    node.bootstrap = bootstrap
    return node


class TestFixpointBatching:
    def _run(self, batching):
        cluster = Cluster(latency=LatencyModel(1, 0), batching=batching)
        src = cluster.add(_fanout_node("src"))
        sink = cluster.add(OverlogProcess("sink", COUNT_PROGRAM))
        src.inject("go", ())
        cluster.run_for(50)
        assert sorted(sink.runtime.rows("seen")) == [(i,) for i in range(4)]
        return cluster.transport.stats

    def test_fixpoint_sends_batch_into_one_envelope(self):
        stats = self._run(batching=True)
        assert stats.sent == 4
        assert stats.envelopes_sent == 1

    def test_batching_off_degrades_to_per_delta_envelopes(self):
        stats = self._run(batching=False)
        assert stats.sent == 4
        assert stats.envelopes_sent == 4

    def test_batching_metrics_in_cluster_snapshot(self):
        cluster = Cluster(latency=LatencyModel(1, 0))
        src = cluster.add(_fanout_node("src"))
        cluster.add(OverlogProcess("sink", COUNT_PROGRAM))
        src.inject("go", ())
        cluster.run_for(50)
        counters = cluster.metrics_snapshot()["nodes"]["transport"]["counters"]
        assert counters["transport.envelopes_sent"] == 1
        assert counters["transport.deltas_sent"] == 4
        assert counters["transport.bytes_sent"] > 0


class TestCrashDiscardsOutbox:
    def test_unflushed_sends_lost_on_crash(self):
        cluster = Cluster(latency=LatencyModel(1, 0))
        src = cluster.add(_fanout_node("src"))
        cluster.add(OverlogProcess("sink", COUNT_PROGRAM))
        # Buffer sends by hand (no sending() scope flush) then crash.
        src._outbox.add("sink", "evt", (9,))
        cluster.crash("src")
        cluster.run_for(20)
        assert cluster.transport.stats.sent == 0
