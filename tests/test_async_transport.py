"""Tests for the asyncio transport backend: the same programs that run
on the simulator run as real concurrent tasks, with bounded-queue
backpressure and graceful drain."""

import pytest

from repro.sim import OverlogProcess, Process
from repro.transport import AsyncCluster, Envelope, LocalAsyncTransport

ECHO_PROGRAM = """
program echo;
event(ping, 2);
event(pong, 2);
pong(@From, N) :- ping(From, N);
"""

COUNTER_PROGRAM = """
program counter;
event(pong, 2);
define(received, keys(0), {Int});
received(N) :- pong(_, N);
"""

# Compress virtual time: programs keep their simulator-scale timings.
SCALE = 20.0


@pytest.fixture
def cluster():
    c = AsyncCluster(time_scale=SCALE)
    yield c
    c.shutdown()


class TestAsyncEcho:
    def test_request_response_between_tasks(self, cluster):
        server = cluster.add(OverlogProcess("server", ECHO_PROGRAM))
        client = cluster.add(OverlogProcess("client", COUNTER_PROGRAM))
        server.inject("ping", ("client", 42))
        ok = cluster.run_until(
            lambda: client.runtime.rows("received") == [(42,)],
            max_time_ms=5000,
        )
        assert ok
        stats = cluster.transport.stats
        assert stats.envelopes_sent == stats.envelopes_delivered == 1
        assert stats.sent == stats.delivered == 1

    def test_request_response_over_tcp(self):
        with AsyncCluster(time_scale=SCALE, tcp=True) as cluster:
            server = cluster.add(OverlogProcess("server", ECHO_PROGRAM))
            client = cluster.add(OverlogProcess("client", COUNTER_PROGRAM))
            for i in range(5):
                server.inject("ping", ("client", i))
            ok = cluster.run_until(
                lambda: len(client.runtime.rows("received")) == 5,
                max_time_ms=5000,
            )
            assert ok
            assert sorted(client.runtime.rows("received")) == [
                (i,) for i in range(5)
            ]

    def test_timer_driven_program(self, cluster):
        node = cluster.add(
            OverlogProcess(
                "n1",
                """
                program beats;
                timer(t, 100);
                define(fired, keys(0), {Int, Int});
                fired(N, T) :- t(N, T);
                """,
            )
        )
        cluster.run_for(550)
        # Real time: allow scheduler slop around the 5-tick mark.
        assert 3 <= len(node.runtime.rows("fired")) <= 7

    def test_crash_and_restart(self, cluster):
        node = cluster.add(
            OverlogProcess(
                "n1",
                """
                program kv;
                define(store, keys(0), {Str, Int});
                event(put, 2);
                store(K, V) :- put(K, V);
                """,
            )
        )
        node.inject("put", ("a", 1))
        cluster.run_until(
            lambda: node.runtime.rows("store") == [("a", 1)], max_time_ms=2000
        )
        cluster.crash("n1")
        cluster.restart("n1")
        cluster.run_for(50)
        assert node.runtime.rows("store") == []

    def test_messages_to_crashed_node_dropped(self, cluster):
        server = cluster.add(OverlogProcess("server", ECHO_PROGRAM))
        cluster.add(OverlogProcess("client", COUNTER_PROGRAM))
        cluster.crash("client")
        server.inject("ping", ("client", 7))
        cluster.run_for(100)
        assert cluster.transport.stats.dropped_dead >= 1

    def test_partition_blocks_then_heal_restores(self, cluster):
        server = cluster.add(OverlogProcess("server", ECHO_PROGRAM))
        client = cluster.add(OverlogProcess("client", COUNTER_PROGRAM))
        cluster.partition(["server"], ["client"])
        server.inject("ping", ("client", 1))
        cluster.run_for(100)
        assert client.runtime.rows("received") == []
        assert cluster.transport.stats.dropped_partition >= 1
        cluster.heal()
        server.inject("ping", ("client", 2))
        ok = cluster.run_until(
            lambda: client.runtime.rows("received") == [(2,)],
            max_time_ms=5000,
        )
        assert ok


class _SlowSink(Process):
    def __init__(self, address):
        super().__init__(address)
        self.rows = []

    def handle_message(self, relation, row):
        self.rows.append(row)


class TestBackpressure:
    def test_bounded_queue_blocks_sender_never_drops(self):
        # Acceptance: a fast producer into a slow consumer with a tiny
        # bounded queue stalls (visible in the metrics registry) but
        # every delta still arrives exactly once.
        cluster = AsyncCluster(time_scale=SCALE, batching=False)
        sink = _SlowSink("sink")
        cluster.processes[sink.address] = sink
        sink.attach(cluster)
        cluster.transport.register(
            sink.address,
            lambda env: cluster._deliver_envelope(sink, env),
            queue_size=2,
            min_dispatch_interval_ms=20,  # ~1ms real per delivery
        )
        producer = cluster.add(_SlowSink("producer"))
        total = 60
        with producer.sending():
            for i in range(total):
                producer.send("sink", "x", (i,))
        ok = cluster.run_until(
            lambda: len(sink.rows) == total, max_time_ms=60_000
        )
        stats = cluster.transport.stats
        assert ok, f"only {len(sink.rows)}/{total} delivered"
        assert sink.rows == [(i,) for i in range(total)]  # FIFO, no loss
        assert stats.delivered == total
        assert stats.deltas_dropped == 0
        assert stats.backpressure_stalls > 0
        # The stall is observable through the cluster metrics registry.
        counters = cluster.metrics_snapshot()["nodes"]["transport"][
            "counters"
        ]
        assert counters["transport.backpressure_stalls"] > 0
        assert counters["transport.stalled_link.producer->sink"] > 0
        cluster.shutdown()


class TestDrain:
    def test_drain_flushes_in_flight_envelopes(self):
        cluster = AsyncCluster(time_scale=SCALE)
        sink = cluster.add(_SlowSink("sink"))
        producer = cluster.add(_SlowSink("producer"))
        with producer.sending():
            for i in range(200):
                producer.send("sink", "x", (i,))
        assert cluster.drain(timeout_ms=10_000)
        assert cluster.transport.in_flight == 0
        assert len(sink.rows) == 200
        cluster.shutdown()

    def test_shutdown_is_idempotent(self):
        cluster = AsyncCluster(time_scale=SCALE)
        cluster.add(_SlowSink("a"))
        cluster.shutdown()
        cluster.shutdown()


class TestAsyncTransportUnit:
    def test_batched_envelope_counts(self):
        cluster = AsyncCluster(time_scale=SCALE)
        sink = cluster.add(_SlowSink("sink"))
        transport: LocalAsyncTransport = cluster.transport
        transport.send(
            Envelope.make("ad-hoc", "sink", [("x", (i,)) for i in range(8)])
        )
        ok = cluster.run_until(lambda: len(sink.rows) == 8, max_time_ms=5000)
        assert ok
        assert transport.stats.envelopes_sent == 1
        assert transport.stats.sent == 8
        cluster.shutdown()

    def test_clock_advances_scaled(self):
        cluster = AsyncCluster(time_scale=100.0)
        t0 = cluster.now
        cluster.run_for(500)  # 5ms real
        assert cluster.now - t0 >= 400
        cluster.shutdown()
