"""Rule-level unit tests for the BOOM-MR scheduler programs.

These drive the JobTracker's Overlog directly — inserting heartbeats and
progress reports as raw tuples and asserting on the derived assignments —
so each policy rule is tested in isolation from the cluster machinery.
"""


from repro.mapreduce import REDUCE_BASE, scheduler_program
from repro.overlog import OverlogRuntime


def make_rt(policy="fifo", **conf):
    rt = OverlogRuntime(scheduler_program(policy), address="jt")
    rt.install("tt_timeout", [(0, 3000)])
    if policy == "hadoop":
        rt.install(
            "spec_conf",
            [(0, conf.get("min_runtime", 1000), conf.get("lag", 0.2))],
        )
    elif policy == "late":
        rt.install(
            "late_conf",
            [(0, conf.get("min_runtime", 1000), conf.get("ratio", 0.5))],
        )
    return rt


def submit(rt, job_id=1, maps=2, reduces=1, locality=None):
    rt.insert("job", (job_id, maps, reduces, 0))
    rt.insert("job_state", (job_id, "running"))
    for t in range(maps):
        rt.insert("task", (job_id, t, "map"))
        rt.insert("task_state", (job_id, t, "pending"))
    for r in range(reduces):
        rt.insert("task", (job_id, REDUCE_BASE + r, "reduce"))
        rt.insert("task_state", (job_id, REDUCE_BASE + r, "pending"))
    for t, addrs in (locality or {}).items():
        for addr in addrs:
            rt.insert("task_loc", (job_id, t, addr))


def step(rt, now=0):
    rt.tick(now=now)
    while rt.has_pending_work:
        rt.tick(now=now)


def heartbeat(rt, addr, free_m=1, free_r=1, now=0):
    rt.insert("tt_hb", (addr, free_m, free_r))
    result = rt.tick(now=now)
    launches = [row for _, rel, row in result.sends if rel == "launch"]
    while rt.has_pending_work:
        rt.tick(now=now)
    return launches


class TestFifoRules:
    def test_map_assigned_on_heartbeat(self):
        rt = make_rt()
        submit(rt)
        step(rt)
        launches = heartbeat(rt, "tt0")
        assert launches == [("tt0", 1, 0, 0, "map")]

    def test_lowest_task_first(self):
        rt = make_rt()
        submit(rt, maps=3)
        step(rt)
        (first,) = heartbeat(rt, "tt0")
        assert first[2] == 0
        (second,) = heartbeat(rt, "tt1")
        assert second[2] == 1

    def test_lower_job_id_wins(self):
        rt = make_rt()
        submit(rt, job_id=2)
        submit(rt, job_id=1)
        step(rt)
        (launch,) = heartbeat(rt, "tt0")
        assert launch[1] == 1

    def test_no_free_slots_no_assignment(self):
        rt = make_rt()
        submit(rt)
        step(rt)
        assert heartbeat(rt, "tt0", free_m=0, free_r=0) == []

    def test_reduce_gated_on_maps(self):
        rt = make_rt()
        submit(rt, maps=1, reduces=1)
        step(rt)
        launches = heartbeat(rt, "tt0", free_m=0, free_r=1)
        assert launches == []  # map not done yet
        heartbeat(rt, "tt1")  # assign the map
        rt.insert("task_done", ("tt1", 1, 0, 0))
        step(rt)
        launches = heartbeat(rt, "tt0", free_m=0, free_r=1)
        assert launches == [("tt0", 1, REDUCE_BASE, 0, "reduce")]

    def test_done_task_not_reassigned(self):
        rt = make_rt()
        submit(rt, maps=1, reduces=0)
        step(rt)
        heartbeat(rt, "tt0")
        rt.insert("task_done", ("tt0", 1, 0, 0))
        step(rt)
        assert heartbeat(rt, "tt1") == []

    def test_attempt_numbering_increments(self):
        rt = make_rt()
        submit(rt, maps=1, reduces=0)
        step(rt)
        (a0,) = heartbeat(rt, "tt0")
        assert a0[3] == 0
        # tracker dies: liveness sweep re-pends the task
        rt.insert("tt_liveness", (1, 10_000))
        step(rt, now=10_000)
        step(rt, now=10_000)
        (a1,) = heartbeat(rt, "tt1", now=10_000)
        assert a1[3] == 1  # second attempt

    def test_job_complete_event(self):
        rt = make_rt()
        seen = []
        rt.watch("job_complete", seen.append)
        submit(rt, maps=1, reduces=1)
        step(rt)
        heartbeat(rt, "tt0")
        rt.insert("task_done", ("tt0", 1, 0, 0))
        step(rt)
        heartbeat(rt, "tt0")
        rt.insert("task_done", ("tt0", 1, REDUCE_BASE, 0))
        step(rt)
        assert [row[0] for row in seen] == [1]

    def test_winner_recorded_for_first_finisher(self):
        rt = make_rt()
        submit(rt, maps=1, reduces=1)
        step(rt)
        heartbeat(rt, "tt0")
        rt.insert("task_done", ("tt0", 1, 0, 0))
        step(rt)
        assert rt.rows("winner") == [(1, 0, "tt0")]

    def test_fetch_failed_repends_map_and_clears_winner(self):
        rt = make_rt()
        submit(rt, maps=1, reduces=1)
        step(rt)
        heartbeat(rt, "tt0")
        rt.insert("task_done", ("tt0", 1, 0, 0))
        step(rt)
        rt.insert("fetch_failed", ("ttX", 1, 0))
        step(rt)
        step(rt)
        assert (1, 0, "pending") in rt.rows("task_state")
        assert rt.rows("winner") == []


class TestLocalityRules:
    def test_local_task_preferred(self):
        rt = make_rt()
        submit(rt, maps=2, locality={1: ["tt0"]})
        step(rt)
        (launch,) = heartbeat(rt, "tt0")
        assert launch[2] == 1  # its local map, not map 0

    def test_fallback_to_remote_when_no_local(self):
        rt = make_rt()
        submit(rt, maps=1, locality={0: ["ttZ"]})
        step(rt)
        (launch,) = heartbeat(rt, "tt0")
        assert launch[2] == 0  # remote assignment still happens


def _running_map(rt, job, task, tracker, start, progress, report_at):
    """Install the state of a map mid-flight (tracker registered too, or
    the tracker-death rules would mark the attempt lost)."""
    rt.insert("tracker", (tracker, report_at))
    rt.insert("task", (job, task, "map"))
    rt.insert("task_state", (job, task, "running"))
    rt.insert("attempt", (job, task, 0, tracker, "running", start))
    rt.insert("progress", (job, task, 0, progress, report_at))


class TestHadoopSpeculationRules:
    def test_laggard_gets_backup(self):
        rt = make_rt("hadoop", min_runtime=1000, lag=0.2)
        rt.insert("job", (1, 2, 0, 0))
        rt.insert("job_state", (1, "running"))
        _running_map(rt, 1, 0, "slow", start=0, progress=0.1, report_at=5000)
        _running_map(rt, 1, 1, "fast", start=0, progress=0.9, report_at=5000)
        step(rt, now=5000)
        launches = heartbeat(rt, "idle", now=5000)
        assert launches == [("idle", 1, 0, 1, "map")]

    def test_no_backup_before_min_runtime(self):
        rt = make_rt("hadoop", min_runtime=60_000)
        rt.insert("job", (1, 2, 0, 0))
        rt.insert("job_state", (1, "running"))
        _running_map(rt, 1, 0, "slow", start=0, progress=0.1, report_at=5000)
        _running_map(rt, 1, 1, "fast", start=0, progress=0.9, report_at=5000)
        step(rt, now=5000)
        assert heartbeat(rt, "idle", now=5000) == []

    def test_no_backup_on_original_tracker(self):
        rt = make_rt("hadoop", min_runtime=1000)
        rt.insert("job", (1, 2, 0, 0))
        rt.insert("job_state", (1, "running"))
        _running_map(rt, 1, 0, "slow", start=0, progress=0.1, report_at=5000)
        _running_map(rt, 1, 1, "fast", start=0, progress=0.9, report_at=5000)
        step(rt, now=5000)
        assert heartbeat(rt, "slow", now=5000) == []

    def test_pending_work_beats_speculation(self):
        rt = make_rt("hadoop", min_runtime=1000)
        rt.insert("job", (1, 3, 0, 0))
        rt.insert("job_state", (1, "running"))
        _running_map(rt, 1, 0, "slow", start=0, progress=0.1, report_at=5000)
        _running_map(rt, 1, 1, "fast", start=0, progress=0.9, report_at=5000)
        rt.insert("task", (1, 2, "map"))
        rt.insert("task_state", (1, 2, "pending"))
        step(rt, now=5000)
        (launch,) = heartbeat(rt, "idle", now=5000)
        assert launch[2] == 2  # the pending map, no backup


class TestLateRules:
    def _two_tasks(self, rt):
        rt.insert("job", (1, 2, 0, 0))
        rt.insert("job_state", (1, "running"))
        # task 0: 10% after 5s (time_left ~ 45s); task 1: 50% (~5s left)
        _running_map(rt, 1, 0, "slow", start=0, progress=0.1, report_at=5000)
        _running_map(rt, 1, 1, "meh", start=0, progress=0.5, report_at=5000)
        step(rt, now=5000)

    def test_longest_time_left_chosen(self):
        rt = make_rt("late", min_runtime=1000)
        self._two_tasks(rt)
        (launch,) = heartbeat(rt, "idle", now=5000)
        assert launch[2] == 0

    def test_slow_node_refused_backup(self):
        rt = make_rt("late", min_runtime=1000, ratio=0.9)
        self._two_tasks(rt)
        # 'crawler' reports a running attempt with a terrible rate, making
        # it a slow node: LATE must not place a backup there.
        rt.insert("tracker", ("crawler", 5000))
        rt.insert("task", (1, 5, "map"))
        rt.insert("task_state", (1, 5, "running"))
        rt.insert("attempt", (1, 5, 0, "crawler", "running", 0))
        rt.insert("progress", (1, 5, 0, 0.01, 5000))
        step(rt, now=5000)
        assert heartbeat(rt, "crawler", free_m=1, now=5000) == []

    def test_at_most_one_backup(self):
        rt = make_rt("late", min_runtime=1000)
        self._two_tasks(rt)
        (launch,) = heartbeat(rt, "idle", now=5000)
        rt.insert("attempt", (1, 0, 1, "idle", "running", 5000))
        step(rt, now=5000)
        # attempt_cnt is now 2: no further backups for task 0; task 1 is
        # the only candidate left.
        launches = heartbeat(rt, "idle2", now=5000)
        assert all(l[2] != 0 for l in launches)
