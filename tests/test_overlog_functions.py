"""Unit tests for the builtin function library."""

import pytest

from repro.overlog import EvaluationError, FunctionLibrary, UnknownFunctionError
from repro.overlog.functions import stable_hash


@pytest.fixture()
def lib():
    return FunctionLibrary()


class TestPathFunctions:
    def test_concat_path(self, lib):
        assert lib.call("f_concat_path", ("/", "a")) == "/a"
        assert lib.call("f_concat_path", ("/a", "b")) == "/a/b"
        assert lib.call("f_concat_path", ("/a/", "b")) == "/a/b"

    def test_dirname(self, lib):
        assert lib.call("f_dirname", ("/a/b",)) == "/a"
        assert lib.call("f_dirname", ("/a",)) == "/"
        assert lib.call("f_dirname", ("/",)) == "/"

    def test_basename(self, lib):
        assert lib.call("f_basename", ("/a/b",)) == "b"
        assert lib.call("f_basename", ("/",)) == ""

    def test_dirname_basename_invert_concat(self, lib):
        for base, name in [("/", "x"), ("/a", "y"), ("/a/b/c", "z")]:
            path = lib.call("f_concat_path", (base, name))
            assert lib.call("f_dirname", (path,)) == base
            assert lib.call("f_basename", (path,)) == name


class TestStringFunctions:
    def test_startswith_endswith(self, lib):
        assert lib.call("f_startswith", ("/a/b", "/a")) is True
        assert lib.call("f_endswith", ("file.txt", ".txt")) is True

    def test_match(self, lib):
        assert lib.call("f_match", ("pa.os", "has paxos inside")) is True
        assert lib.call("f_match", ("^x", "no")) is False

    def test_concat_coerces(self, lib):
        assert lib.call("f_concat", ("id", 5)) == "id5"

    def test_substr(self, lib):
        assert lib.call("f_substr", ("hello", 1, 3)) == "el"


class TestCollectionFunctions:
    def test_list_append_member(self, lib):
        xs = lib.call("f_list", (1, 2))
        xs = lib.call("f_append", (xs, 3))
        assert xs == (1, 2, 3)
        assert lib.call("f_member", (xs, 2)) is True
        assert lib.call("f_member", (xs, 9)) is False

    def test_nth_and_size(self, lib):
        xs = (10, 20, 30)
        assert lib.call("f_nth", (xs, 1)) == 20
        assert lib.call("f_size", (xs,)) == 3

    def test_take_project_flatten(self, lib):
        pairs = ((1, "a"), (2, "b"), (3, "c"))
        assert lib.call("f_take", (pairs, 2)) == ((1, "a"), (2, "b"))
        assert lib.call("f_project", (pairs, 1)) == ("a", "b", "c")
        assert lib.call("f_flatten", (((1, 2), (3,)),)) == (1, 2, 3)

    def test_append_to_non_list_fails(self, lib):
        with pytest.raises(EvaluationError):
            lib.call("f_append", (5, 1))

    def test_nth_out_of_range_fails(self, lib):
        with pytest.raises(EvaluationError):
            lib.call("f_nth", ((1,), 5))


class TestArithmetic:
    def test_min_max_abs_mod(self, lib):
        assert lib.call("f_min", (3, 7)) == 3
        assert lib.call("f_max", (3, 7)) == 7
        assert lib.call("f_abs", (-4,)) == 4
        assert lib.call("f_mod", (10, 3)) == 1

    def test_floor_ceil_pow(self, lib):
        assert lib.call("f_floor", (2.7,)) == 2
        assert lib.call("f_ceil", (2.1,)) == 3
        assert lib.call("f_pow", (2, 10)) == 1024

    def test_if(self, lib):
        assert lib.call("f_if", (True, "a", "b")) == "a"
        assert lib.call("f_if", (0, "a", "b")) == "b"


class TestHashing:
    def test_hash_stable_and_spread(self, lib):
        assert lib.call("f_hash", ("x",)) == stable_hash("x")
        values = {lib.call("f_hashmod", (f"k{i}", 100)) for i in range(200)}
        assert len(values) > 50  # spreads
        assert all(0 <= v < 100 for v in values)


class TestRegistry:
    def test_unknown_function(self, lib):
        with pytest.raises(UnknownFunctionError):
            lib.call("f_nope", ())

    def test_register_requires_prefix(self, lib):
        with pytest.raises(EvaluationError):
            lib.register("nope", lambda: 1)

    def test_register_and_call(self, lib):
        lib.register("f_twice", lambda x: x * 2)
        assert lib.call("f_twice", (21,)) == 42
        assert "f_twice" in lib

    def test_errors_are_wrapped(self, lib):
        with pytest.raises(EvaluationError, match="f_toint"):
            lib.call("f_toint", ("not a number",))
