"""Tests for the analysis toolkit (CDFs, LoC accounting, tables)."""

from pathlib import Path

import pytest

from repro.analysis import (
    cdf_series,
    count_olg,
    count_python_lines,
    empirical_cdf,
    percentile,
    render_table,
    repo_code_sizes,
    summarize,
)
from repro.analysis.cdf import render_ascii_cdf
from repro.sketches import TDigest

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


class TestCdf:
    def test_empirical_cdf(self):
        cdf = empirical_cdf([3, 1, 2, 4])
        assert cdf == [(1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)]

    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_percentiles(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_summary(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s["min"] == 1 and s["max"] == 5
        assert s["mean"] == 3

    def test_cdf_series_downsamples(self):
        series = cdf_series(list(range(1000)), points=10)
        assert len(series) <= 12
        assert series[-1][1] == 1.0

    def test_percentile_single_sample(self):
        # every percentile of one sample is that sample
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.5], p) == 7.5

    def test_percentile_negative_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1, 2, 3], -1)

    def test_percentile_duplicate_heavy_series(self):
        # nearest-rank on a 90%-duplicates series: the median and p90
        # land on the duplicated value, the tail percentiles escape it.
        # True nearest-rank (rank = ceil(p/100*n)): p91 of 100 samples is
        # the 91st order statistic, exactly the first value past the
        # duplicates.
        values = [5] * 90 + list(range(91, 101))
        assert percentile(values, 50) == 5
        assert percentile(values, 90) == 5
        assert percentile(values, 91) == 91
        assert percentile(values, 95) == 95
        assert percentile(values, 100) == 100

    def test_percentile_all_duplicates(self):
        assert percentile([3] * 50, 99) == 3
        assert summarize([3] * 50)["p95"] == 3

    def test_percentile_unsorted_input(self):
        values = [9, 1, 5, 3, 7]
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 5
        assert percentile(values, 100) == 9

    def test_summarize_empty(self):
        assert summarize([]) == {}

    def test_summarize_tail_keys(self):
        s = summarize(list(range(1, 1001)))
        assert s["p99"] == 990
        assert s["p999"] == 999

    def test_percentile_matches_tdigest_quantiles(self):
        # Cross-validation: the exact nearest-rank percentile and the
        # t-digest's interpolated quantile must agree closely on a
        # well-populated sample (same semantics, different machinery).
        values = [((i * 7919) % 1000) / 10 for i in range(2000)]
        digest = TDigest()
        for v in values:
            digest.add(v)
        spread = max(values) - min(values)
        for p in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            exact = percentile(values, p)
            approx = digest.quantile(p / 100)
            assert abs(exact - approx) <= 0.02 * spread, (
                f"p{p}: exact {exact} vs digest {approx}"
            )

    def test_percentile_matches_tdigest_on_extremes(self):
        values = [3.0, 7.0, 11.0, 42.0]
        digest = TDigest()
        for v in values:
            digest.add(v)
        assert percentile(values, 0) == digest.quantile(0.0) == 3.0
        assert percentile(values, 100) == digest.quantile(1.0) == 42.0


class TestAsciiCdf:
    def test_normal_series_renders(self):
        out = render_ascii_cdf({"a": [1, 2, 3, 4]}, width=10, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "  a"
        assert lines[-1].endswith("| 4")
        assert "#" * 10 in lines[-1]

    def test_all_zero_series(self):
        out = render_ascii_cdf({"z": [0, 0, 0]}, width=10)
        for line in out.splitlines()[1:]:
            assert "#" not in line  # empty bars, not a full-width wall
            assert line.endswith("| 0")

    def test_all_equal_series_anchors_at_zero(self):
        out = render_ascii_cdf({"c": [5, 5, 5]}, width=10)
        bars = [line for line in out.splitlines() if "|" in line]
        assert bars and all("##########" in line for line in bars)

    def test_negative_values_never_produce_negative_bars(self):
        out = render_ascii_cdf({"n": [-10, -5, 0, 5]}, width=12)
        for line in out.splitlines():
            assert line.count("#") <= 12
        # The most-negative crossing has an empty bar, the max a full one.
        bars = [line for line in out.splitlines() if "|" in line]
        assert "#" not in bars[0]
        assert "#" * 12 in bars[-1]

    def test_empty_inner_series_skipped(self):
        out = render_ascii_cdf({"e": [], "a": [1]}, width=4)
        assert "  a" in out and "  e" not in out

    def test_empty_input(self):
        assert render_ascii_cdf({}, title="t") == "t"
        assert render_ascii_cdf({"x": []}) == ""


class TestLoc:
    def test_count_python_lines_skips_comments_and_docstrings(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            '"""Module docstring\nspanning lines."""\n'
            "# a comment\n"
            "\n"
            "def f():\n"
            '    """doc"""\n'
            "    return 1  # trailing\n"
        )
        # Only `def f():` and `return 1` count: docstrings, comments and
        # blanks are excluded.
        assert count_python_lines(f) == 2

    def test_count_olg(self):
        olg = SRC_ROOT / "boomfs" / "programs" / "boomfs_master.olg"
        stats = count_olg(olg)
        assert stats.rules > 30
        assert stats.tables >= 7
        assert stats.events >= 10
        assert 0 < stats.lines < 400

    def test_repo_code_sizes_cover_all_packages(self):
        sizes = repo_code_sizes(SRC_ROOT)
        assert {"overlog", "boomfs", "paxos", "mapreduce", "hadoop"} <= set(sizes)
        assert sizes["boomfs"]["olg_rules"] > 0
        assert sizes["hadoop"]["olg_rules"] == 0
        assert sizes["hadoop"]["python_loc"] > 100


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(
            ["name", "value"], [["alpha", 1], ["b", 22.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5
