"""Tests for the provenance layer: the derivation ledger, the why /
why-not debugger (single-node and stitched across the simulated
cluster), and the sampled plan profiler."""


from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.metrics.export import hot_rules_json, render_hot_rules
from repro.overlog import OverlogRuntime
from repro.paxos import PaxosReplica
from repro.provenance.ledger import DerivationLedger
from repro.provenance.why import UNKNOWN, dag_nodes
from repro.sim import Cluster, LatencyModel

TC = """
program tc;
define(link, keys(0, 1), {Str, Str});
define(path, keys(0, 1), {Str, Str});
s1 path(X, Y) :- link(X, Y);
s2 path(X, Z) :- link(X, Y), path(Y, Z);
"""


def make(src, **kw):
    kw.setdefault("provenance", True)
    return OverlogRuntime(src, address="n0", **kw)


# ---------------------------------------------------------------------------
# Ledger mechanics
# ---------------------------------------------------------------------------


class TestLedger:
    def test_record_and_lookup(self):
        led = DerivationLedger(node="x")
        led.begin_step(3, 100, ())
        led.record("rule", "r1", 0, 1, "t", (1, 2), (("s", (1,)),))
        (entry,) = led.derivations_of("t", (1, 2))
        assert entry.rule == "r1"
        assert entry.stratum == 0 and entry.passno == 1
        assert entry.step == 3 and entry.now_ms == 100
        assert entry.body == (("s", (1,)),)
        assert entry.retracted is None
        assert led.derivations_of("t", (9, 9)) == []

    def test_ring_eviction_bounds_memory(self):
        led = DerivationLedger(node="x", capacity=10)
        for i in range(25):
            led.record("rule", "r", 0, 0, "t", (i,), ())
        assert len(led) == 10
        assert led.dropped == 15
        # Evicted entries are unlinked from the index...
        assert led.derivations_of("t", (0,)) == []
        # ...while surviving ones still resolve.
        (entry,) = led.derivations_of("t", (24,))
        assert entry.row == (24,)
        stats = led.stats()
        assert stats["recorded"] == 25 and stats["dropped"] == 15

    def test_retract_tombstones_not_deletes(self):
        led = DerivationLedger(node="x")
        led.begin_step(1, 0, ())
        led.record("rule", "r", 0, 0, "t", (1,), ())
        led.begin_step(4, 9, ())
        assert led.retract("t", (1,), "deleted") == 1
        (entry,) = led.derivations_of("t", (1,))
        assert entry.retracted == ("deleted", 4)
        assert led.derivations_of("t", (1,), live_only=True) == []
        # Tombstoning is idempotent per entry.
        assert led.retract("t", (1,), "again") == 0

    def test_sends_indexed_separately(self):
        led = DerivationLedger(node="x")
        led.record("send", "r", 0, 0, "msg", (1,), (), dest="other")
        assert led.derivations_of("msg", (1,)) == []
        (send,) = led.sends_of("msg", (1,))
        assert send.dest == "other"

    def test_find_row_skips_sends(self):
        led = DerivationLedger(node="x")
        led.record("send", "r", 0, 0, "e", ("remote", 1), (), dest="o")
        led.record("input", None, -1, 0, "e", ("local", 1), ())
        assert led.find_row("e", (1,), (1,), 2) == ("local", 1)

    def test_external_record_carries_ctx(self):
        led = DerivationLedger(node="x", capacity=1)
        led.record_external("input", "e", (1,), ctx=("ref",))
        # Even when the ring is full, the ctx patch lands on the new
        # record (regression: indexing [-1] is wrong after wraparound).
        led.record_external("input", "e", (2,), ctx=("ref2",))
        (entry,) = led.derivations_of("e", (2,))
        assert entry.ctx == ("ref2",)


# ---------------------------------------------------------------------------
# why(): derivation DAGs
# ---------------------------------------------------------------------------


class TestWhy:
    def test_chain_reaches_edb(self):
        rt = make(TC)
        rt.insert_many("link", [("a", "b"), ("b", "c"), ("c", "d")])
        rt.run_to_quiescence()
        dag = rt.why("path", ("a", "d"), fmt="json")
        assert dag["status"] == "derived"
        # Walk to the deepest EDB leaf: every leaf must be a link input.
        def leaves(d):
            ds = d.get("derivations")
            if not ds:
                yield d
                return
            for entry in ds:
                if not entry["body"]:
                    yield d
                for child in entry["body"]:
                    yield from leaves(child)

        leaf_rels = {leaf["relation"] for leaf in leaves(dag)}
        assert "link" in leaf_rels
        text = rt.why("path", ("a", "d"))
        assert "rule s2" in text and "external input" in text

    def test_why_unknown_tuple(self):
        rt = make(TC)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        dag = rt.why("path", ("z", "z"), fmt="json")
        assert dag["status"] == "unknown"

    def test_why_disabled_runtime(self):
        rt = OverlogRuntime(TC, provenance=False)
        assert "disabled" in rt.why("path", ("a", "b"))

    def test_install_is_edb_leaf(self):
        rt = make(TC)
        rt.install("link", [("a", "b")])
        rt.insert("link", ("b", "c"))
        rt.run_to_quiescence()
        text = rt.why("path", ("a", "c"))
        assert "EDB install" in text

    def test_next_rule_records_next_entry(self):
        rt = make(
            """
            program d;
            define(e, keys(0), {Int});
            define(acc, keys(0), {Int});
            n1 acc(X)@next :- e(X);
            """
        )
        rt.insert("e", (7,))
        rt.run_to_quiescence()
        (entry,) = rt.ledger.derivations_of("acc", (7,))
        assert entry.kind == "next"
        assert entry.body == (("e", (7,)),)
        assert "@next" in rt.why("acc", (7,))

    def test_event_witness_resolved_after_step(self):
        # The body witness of a @next rule names an event tuple; by the
        # time why() resolves it lazily the event is gone from the pool,
        # so resolution must fall back to the ledger's own records.
        rt = make(
            """
            program d;
            define(e, keys(0, 1), {Int, Int});
            define(acc, keys(0), {Int});
            n1 acc(X)@next :- e(_, X);
            """
        )
        rt.insert("e", (5, 7))
        rt.run_to_quiescence()
        (entry,) = rt.ledger.derivations_of("acc", (7,))
        # Column 0 is a wildcard: the probe must recover the real value
        # from the ledger, not leave a None placeholder.
        assert entry.body == (("e", (5, 7)),)

    def test_negation_rule_provenance(self):
        rt = make(
            """
            program d;
            define(cand, keys(0), {Int});
            define(blocked, keys(0), {Int});
            define(ok, keys(0), {Int});
            g1 ok(X) :- cand(X), notin blocked(X);
            """
        )
        rt.install("blocked", [(2,)])
        rt.insert_many("cand", [(1,), (2,)])
        rt.run_to_quiescence()
        assert sorted(rt.rows("ok")) == [(1,)]
        (entry,) = rt.ledger.derivations_of("ok", (1,))
        # The witness records the positive atoms the join matched (the
        # negated atom matched nothing, by definition).
        assert entry.body == (("cand", (1,)),)

    def test_aggregate_witnesses(self):
        rt = make(
            """
            program d;
            define(obs, keys(0, 1), {Str, Int});
            define(total, keys(0), {Str, Int});
            a1 total(K, sum<V>) :- obs(K, V);
            """
        )
        rt.insert_many("obs", [("k", 1), ("k", 2), ("k", 4)])
        rt.run_to_quiescence()
        (entry,) = rt.ledger.derivations_of("total", ("k", 7))
        assert sorted(entry.body) == [
            ("obs", ("k", 1)),
            ("obs", ("k", 2)),
            ("obs", ("k", 4)),
        ]

    def test_aggregate_witness_cap(self):
        rt = make(
            """
            program d;
            define(obs, keys(0, 1), {Str, Int});
            define(cnt, keys(0), {Str, Int});
            a1 cnt(K, count<V>) :- obs(K, V);
            """
        )
        n = rt.evaluator.MAX_AGG_WITNESSES + 40
        rt.insert_many("obs", [("k", i) for i in range(n)])
        rt.run_to_quiescence()
        (entry,) = rt.ledger.derivations_of("cnt", ("k", n))
        assert len(entry.body) == rt.evaluator.MAX_AGG_WITNESSES

    def test_deleted_tuple_tombstoned(self):
        rt = make(
            """
            program d;
            define(t, keys(0), {Int});
            define(kill, keys(0), {Int});
            d1 delete t(X) :- kill(X), t(X);
            """
        )
        rt.insert("t", (1,))
        rt.run_to_quiescence()
        rt.insert("kill", (1,))
        rt.run_to_quiescence()
        assert rt.rows("t") == []
        (entry,) = rt.ledger.derivations_of("t", (1,))
        assert entry.retracted is not None
        reason, _step = entry.retracted
        assert "delete" in reason
        assert "[RETRACTED" in rt.why("t", (1,))

    def test_pk_displacement_tombstoned(self):
        rt = make(
            """
            program d;
            define(kv, keys(0), {Int, Int});
            """
        )
        rt.insert("kv", (1, 10))
        rt.run_to_quiescence()
        rt.insert("kv", (1, 20))
        rt.run_to_quiescence()
        assert rt.rows("kv") == [(1, 20)]
        (old,) = rt.ledger.derivations_of("kv", (1, 10))
        assert old.retracted is not None
        assert "displaced" in old.retracted[0]
        (new,) = rt.ledger.derivations_of("kv", (1, 20))
        assert new.retracted is None


# ---------------------------------------------------------------------------
# why_not(): rule replay
# ---------------------------------------------------------------------------


class TestWhyNot:
    def test_names_failing_atom(self):
        rt = make(TC)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        report = rt.why_not("path", ("b", "a"), fmt="json")
        assert report["present"] is False
        by_rule = {c["rule"]: c for c in report["candidates"]}
        fail = by_rule["s1"]
        assert fail["status"] == "fails"
        assert fail["failed_at"]["element"] == "link(X, Y)"
        text = rt.why_not("path", ("b", "a"))
        assert "fails at link(X, Y)" in text

    def test_present_tuple_reported(self):
        rt = make(TC)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        report = rt.why_not("path", ("a", "b"), fmt="json")
        assert report["present"] is True

    def test_unknown_column(self):
        rt = make(TC)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        report = rt.why_not("path", ("a", UNKNOWN), fmt="json")
        by_rule = {c["rule"]: c for c in report["candidates"]}
        assert by_rule["s1"]["status"] == "derivable"

    def test_works_without_ledger(self):
        rt = OverlogRuntime(TC, provenance=False)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        report = rt.why_not("path", ("b", "z"), fmt="json")
        assert report["candidates"]


# ---------------------------------------------------------------------------
# Cross-node stitching
# ---------------------------------------------------------------------------


def make_fs_cluster():
    cluster = Cluster(seed=0, latency=LatencyModel(1, 1))
    master = cluster.add(
        BoomFSMaster("master", replication=2, provenance=True)
    )
    for i in range(2):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
    fs = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(700)
    return cluster, master, fs


class TestClusterProvenance:
    def test_boomfs_fqpath_reaches_edb_across_nodes(self):
        cluster, master, fs = make_fs_cluster()
        fs.start_trace("mkdir /a")
        fs.mkdir("/a")
        fs.start_trace("mkdir /a/b")
        fs.mkdir("/a/b")
        dag = master.why_path("/a/b", fmt="json")
        text = master.why_path("/a/b")
        # The DAG bottoms out at the bootstrap EDB file fact...
        assert "EDB install" in text
        assert "file(0, -1, '', True)" in text
        # ...and crosses from the master to the client that issued the
        # mkdirs (trace-based stitching: the client keeps no ledger).
        assert dag_nodes(dag) >= {"master", "client"}

    def test_why_not_missing_path(self):
        _cluster, master, fs = make_fs_cluster()
        fs.mkdir("/a")
        report = master.why_not_path("/a/nope", fmt="json")
        by_rule = {c["rule"]: c for c in report["candidates"]}
        assert by_rule["f2"]["status"] == "fails"

    def test_paxos_decision_stitches_ledger_to_ledger(self):
        cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
        group = [f"p{i}" for i in range(3)]
        replicas = [
            cluster.add(PaxosReplica(a, group, provenance=True))
            for a in group
        ]
        assert cluster.run_until(
            lambda: any(r.is_leader for r in replicas), max_time_ms=10_000
        )
        leader = next(r for r in replicas if r.is_leader)
        follower = next(r for r in replicas if not r.is_leader)
        follower.submit("op-1")
        assert cluster.run_until(
            lambda: 1 in leader.decided_log(),
            max_time_ms=cluster.now + 5_000,
        )
        text = leader.why_decided(1)
        # The quorum of accepted votes resolves back to the acceptor
        # replicas through their own ledgers.
        assert "sent by" in text
        dag = leader.why_decided(1, fmt="json")
        assert len(dag_nodes(dag)) >= 2

    def test_restart_reregisters_fresh_ledger(self):
        cluster, master, fs = make_fs_cluster()
        fs.mkdir("/a")
        old_ledger = master.runtime.ledger
        cluster.crash("master")
        cluster.restart("master")
        assert master.runtime.ledger is not old_ledger
        assert (
            cluster.provenance.ledger_for("master")
            is master.runtime.ledger
        )


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_sampling_counts_every_exec(self):
        rt = OverlogRuntime(TC, profile=True, profile_sample_every=3)
        rt.insert_many("link", [("a", "b"), ("b", "c"), ("c", "d")])
        rt.run_to_quiescence()
        report = rt.profile_report(fmt="json")
        by_rule = {r["rule"]: r for r in report["rules"]}
        assert set(by_rule) == {"s1", "s2"}
        for entry in by_rule.values():
            assert entry["execs"] >= entry["sampled"] >= 1
            assert entry["est_ms"] >= 0.0
        # Step breakdowns cross-reference explain() by step index.
        plan = by_rule["s2"]["plans"][0]
        assert plan["steps"][0]["step"] == 0

    def test_profiler_results_match_unprofiled(self):
        plain = OverlogRuntime(TC)
        profiled = OverlogRuntime(TC, profile=True, profile_sample_every=1)
        for rt in (plain, profiled):
            rt.insert_many("link", [("a", "b"), ("b", "c"), ("c", "d")])
            rt.run_to_quiescence()
        assert sorted(plain.rows("path")) == sorted(profiled.rows("path"))
        assert (
            dict(plain.evaluator.rule_fires)
            == dict(profiled.evaluator.rule_fires)
        )

    def test_stats_survive_plan_invalidation(self):
        rt = OverlogRuntime(TC, profile=True, profile_sample_every=1)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        before = rt.profile_report(fmt="json")
        execs_before = sum(r["execs"] for r in before["rules"])
        rt.add_rule("s3 path(X, X) :- link(X, _);")  # invalidates plans
        rt.insert("link", ("b", "c"))
        rt.run_to_quiescence()
        after = rt.profile_report(fmt="json")
        execs_after = sum(r["execs"] for r in after["rules"])
        assert execs_after > execs_before  # history accumulated, not reset

    def test_exporters(self):
        rt = OverlogRuntime(TC, profile=True, profile_sample_every=1)
        rt.insert("link", ("a", "b"))
        rt.run_to_quiescence()
        report = rt.profile_report(fmt="json")
        js = hot_rules_json(report)
        assert '"sample_every"' in js
        text = render_hot_rules(report)
        assert "hot rules" in text and "s1" in text
        assert text == rt.profile_report()

    def test_profile_disabled_runtime(self):
        rt = OverlogRuntime(TC)
        assert "disabled" in rt.profile_report()


# ---------------------------------------------------------------------------
# explain() cross-reference
# ---------------------------------------------------------------------------


class TestExplainFires:
    def test_explain_reports_cumulative_fires(self):
        rt = OverlogRuntime(TC)
        rt.insert_many("link", [("a", "b"), ("b", "c")])
        rt.run_to_quiescence()
        out = rt.explain()
        assert "fires:" in out
        # s1 fired twice (one per link fact).
        s1_block = out.split("s1", 1)[1].split("s2", 1)[0]
        assert "fires: 2 cumulative" in s1_block
