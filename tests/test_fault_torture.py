"""Torture tests: randomized fault schedules against live workloads, with
declarative invariants watching the whole time.

These are the "redundancy does not imply fault tolerance" tests: every
seed is a different interleaving of crashes/restarts with operations, and
the assertions are end-state properties (data survives, replicas agree,
invariants hold), not scripted timelines.
"""

import random

import pytest

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode, FSError, FSTimeout
from repro.monitoring import (
    InvariantMonitor,
    boomfs_invariants_program,
    with_invariants,
)
from repro.overlog import OverlogRuntime
from repro.paxos import PaxosReplica, ReplicatedFSClient, ReplicatedMaster
from repro.sim import Cluster, LatencyModel


class _CheckedMaster(BoomFSMaster):
    """NameNode with the invariant rules merged in and a strict monitor."""

    def __init__(self, address: str, replication: int = 2):
        super().__init__(address, replication=replication)
        # Swap in the instrumented program and rebuild; the monitor is
        # (re)attached by _make_runtime, including after crash-restarts.
        self._program = with_invariants(
            self._program, boomfs_invariants_program()
        )
        self.monitor = InvariantMonitor(strict=True)
        self.runtime = self._make_runtime()

    def _make_runtime(self) -> OverlogRuntime:
        runtime = super()._make_runtime()
        if hasattr(self, "monitor"):
            self.monitor.attach(runtime)
        return runtime


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestDataNodeChurn:
    def test_fs_survives_datanode_churn_with_invariants(self, seed):
        rng = random.Random(seed)
        cluster = Cluster(seed=seed, latency=LatencyModel(1, 2))
        master = cluster.add(_CheckedMaster("master", replication=2))
        for i in range(5):
            cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
        fs = cluster.add(
            BoomFSClient("client", masters=["master"], op_timeout_ms=10_000)
        )
        cluster.run_for(900)
        fs.mkdir("/t")
        written = {}
        for i in range(10):
            data = bytes([i]) * rng.randrange(50, 400)
            fs.write(f"/t/f{i}", data)
            written[f"/t/f{i}"] = data
            # random churn: crash or restart a random datanode
            victim = f"dn{rng.randrange(5)}"
            if cluster.is_up(victim):
                cluster.crash(victim)
                cluster.restart_at(cluster.now + rng.randrange(500, 4000), victim)
            cluster.run_for(rng.randrange(200, 1500))
        # give re-replication time, then everything must be readable
        cluster.run_for(15_000)
        for path, data in written.items():
            assert fs.read(path) == data, path
        assert master.monitor.ok, master.monitor.violations


@pytest.mark.parametrize("seed", [4, 5, 6])
class TestPaxosChurn:
    def test_agreement_under_random_replica_churn(self, seed):
        rng = random.Random(seed)
        cluster = Cluster(seed=seed, latency=LatencyModel(1, 2))
        group = [f"p{i}" for i in range(5)]
        replicas = [cluster.add(PaxosReplica(a, group)) for a in group]
        cluster.run_until(
            lambda: any(r.is_leader for r in replicas if not r.crashed),
            max_time_ms=20_000,
        )
        submitted = 0
        for round_no in range(6):
            leaders = [r for r in replicas if not r.crashed and r.is_leader]
            if leaders:
                for k in range(3):
                    leaders[0].submit(("op", round_no, k))
                    submitted += 3 if k == 2 else 0
            # churn: keep a quorum (crash at most so 3 stay up)
            up = [r for r in replicas if not r.crashed]
            if len(up) > 3 and rng.random() < 0.7:
                victim = rng.choice([r.address for r in up])
                cluster.crash(victim)
            down = [r for r in replicas if r.crashed]
            if down and rng.random() < 0.6:
                cluster.restart(rng.choice(down).address)
            cluster.run_for(rng.randrange(1500, 4000))
        for r in replicas:
            if r.crashed:
                cluster.restart(r.address)
        cluster.run_for(20_000)
        # Agreement: every replica's log must be a consistent prefix-map.
        logs = [r.decided_log() for r in replicas]
        for inst in set().union(*logs):
            values = {log[inst] for log in logs if inst in log}
            assert len(values) == 1, f"instance {inst} diverged: {values}"
        # Liveness: at least the ops submitted while a stable leader held
        # must have been decided.
        assert len(logs[0]) > 0


@pytest.mark.parametrize("seed", [7, 8])
class TestReplicatedFSChurn:
    def test_replicated_namespace_converges_after_master_churn(self, seed):
        rng = random.Random(seed)
        cluster = Cluster(seed=seed, latency=LatencyModel(1, 2))
        group = ["m0", "m1", "m2"]
        masters = [
            cluster.add(ReplicatedMaster(a, group, replication=1))
            for a in group
        ]
        cluster.add(DataNode("dn0", masters=group, heartbeat_ms=300))
        fs = cluster.add(
            ReplicatedFSClient("client", group, op_timeout_ms=45_000)
        )
        cluster.run_until(
            lambda: any(m.is_leader for m in masters), max_time_ms=20_000
        )
        fs.mkdir("/w")
        created = []
        for i in range(6):
            name = f"/w/f{i}"
            try:
                fs.create(name)
                created.append(name)
            except (FSError, FSTimeout):
                pass  # op may be lost during an election; that's allowed
            # churn one master, keeping a quorum of 2
            up = [m for m in masters if not m.crashed]
            if len(up) == 3:
                victim = rng.choice(up).address
                cluster.crash(victim)
                cluster.restart_at(cluster.now + rng.randrange(2000, 6000), victim)
            cluster.run_for(rng.randrange(1000, 3000))
        for m in masters:
            if m.crashed:
                cluster.restart(m.address)
        cluster.run_for(25_000)
        namespaces = [m.paths() for m in masters]
        assert namespaces[0] == namespaces[1] == namespaces[2]
        for name in created:
            assert name in namespaces[0], f"acknowledged create {name} lost"
