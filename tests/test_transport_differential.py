"""Differential harness: the simulator and asyncio backends must agree.

The tentpole guarantee of the pluggable transport is that programs are
backend-agnostic: for the same seeded workload, the discrete-event
simulator and the real-concurrency asyncio backend produce identical
final table states and identical send multisets (modulo delivery order).

Two workloads exercise that claim:

* the E4 metadata workload — a confluent (CALM) sequence of BOOM-FS
  metadata operations, compared *exactly*: final master tables and the
  full multiset of ``(src, dst, relation, row)`` deltas;
* seeded Paxos — leader election plus replicated submissions, compared
  on decided/applied state and the deduplicated set of protocol-relation
  deltas (timer-driven heartbeats/retransmits legitimately differ
  between virtual and real time, so they are excluded).
"""

import random
from collections import Counter

import pytest

from repro.boomfs import BoomFSMaster
from repro.boomfs.client import FSSession
from repro.paxos import PaxosReplica
from repro.sim import Cluster, LatencyModel, Process
from repro.transport import AsyncCluster

SEEDS = range(20)

# -- metadata workload --------------------------------------------------------


def _metadata_ops(seed: int, count: int = 25):
    """A seeded, deterministic metadata-op script (issued sequentially,
    so it is identical on any backend)."""
    rng = random.Random(seed)
    ops = [("mkdir", "/d0")]
    dirs = ["/d0"]
    files = []
    for i in range(count):
        roll = rng.random()
        if roll < 0.3:
            path = f"{rng.choice(dirs)}/d{i}"
            ops.append(("mkdir", path))
            dirs.append(path)
        elif roll < 0.6:
            path = f"{rng.choice(dirs)}/f{i}"
            ops.append(("create", path))
            files.append(path)
        elif roll < 0.8 and files:
            ops.append(("stat", rng.choice(files)))
        else:
            ops.append(("ls", rng.choice(dirs)))
    return ops


class _ScriptDriver(Process):
    """Replays a metadata-op script sequentially through an FSSession."""

    def __init__(self, address, master, ops):
        super().__init__(address)
        # Generous RPC timeout: on the async backend virtual time is real
        # time scaled, so a loaded host could otherwise trip spurious
        # retries and perturb the send multiset.
        self.session = FSSession(self, [master], rpc_timeout_ms=20_000)
        self.ops = list(ops)
        self.results = []
        self.done = False

    def start(self):
        self._next()

    def handle_message(self, relation, row):
        self.session.on_message(relation, row)

    def _next(self):
        if not self.ops:
            self.done = True
            return
        op, path = self.ops.pop(0)

        def cb(ok, payload, retried):
            self.results.append((op, path, ok, payload))
            self._next()

        getattr(self.session, op)(path, cb)


def _run_metadata(cluster, seed):
    cluster.transport.record_sends = True
    master = cluster.add(BoomFSMaster("master"))
    driver = cluster.add(
        _ScriptDriver("client", "master", _metadata_ops(seed))
    )
    ok = cluster.run_until(lambda: driver.done, max_time_ms=60_000)
    assert ok, "metadata script did not complete"
    tables = {
        rel: sorted(master.runtime.rows(rel))
        for rel in ("file", "fqpath", "fchunk", "chunk_cnt")
    }
    sends = Counter(cluster.transport.sent_log)
    results = driver.results
    cluster.shutdown()
    return tables, sends, results


@pytest.mark.parametrize("seed", SEEDS)
def test_metadata_workload_backends_agree(seed):
    sim_tables, sim_sends, sim_results = _run_metadata(
        Cluster(seed=seed, latency=LatencyModel(1, 2)), seed
    )
    async_tables, async_sends, async_results = _run_metadata(
        AsyncCluster(seed=seed, time_scale=10.0), seed
    )
    assert sim_tables == async_tables
    assert sim_results == async_results
    # Full send multisets: every (src, dst, relation, row) delta with its
    # multiplicity — delivery *order* is the only latitude backends get.
    assert sim_sends == async_sends


# -- Paxos workload -----------------------------------------------------------

PROTOCOL_RELATIONS = {
    "prepare",
    "promise",
    "promise_acc",
    "accept_req",
    "accepted",
    "decide_msg",
}


def _run_paxos(cluster, seed, n=3, ops=5):
    cluster.transport.record_sends = True
    group = [f"p{i}" for i in range(n)]
    # A huge stagger pins the election outcome (p0) on any backend:
    # elections are otherwise a timing race that virtual and real time
    # may legitimately resolve differently.
    replicas = [
        cluster.add(
            PaxosReplica(
                a,
                group,
                base_election_timeout_ms=300,
                election_stagger_ms=60_000,
            )
        )
        for a in group
    ]
    ok = cluster.run_until(
        lambda: any(r.is_leader for r in replicas), max_time_ms=30_000
    )
    assert ok, "no leader elected"
    leader = next(r for r in replicas if r.is_leader)
    rng = random.Random(seed)
    # Sequential submissions: slot assignment becomes order-independent,
    # so decided logs are comparable across backends.
    for i in range(ops):
        leader.submit(("op", i, rng.randrange(1000)))
        ok = cluster.run_until(
            lambda want=i + 1: all(
                r.applied_through() == want for r in replicas
            ),
            max_time_ms=60_000,
        )
        assert ok, f"op {i} did not replicate everywhere"
    state = {
        "leader": leader.address,
        "logs": [r.decided_log() for r in replicas],
        "applied": [r.applied_through() for r in replicas],
    }
    # Deduplicate: virtual vs real time legitimately changes *how often*
    # timer-driven retransmits fire, never *what* the protocol says.
    protocol_sends = {
        entry
        for entry in cluster.transport.sent_log
        if entry[2] in PROTOCOL_RELATIONS
    }
    cluster.shutdown()
    return state, protocol_sends


@pytest.mark.parametrize("seed", SEEDS)
def test_paxos_backends_agree(seed):
    sim_state, sim_sends = _run_paxos(
        Cluster(seed=seed, latency=LatencyModel(1, 2)), seed
    )
    async_state, async_sends = _run_paxos(
        AsyncCluster(seed=seed, time_scale=5.0), seed
    )
    assert sim_state == async_state
    assert sim_sends == async_sends
