"""Tests for the stat operation and the FS shell."""

import pytest

from repro.boomfs import (
    BoomFSClient,
    BoomFSMaster,
    DataNode,
    FSError,
    FSShell,
    ShellError,
)
from repro.hadoop import BaselineNameNode
from repro.sim import Cluster, LatencyModel


def make(master_cls=BoomFSMaster):
    cluster = Cluster(latency=LatencyModel(1, 1))
    cluster.add(master_cls("master", replication=2))
    for i in range(2):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
    fs = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(700)
    return cluster, fs


class TestStat:
    @pytest.mark.parametrize("master_cls", [BoomFSMaster, BaselineNameNode])
    def test_stat_file_size(self, master_cls):
        cluster, fs = make(master_cls)
        fs.session.chunk_size = 100
        fs.write("/f", b"x" * 250)  # 3 chunks: 100+100+50
        cluster.run_for(200)
        assert fs.stat("/f") == (False, 250)

    @pytest.mark.parametrize("master_cls", [BoomFSMaster, BaselineNameNode])
    def test_stat_dir_and_empty_file(self, master_cls):
        cluster, fs = make(master_cls)
        fs.mkdir("/d")
        fs.write("/d/empty", b"")
        assert fs.stat("/d") == (True, 0)
        assert fs.stat("/d/empty") == (False, 0)

    def test_stat_missing(self):
        _, fs = make()
        with pytest.raises(FSError, match="noent"):
            fs.stat("/ghost")

    def test_stat_right_after_write_resolves(self):
        # "pending" (chunk reports in flight) is retried internally.
        cluster, fs = make()
        fs.write("/f", b"y" * 64)
        assert fs.stat("/f") == (False, 64)


class TestShell:
    def test_script(self):
        _, fs = make()
        shell = FSShell(fs)
        out = shell.run_script(
            """
            # build a small tree
            mkdirs /a/b
            put /a/b/hello greetings
            ls /a
            cat /a/b/hello
            stat /a/b/hello
            exists /a
            exists /a/b/hello
            exists /nope
            mv /a/b/hello /a/hi
            rm /a/b
            tree /
            """
        )
        assert out[0] == "created /a/b"
        assert out[1].startswith("wrote 9 bytes")
        assert out[2] == "b"
        assert out[3] == "greetings"
        assert out[4] == "/a/b/hello: file, 9 bytes"
        assert out[5] == "dir"
        assert out[6] == "file"
        assert out[7] == "absent"
        assert "hi" in out[10]  # tree shows the moved file

    def test_tree_rendering(self):
        _, fs = make()
        shell = FSShell(fs)
        shell.run_script(
            """
            mkdirs /x/y
            put /x/y/f1 one
            put /x/f2 two
            """
        )
        tree = shell.execute("tree /")
        assert tree.splitlines()[0] == "/"
        assert any("f1" in line for line in tree.splitlines())
        assert any("`-" in line or "|-" in line for line in tree.splitlines())

    def test_errors(self):
        _, fs = make()
        shell = FSShell(fs)
        with pytest.raises(ShellError, match="unknown command"):
            shell.execute("frobnicate /")
        with pytest.raises(ShellError, match="usage"):
            shell.execute("mv /only-one-arg")
        with pytest.raises(ShellError, match="noent"):
            shell.execute("cat /missing")

    def test_help_lists_commands(self):
        _, fs = make()
        shell = FSShell(fs)
        help_text = shell.execute("help")
        for cmd in ("ls", "put", "cat", "tree"):
            assert cmd in help_text

    def test_empty_and_comment_lines_ignored(self):
        _, fs = make()
        shell = FSShell(fs)
        assert shell.run_script("\n# nothing\n\n") == []
        assert shell.execute("") == ""
