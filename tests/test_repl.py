"""Tests for the Overlog REPL (scripted, no TTY needed)."""

import pytest

from repro.overlog.repl import Repl, _coerce

PROGRAM = """
program demo;
define(link, keys(0, 1), {Str, Str});
define(path, keys(0, 1), {Str, Str});
event(out, 2);
path(X, Y) :- link(X, Y);
path(X, Z) :- link(X, Y), path(Y, Z);
out(@X, Y) :- link(X, Y), X != "repl";
"""


@pytest.fixture()
def repl():
    return Repl(PROGRAM)


class TestCoerce:
    def test_types(self):
        assert _coerce("42") == 42
        assert _coerce("2.5") == 2.5
        assert _coerce("true") is True
        assert _coerce("false") is False
        assert _coerce("nil") is None
        assert _coerce("hello") == "hello"
        assert _coerce('"quoted"') == "quoted"


class TestCommands:
    def test_insert_and_tick_and_dump(self, repl):
        repl.execute("insert link a b")
        repl.execute("insert link b c")
        out = repl.execute("tick")
        assert "derivations" in out
        dump = repl.execute("dump path")
        assert "path('a', 'c')" in dump

    def test_sends_reported(self, repl):
        repl.execute("insert link a b")
        out = repl.execute("tick")
        assert "send -> a: out" in out

    def test_install(self, repl):
        repl.execute("install link x y")
        repl.execute("tick")
        assert "('x', 'y')" in repl.execute("dump link")

    def test_tables_and_rules_and_strata(self, repl):
        tables = repl.execute("tables")
        assert "link" in tables and "path" in tables
        rules = repl.execute("rules")
        assert ":-" in rules
        strata = repl.execute("strata")
        assert "stratum 0" in strata

    def test_empty_dump(self, repl):
        assert "(empty)" in repl.execute("dump path")

    def test_unknown_command(self, repl):
        assert "unknown command" in repl.execute("frobnicate")

    def test_error_surfaced_not_raised(self, repl):
        out = repl.execute("dump nonexistent")
        assert out.startswith("error:")

    def test_help(self, repl):
        assert "insert" in repl.execute("help")

    def test_blank_line(self, repl):
        assert repl.execute("") == ""

    def test_why_command(self, repl):
        repl.execute("insert link a b")
        repl.execute("insert link b c")
        repl.execute("tick")
        out = repl.execute("\\why path a c")
        assert "why" in out and "external input" in out

    def test_whynot_command_with_unknown(self, repl):
        repl.execute("insert link a b")
        repl.execute("tick")
        out = repl.execute("\\whynot path c ?")
        assert "why not path" in out and "fails at" in out

    def test_profile_command(self, repl):
        repl.execute("insert link a b")
        repl.execute("tick")
        out = repl.execute("\\profile")
        assert "hot rules" in out

    def test_explain_command(self, repl):
        repl.execute("insert link a b")
        repl.execute("tick")
        out = repl.execute("\\explain")
        assert "fires:" in out

    def test_src_command_dumps_generated_source(self, repl):
        out = repl.execute("\\src")
        assert "def _" in out  # codegen tier is the default
        one_rule = repl.execute("\\src demo_r2")
        assert "rule demo_r2" in one_rule and "def _demo_r2_" in one_rule
        assert "rule demo_r1" not in one_rule
        assert "no generated source" in repl.execute("\\src nosuchrule")

    def test_commands_work_without_backslash(self, repl):
        repl.execute("insert link a b")
        repl.execute("tick")
        assert "hot rules" in repl.execute("profile")

    def test_boomfs_program_loads(self):
        from repro.boomfs import master_program_source

        repl = Repl(master_program_source())
        repl.execute("install file 0 -1 \"\" true")
        repl.execute("install repfactor 2")
        repl.execute("install dn_timeout 3000")
        repl.execute("insert request 1 client mkdir /x nil")
        repl.execute("tick 1")
        assert "('/x', 1)" in repl.execute("dump fqpath")
