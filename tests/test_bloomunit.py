"""Tests for the BloomUnit-style declarative test harness."""

import pytest

from repro.boomfs import master_program
from repro.monitoring import DeclarativeTest
from repro.paxos import paxos_program

FS_BOOTSTRAP = {
    "file": [(0, -1, "", True)],
    "repfactor": [(2,)],
    "dn_timeout": [(3000,)],
}

COUNTER = """
program counter;
define(total, keys(0), {Int, Int});
event(add, 1);
total(0, V + N)@next :- add(N), total(0, V);
"""

COUNTER_BOOT = {"total": [(0, 0)]}


class TestHarnessBasics:
    def test_passing_safety_and_liveness(self):
        spec = """
        program spec;
        event(test_failed, 2);
        define(test_expect, keys(0), {Str});
        s1 test_failed("negative", V) :- total(0, V), V < 0;
        l1 test_expect("reaches-5") :- total(0, V), V >= 5;
        """
        result = DeclarativeTest(COUNTER, spec).run(
            scenario=[(1, "add", (2,)), (2, "add", (3,))],
            expectations=["reaches-5"],
            bootstrap=COUNTER_BOOT,
        )
        assert result.passed, result.report()

    def test_safety_violation_detected(self):
        spec = """
        program spec;
        event(test_failed, 2);
        s1 test_failed("too-big", V) :- total(0, V), V > 3;
        """
        result = DeclarativeTest(COUNTER, spec).run(
            scenario=[(1, "add", (10,))], bootstrap=COUNTER_BOOT
        )
        assert not result.passed
        assert result.failures[0][0] == "too-big"
        assert "too-big" in result.report()

    def test_unmet_expectation_detected(self):
        spec = """
        program spec;
        define(test_expect, keys(0), {Str});
        l1 test_expect("reaches-100") :- total(0, V), V >= 100;
        """
        result = DeclarativeTest(COUNTER, spec).run(
            scenario=[(1, "add", (1,))],
            expectations=["reaches-100"],
            bootstrap=COUNTER_BOOT,
        )
        assert not result.passed
        assert result.missing == ["reaches-100"]

    def test_spec_without_assertions_rejected(self):
        with pytest.raises(ValueError):
            DeclarativeTest(COUNTER, "program empty;")


class TestAgainstRealPrograms:
    def test_boomfs_path_uniqueness_spec(self):
        spec = """
        program fs_spec;
        event(test_failed, 2);
        define(test_expect, keys(0), {Str});
        s1 test_failed("dup-path", P) :- fqpath(P, F1), fqpath(P, F2), F1 != F2;
        s2 test_failed("orphan", P) :- fqpath(P, F), notin file(F, _, _, _);
        l1 test_expect("tree-built") :- fqpath("/a/b/c", _);
        """
        scenario = [
            (10, "request", (1, "c", "mkdir", "/a", None)),
            (20, "request", (2, "c", "mkdir", "/a/b", None)),
            (30, "request", (3, "c", "mkdir", "/a/b/c", None)),
            (40, "request", (4, "c", "mkdir", "/a", None)),  # dup: must be rejected
        ]
        result = DeclarativeTest(master_program(), spec).run(
            scenario, expectations=["tree-built"], bootstrap=FS_BOOTSTRAP
        )
        assert result.passed, result.report()

    def test_boomfs_spec_catches_injected_corruption(self):
        spec = """
        program fs_spec;
        event(test_failed, 2);
        s2 test_failed("orphan", P) :- fqpath(P, F), notin file(F, _, _, _);
        """
        bootstrap = dict(FS_BOOTSTRAP)
        bootstrap["fqpath"] = [("/ghost", 99)]
        result = DeclarativeTest(master_program(), spec).run(
            scenario=[(10, "request", (1, "c", "exists", "/", None))],
            bootstrap=bootstrap,
        )
        assert not result.passed
        assert ("orphan", "/ghost") in result.failures

    def test_paxos_single_node_decides(self):
        spec = """
        program paxos_spec;
        event(test_failed, 2);
        define(test_expect, keys(0), {Str});
        /* agreement is per-instance uniqueness of decided values */
        s1 test_failed("dup-decide", I) :- decided(I, V1), decided(I, V2), V1 != V2;
        l1 test_expect("decided-1") :- decided(1, _);
        """
        bootstrap = {
            "members": [("test",)],
            "nmembers": [(0, 1)],
            "quorum": [(0, 1)],
            "me": [(0, "test")],
            "my_index": [(0, 0)],
            "election_timeout": [(0, 100)],
            "role": [(0, "follower")],
            "curr_ballot": [(0, 0)],
            "next_inst": [(0, 1)],
            "applied": [(0, 1)],
            "leader_seen": [(0, 0)],
            "max_promised": [(0, 0)],
        }
        # px_tick timer fires at 300ms -> election -> single-node quorum;
        # then the op decides.
        result = DeclarativeTest(paxos_program(), spec).run(
            scenario=[
                (350, "px_tick", (99, 350)),
                (400, "client_op", ("test", ("op", 1))),
                (700, "px_tick", (100, 700)),
            ],
            expectations=["decided-1"],
            bootstrap=bootstrap,
            extra_functions={"f_localseq": iter(range(1, 10_000)).__next__},
        )
        assert result.passed, result.report()
