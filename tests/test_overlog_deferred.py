"""Tests for @next (deferred) rules and the list<> aggregate — the engine
features that make state-machine programs (BOOM-FS, Paxos) expressible."""

import pytest

from repro.overlog import CatalogError, OverlogRuntime, StratificationError, parse


def make(src, **kw):
    return OverlogRuntime("program t;\n" + src, **kw)


class TestDeferredRules:
    def test_parse_and_print_roundtrip(self):
        prog = parse(
            "program t; define(a, keys(0), {Int}); "
            "r1 a(X)@next :- a(X);"
        )
        assert prog.rules[0].deferred
        assert parse(str(prog)).rules[0].deferred

    def test_deferred_insert_lands_next_step(self):
        rt = make(
            """
            define(state, keys(0), {Str, Int});
            event(bump, 1);
            state(K, V + 1)@next :- bump(K), state(K, V);
            """
        )
        rt.install("state", [("x", 0)])
        rt.insert("bump", ("x",))
        rt.tick()
        assert rt.rows("state") == [("x", 0)]  # not yet applied
        assert rt.has_pending_work
        rt.tick()
        assert rt.rows("state") == [("x", 1)]

    def test_deferred_breaks_check_then_insert_cycle(self):
        # Classic FS pattern: reject if path exists, else insert the file,
        # which re-derives the path table.  Unstratifiable without @next.
        src_immediate = """
        define(file, keys(0), {Int, Str});
        define(path, keys(0), {Str, Int});
        event(mk, 2);
        path(N, F) :- file(F, N);
        file(F, N) :- mk(F, N), notin path(N, _);
        """
        with pytest.raises(StratificationError):
            make(src_immediate)

        rt = make(
            """
            define(file, keys(0), {Int, Str});
            define(path, keys(0), {Str, Int});
            event(mk, 2);
            path(N, F) :- file(F, N);
            file(F, N)@next :- mk(F, N), notin path(N, _);
            """
        )
        rt.insert("mk", (1, "a"))
        rt.tick()
        rt.tick()
        assert rt.rows("path") == [("a", 1)]
        # Second create of the same name is rejected by the notin check.
        rt.insert("mk", (2, "a"))
        rt.tick()
        rt.tick()
        assert rt.rows("file") == [(1, "a")]

    def test_deferred_delete(self):
        rt = make(
            """
            define(lease, keys(0), {Str, Int});
            event(expire, 1);
            exp delete lease(K, V)@next :- expire(K), lease(K, V);
            """
        )
        rt.install("lease", [("a", 1), ("b", 2)])
        rt.insert("expire", ("a",))
        rt.tick()
        assert len(rt.rows("lease")) == 2
        rt.tick()
        assert rt.rows("lease") == [("b", 2)]

    def test_deferred_event_chains_steps(self):
        # A deferred event acts like a self-message: counts steps.
        rt = make(
            """
            define(counter, keys(), {Int});
            event(go, 1);
            counter(N) :- go(N);
            go(N + 1)@next :- go(N), N < 3;
            """
        )
        rt.insert("go", (0,))
        ticks = 0
        rt.tick()
        while rt.has_pending_work:
            rt.tick()
            ticks += 1
        # keys() means whole-row key: every step's value accumulates.
        assert sorted(rt.rows("counter")) == [(0,), (1,), (2,), (3,)]
        assert ticks == 3

    def test_deferred_with_location_rejected(self):
        with pytest.raises(CatalogError):
            make(
                """
                event(a, 1);
                event(b, 1);
                b(@X)@next :- a(X);
                """
            )

    def test_run_to_quiescence_processes_deferred(self):
        rt = make(
            """
            define(counter, keys(), {Int});
            event(go, 1);
            counter(N) :- go(N);
            go(N + 1)@next :- go(N), N < 10;
            """
        )
        rt.insert("go", (0,))
        rt.run_to_quiescence()
        assert (10,) in rt.rows("counter")
        assert len(rt.rows("counter")) == 11


class TestListAggregate:
    def test_list_collects_sorted(self):
        rt = make(
            """
            define(child, keys(0, 1), {Str, Str});
            define(listing, keys(0), {Str, List});
            listing(D, list<N>) :- child(D, N);
            """
        )
        rt.insert_many("child", [("/", "b"), ("/", "a"), ("/x", "c")])
        rt.tick()
        assert sorted(rt.rows("listing")) == [
            ("/", ("a", "b")),
            ("/x", ("c",)),
        ]

    def test_list_of_pairs_sorts_deterministically(self):
        rt = make(
            """
            define(cand, keys(0, 1), {Int, Str});
            define(ranked, keys(), {List});
            ranked(list<P>) :- cand(H, A), P := f_list(H, A);
            """
        )
        rt.insert_many("cand", [(30, "dn1"), (10, "dn3"), (20, "dn2")])
        rt.tick()
        assert rt.rows("ranked") == [(((10, "dn3"), (20, "dn2"), (30, "dn1")),)]

    def test_take_and_project(self):
        rt = make(
            """
            define(cand, keys(0, 1), {Int, Str});
            define(ranked, keys(), {List});
            define(picked, keys(), {List});
            ranked(list<P>) :- cand(H, A), P := f_list(H, A);
            picked(Addrs) :- ranked(L), Addrs := f_take(f_project(L, 1), 2);
            """
        )
        rt.insert_many("cand", [(30, "dn1"), (10, "dn3"), (20, "dn2")])
        rt.tick()
        assert rt.rows("picked") == [(("dn3", "dn2"),)]
