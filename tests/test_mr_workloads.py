"""Further MapReduce workloads: distributed sort, concurrent jobs, and
the workload generators themselves."""


from repro.mapreduce import (
    JobRunner,
    JobSpec,
    build_mr_cluster,
    local_wordcount,
    make_input_files,
    wordcount_map,
    wordcount_reduce,
    zipf_corpus,
)
from repro.mapreduce.workloads import (
    local_sort,
    random_records,
    sort_map,
    sort_reduce,
)


class TestGenerators:
    def test_zipf_corpus_deterministic(self):
        assert zipf_corpus(500, seed=3) == zipf_corpus(500, seed=3)
        assert zipf_corpus(500, seed=3) != zipf_corpus(500, seed=4)

    def test_zipf_corpus_is_skewed(self):
        counts = local_wordcount([zipf_corpus(5000, seed=1)])
        ordered = sorted(counts.values(), reverse=True)
        # head word much hotter than the tail
        assert ordered[0] > 5 * ordered[-1]

    def test_random_records_shape(self):
        data = random_records(100, seed=2, width=10)
        lines = data.decode().splitlines()
        assert len(lines) == 100
        assert all(len(l) == 10 for l in lines)

    def test_word_budget(self):
        text = zipf_corpus(321, seed=9).decode()
        assert sum(len(l.split()) for l in text.splitlines()) == 321


class TestDistributedSort:
    def test_sorted_output_per_partition(self):
        mr = build_mr_cluster(num_trackers=4, seed=17)
        runner = JobRunner(mr)
        datasets = [random_records(150, seed=17 * 10 + i) for i in range(6)]
        paths = runner.stage_inputs("/in", datasets)
        spec = JobSpec(0, paths, 3, sort_map, sort_reduce, "/out")
        runner.run_job(spec)
        fs = mr.fs_client
        all_records = []
        for name in fs.ls("/out"):
            part_lines = [
                line.rsplit("\t", 1)[0]
                for line in fs.read(f"/out/{name}").decode().splitlines()
                if line
            ]
            # each reducer writes its partition in sorted order
            assert part_lines == sorted(part_lines), name
            all_records.extend(part_lines)
        assert sorted(all_records) == local_sort(datasets)


class TestConcurrentJobs:
    def test_two_jobs_in_flight_fifo_priority(self):
        mr = build_mr_cluster(num_trackers=4, seed=19)
        runner = JobRunner(mr)
        sets1 = make_input_files(2500, 6, seed=19)
        sets2 = make_input_files(2500, 6, seed=20)
        paths1 = runner.stage_inputs("/in1", sets1)
        paths2 = runner.stage_inputs("/in2", sets2)
        mr.fs_client.mkdir("/out1")
        mr.fs_client.mkdir("/out2")
        jt = mr.jobtracker
        j1 = jt.submit(JobSpec(0, paths1, 2, wordcount_map, wordcount_reduce, "/out1"))
        j2 = jt.submit(JobSpec(0, paths2, 2, wordcount_map, wordcount_reduce, "/out2"))
        assert j1 != j2
        done = mr.cluster.run_until(
            lambda: jt.is_complete(j1) and jt.is_complete(j2),
            max_time_ms=600_000,
        )
        assert done, (jt.task_states(j1), jt.task_states(j2))
        # FIFO: the lower job id must not finish after the higher one by
        # much — in fact it should complete first (it gets all slots first).
        assert jt.completions[j1] <= jt.completions[j2]
        assert runner.fetch_output("/out1") == local_wordcount(sets1)
        assert runner.fetch_output("/out2") == local_wordcount(sets2)

    def test_three_small_jobs(self):
        mr = build_mr_cluster(num_trackers=3, seed=23)
        runner = JobRunner(mr)
        jt = mr.jobtracker
        jobs = []
        for k in range(3):
            sets = make_input_files(600, 2, seed=23 + k)
            paths = runner.stage_inputs(f"/in{k}", sets)
            mr.fs_client.mkdir(f"/out{k}")
            job_id = jt.submit(
                JobSpec(0, paths, 1, wordcount_map, wordcount_reduce, f"/out{k}")
            )
            jobs.append((job_id, sets))
        done = mr.cluster.run_until(
            lambda: all(jt.is_complete(j) for j, _ in jobs),
            max_time_ms=600_000,
        )
        assert done
        for k, (job_id, sets) in enumerate(jobs):
            assert runner.fetch_output(f"/out{k}") == local_wordcount(sets)
