"""Property-based tests (hypothesis) on engine and substrate invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import empirical_cdf, percentile
from repro.boomfs.chunks import assemble_chunks, split_chunks
from repro.mapreduce.types import partition_for
from repro.overlog import OverlogRuntime
from repro.overlog.catalog import Table
from repro.overlog.ast import TableDecl
from repro.overlog.functions import stable_hash
from repro.sim import LatencyModel, Network, Simulator

settings.register_profile(
    "repro", suppress_health_check=[HealthCheck.too_slow], deadline=None
)
settings.load_profile("repro")

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)


class TestTableProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(-5, 5)), max_size=60
        )
    )
    def test_primary_key_uniqueness(self, rows):
        table = Table(TableDecl("t", (0,), ("Int", "Int")))
        for row in rows:
            table.insert(row)
        keys = [row[0] for row in table.scan()]
        assert len(keys) == len(set(keys))

    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(-5, 5)), max_size=60
        )
    )
    def test_last_writer_wins(self, rows):
        table = Table(TableDecl("t", (0,), ("Int", "Int")))
        for row in rows:
            table.insert(row)
        expected = {}
        for key, value in rows:
            expected[key] = (key, value)
        assert sorted(table.scan()) == sorted(expected.values())

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 3)), max_size=40
        ),
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 3)), max_size=40
        ),
    )
    def test_insert_then_delete_roundtrip(self, inserts, deletes):
        table = Table(TableDecl("t", (0, 1), ("Int", "Int")))
        for row in inserts:
            table.insert(row)
        for row in deletes:
            table.delete(row)
        remaining = set(table.scan())
        assert remaining == set(inserts) - set(deletes)


class TestEngineProperties:
    @given(
        st.lists(
            st.tuples(names, names), min_size=1, max_size=15, unique=True
        )
    )
    def test_transitive_closure_is_correct(self, links):
        rt = OverlogRuntime(
            """
            program tc;
            define(link, keys(0, 1), {Str, Str});
            define(path, keys(0, 1), {Str, Str});
            path(X, Y) :- link(X, Y);
            path(X, Z) :- link(X, Y), path(Y, Z);
            """
        )
        rt.insert_many("link", links)
        rt.tick()
        # Reference closure via repeated squaring over a set.
        closure = set(links)
        while True:
            extra = {
                (a, d)
                for a, b in closure
                for c, d in closure
                if b == c and (a, d) not in closure
            }
            if not extra:
                break
            closure |= extra
        assert set(rt.rows("path")) == closure

    @given(
        st.lists(
            st.tuples(names, st.integers(0, 100)), min_size=1, max_size=30
        )
    )
    def test_aggregates_match_python(self, rows):
        rt = OverlogRuntime(
            """
            program agg;
            define(v, keys(0, 1), {Str, Int});
            define(stats, keys(0), {Str, Int, Int, Int, Int});
            stats(K, count<X>, min<X>, max<X>, sum<X>) :- v(K, X);
            """
        )
        rt.insert_many("v", rows)
        rt.tick()
        grouped: dict[str, set[int]] = {}
        for k, x in rows:
            grouped.setdefault(k, set()).add(x)
        expected = {
            (k, len(xs), min(xs), max(xs), sum(xs)) for k, xs in grouped.items()
        }
        assert set(rt.rows("stats")) == expected

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_negation_partitions_universe(self, values):
        rt = OverlogRuntime(
            """
            program neg;
            define(all_v, keys(0), {Int});
            define(small, keys(0), {Int});
            define(big, keys(0), {Int});
            small(X) :- all_v(X), X < 25;
            big(X) :- all_v(X), notin small(X);
            """
        )
        rt.insert_many("all_v", [(v,) for v in values])
        rt.tick()
        small = {x for (x,) in rt.rows("small")}
        big = {x for (x,) in rt.rows("big")}
        assert small | big == set(values)
        assert not small & big

    @given(st.lists(st.tuples(names, st.integers(0, 9)), max_size=20), st.integers(0, 2**31))
    def test_fixpoint_deterministic(self, rows, seed):
        def run():
            rt = OverlogRuntime(
                """
                program det;
                define(src, keys(0, 1), {Str, Int});
                define(out, keys(0), {Str, Int});
                out(K, sum<V>) :- src(K, V);
                """,
                seed=seed,
            )
            rt.insert_many("src", rows)
            rt.tick()
            return sorted(rt.rows("out"))

        assert run() == run()


class TestChunkProperties:
    @given(st.binary(max_size=5000), st.integers(1, 700))
    def test_split_assemble_roundtrip(self, data, chunk_size):
        chunks = split_chunks(data, chunk_size)
        assert assemble_chunks(chunks) == data
        assert all(len(c) <= chunk_size for c in chunks)
        assert all(len(c) > 0 for c in chunks)

    @given(st.binary(min_size=1, max_size=5000), st.integers(1, 700))
    def test_chunk_count(self, data, chunk_size):
        chunks = split_chunks(data, chunk_size)
        expected = (len(data) + chunk_size - 1) // chunk_size
        assert len(chunks) == expected


class TestHashProperties:
    @given(st.text(max_size=30))
    def test_stable_hash_is_stable(self, s):
        assert stable_hash(s) == stable_hash(s)

    @given(st.text(max_size=30), st.integers(1, 16))
    def test_partition_in_range(self, key, n):
        assert 0 <= partition_for(key, n) < n


class TestCdfProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_cdf_monotone_and_complete(self, values):
        cdf = empirical_cdf(values)
        assert cdf[-1][1] == 1.0
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        xs = [v for v, _ in cdf]
        assert xs == sorted(xs)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_percentile_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)


class TestNetworkProperties:
    @given(st.integers(0, 2**31), st.integers(1, 40))
    def test_per_link_fifo_under_any_seed(self, seed, count):
        sim = Simulator()
        net = Network(sim, latency=LatencyModel(1, 30), seed=seed)
        got = []
        net.register(
            "dst",
            lambda env: got.extend(row[0] for _, row, _ in env.items()),
        )
        for i in range(count):
            net.send_row("src", "dst", "m", (i,))
        sim.run_until(10_000)
        assert got == list(range(count))

    @given(st.integers(0, 2**31))
    def test_simulator_time_monotone(self, seed):
        import random

        rng = random.Random(seed)
        sim = Simulator()
        times = []
        for _ in range(30):
            sim.schedule(rng.randrange(1000), lambda: times.append(sim.now))
        sim.run_until(2000)
        assert times == sorted(times)
