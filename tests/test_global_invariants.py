"""Cluster-scoped invariants: cross-node safety rules at the monitor.

Covers the global_invariants packs end-to-end on the simulator (state
exports -> monitor joins -> invariant_violation events -> provenance),
the monitor-side Paxos rules via direct injection, shard disjointness
over partitioned masters, state-export re-arming across restarts, and
the asyncio-backend InvariantMonitor crash/restart regression.
"""

import pytest

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.boomfs.partition import PartitionedFSClient, partitioned_master
from repro.monitoring import (
    InvariantMonitor,
    boomfs_invariants_program,
    global_invariants_source,
    with_invariants,
)
from repro.overlog import parse
from repro.sim import Cluster


def _fs_cluster(seed=3, datanodes=3, replication=2):
    cluster = Cluster(seed=seed)
    cluster.add(BoomFSMaster("master", replication=replication))
    for i in range(datanodes):
        cluster.add(DataNode(f"dn{i}", masters=["master"]))
    client = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(600)
    client.mkdir("/d")
    client.write("/d/a", b"payload-bytes " * 30)
    cluster.run_for(1500)  # full chunk reports settle the master's beliefs
    return cluster


def _round(cluster, clock):
    cluster.publish_cluster_state(clock=clock)
    cluster.run_for(80)


class TestPackSource:
    def test_fused_source_parses_as_one_program(self):
        program = parse(global_invariants_source())
        assert program.name == "global_invariants"
        names = {r.name for r in program.rules}
        assert {"gw1", "gp1", "gb6", "gs2"} <= names

    def test_pack_subset_selectable(self):
        from repro.monitoring import GLOBAL_PAXOS_INVARIANTS

        program = parse(global_invariants_source([GLOBAL_PAXOS_INVARIANTS]))
        names = {r.name for r in program.rules}
        assert "gp1" in names
        assert "gb6" not in names


class TestChunkAgreement:
    def test_clean_rounds_are_silent(self):
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=None)
        for clock in (1, 2, 3):
            _round(cluster, clock)
        assert monitor.violations() == []

    def _wipe_a_replica(self, cluster):
        victim = next(
            cluster.get(f"dn{i}")
            for i in range(3)
            if cluster.get(f"dn{i}").chunks
        )
        victim.wipe_storage()
        return victim

    def test_amnesiac_datanode_detected(self):
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=None)
        _round(cluster, 1)
        _round(cluster, 2)
        self._wipe_a_replica(cluster)
        _round(cluster, 3)
        _round(cluster, 4)
        names = {row[0] for row in monitor.violations()}
        assert "chunk-agreement" in names

    def test_two_round_guard_defers_first_round(self):
        # One post-wipe round is in-flight-ambiguous; the rule must wait
        # for the second consecutive disagreeing round.
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=None)
        _round(cluster, 1)
        _round(cluster, 2)
        self._wipe_a_replica(cluster)
        _round(cluster, 3)
        assert monitor.violations() == []

    def test_why_violation_reaches_state_exports(self):
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=None)
        _round(cluster, 1)
        _round(cluster, 2)
        self._wipe_a_replica(cluster)
        _round(cluster, 3)
        _round(cluster, 4)
        row = next(
            r for r in monitor.violations() if r[0] == "chunk-agreement"
        )
        why = monitor.why_violation(row)
        assert "gb6" in why
        assert "fs_loc" in why

    def test_chunk_unhosted_when_all_replicas_die(self):
        # A single dead DataNode is healed by re-replication before the
        # two-round guard elapses (good!), so kill every *holder* of the
        # chunk.  With no live holder there is no re-replication source
        # either, so the chunk must surface as unhosted for two
        # consecutive rounds.
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=None)
        _round(cluster, 1)
        _round(cluster, 2)
        holders = [
            f"dn{i}" for i in range(3) if cluster.get(f"dn{i}").chunks
        ]
        assert len(holders) == 2  # replication factor
        for victim in holders:
            cluster.crash(victim)
        # The master prunes dead DataNodes only at 1000ms liveness timer
        # ticks, and only once strictly now - last_hb > dn_timeout
        # (3000ms) — so wait past the first tick *after* the timeout.
        cluster.run_for(4800)
        _round(cluster, 3)
        _round(cluster, 4)
        names = {row[0] for row in monitor.violations()}
        assert "chunk-unhosted" in names


class TestPaxosGlobalInvariants:
    """The monitor-side rules judged via direct export injection: the
    rules only see (relation, row) tuples, so forged exports exercise
    them without standing up a Paxos group."""

    def _monitor(self):
        cluster = Cluster(seed=1)
        monitor = cluster.enable_invariants(interval_ms=None)
        return cluster, monitor

    def test_paxos_agreement_fires_on_conflicting_logs(self):
        cluster, monitor = self._monitor()
        monitor.inject("px_state", ("r1", 1, "op-a"))
        monitor.inject("px_state", ("r2", 1, "op-b"))
        cluster.run_for(50)
        assert ("paxos-agreement", 1) in monitor.violations()

    def test_identical_logs_are_silent(self):
        cluster, monitor = self._monitor()
        monitor.inject("px_state", ("r1", 1, "op-a"))
        monitor.inject("px_state", ("r2", 1, "op-a"))
        cluster.run_for(50)
        assert monitor.violations() == []

    def test_ballot_regression(self):
        cluster, monitor = self._monitor()
        monitor.inject("px_cursor", ("r1", 5, 3, 1))
        cluster.run_for(50)
        monitor.inject("px_cursor", ("r1", 2, 4, 2))
        cluster.run_for(50)
        assert ("ballot-regression", "r1") in monitor.violations()

    def test_applied_regression(self):
        cluster, monitor = self._monitor()
        monitor.inject("px_cursor", ("r1", 5, 9, 1))
        cluster.run_for(50)
        monitor.inject("px_cursor", ("r1", 5, 2, 2))
        cluster.run_for(50)
        assert ("applied-regression", "r1") in monitor.violations()

    def test_monotonic_cursor_is_silent(self):
        cluster, monitor = self._monitor()
        monitor.inject("px_cursor", ("r1", 1, 1, 1))
        cluster.run_for(50)
        monitor.inject("px_cursor", ("r1", 3, 5, 2))
        cluster.run_for(50)
        assert monitor.violations() == []


class TestShardDisjointness:
    def _partitioned(self):
        cluster = Cluster(seed=3)
        m0 = cluster.add(partitioned_master("m0", 2, replication=1))
        m1 = cluster.add(partitioned_master("m1", 2, replication=1))
        m0.export_ownership = True
        m1.export_ownership = True
        for i in range(2):
            cluster.add(DataNode(f"dn{i}", masters=["m0", "m1"]))
        client = cluster.add(
            PartitionedFSClient("client", [["m0"], ["m1"]])
        )
        client.create("/a.txt")
        cluster.run_for(1000)
        monitor = cluster.enable_invariants(interval_ms=None)
        _round(cluster, 1)
        _round(cluster, 2)
        return cluster, monitor

    def test_disjoint_ownership_is_silent(self):
        _, monitor = self._partitioned()
        assert monitor.violations() == []

    def test_cross_scope_claim_detected(self):
        cluster, monitor = self._partitioned()
        # Forge a claim from the *other* shard's scope on a path the
        # owning shard already exports (at the forger's current round).
        monitor.inject("fs_owner", ("m0", "m0", "/a.txt", 2))
        cluster.run_for(50)
        assert ("shard-overlap", "/a.txt") in monitor.violations()


class TestStateExportLifecycle:
    def test_restart_rearms_state_export(self):
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=500)
        cluster.run_for(1200)
        crash_at = cluster.now
        cluster.crash("dn0")
        cluster.run_for(600)
        cluster.restart("dn0")
        cluster.run_for(1200)
        rounds = [
            clock
            for node, clock in monitor.runtime.rows("dn_round")
            if node == "dn0"
        ]
        assert any(clock > crash_at for clock in rounds), rounds

    def test_monitor_itself_exports_nothing(self):
        cluster = _fs_cluster()
        monitor = cluster.enable_invariants(interval_ms=None)
        shipped = cluster.publish_cluster_state(clock=1)
        assert shipped > 0
        assert monitor.publish_state(clock=1) == 0

    def test_enable_after_telemetry_without_packs_raises(self):
        cluster = Cluster(seed=0)
        cluster.enable_telemetry(interval_ms=None)
        with pytest.raises(RuntimeError, match="enable_invariants"):
            cluster.enable_invariants(interval_ms=None)


class TestAsyncInvariantMonitor:
    """Asyncio-backend regression: a crash/restart rebuilds the node's
    runtime, and the local InvariantMonitor must be re-attached so
    strict mode still records (and trips on) violations afterwards."""

    class _CheckedMaster(BoomFSMaster):
        def __init__(self, address: str):
            super().__init__(address, replication=1)
            self._program = with_invariants(
                self._program, boomfs_invariants_program()
            )
            self.monitor = InvariantMonitor(strict=True)
            self.runtime = self._make_runtime()

        def _make_runtime(self):
            runtime = super()._make_runtime()
            if hasattr(self, "monitor"):
                self.monitor.attach(runtime)
            return runtime

    def test_strict_monitor_survives_crash_restart(self):
        from repro.transport.asyncio_backend import AsyncCluster

        cluster = AsyncCluster(seed=1, time_scale=5)
        try:
            master = cluster.add(self._CheckedMaster("master"))
            cluster.run_for(300)
            cluster.crash("master")
            cluster.run_for(200)
            cluster.restart("master")
            cluster.run_for(300)
            assert master.monitor.ok
            # Corrupt the freshly rebuilt runtime: the re-attached
            # monitor must record the violation when inv_tick fires
            # (the strict raise itself dies inside the node's asyncio
            # task, so the recorded row is the observable contract).
            master.runtime.install("fqpath", [("/ghost", 999)])
            cluster.run_until(
                lambda: not master.monitor.ok, max_time_ms=8000
            )
            assert ("orphan-fqpath", "/ghost") in master.monitor.violations
        finally:
            cluster.shutdown()
