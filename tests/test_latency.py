"""Tests for the latency accounting layer: critical-path extraction,
the load driver, per-op latency telemetry, the SLO alert pack, and the
flight recorder (docs/OBSERVABILITY.md)."""

import json

from repro.boomfs.client import BoomFSClient
from repro.boomfs.datanode import DataNode
from repro.boomfs.master import BoomFSMaster
from repro.latency import (
    CATEGORIES,
    FlightRecorder,
    critical_path,
    latency_reports,
    render_category_summary,
)
from repro.metrics.trace import Tracer
from repro.sim import OverlogProcess
from repro.sim.cluster import Cluster
from repro.sim.network import LatencyModel
from repro.telemetry.export import trace_latency_rows
from repro.transport import AsyncCluster
from repro.workload import LoadDriver, run_driver

SCALE = 20.0


def _fs_cluster(seed=0, latency=(1, 3)):
    cluster = Cluster(seed=seed, latency=LatencyModel(*latency))
    cluster.add(BoomFSMaster("master", replication=2))
    for i in range(2):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
    client = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(700)
    return cluster, client


# -- critical-path extraction --------------------------------------------------


class TestCriticalPath:
    def test_single_op_fully_attributed(self):
        cluster, client = _fs_cluster()
        ref = client.start_trace("mkdir /a")
        client.mkdir("/a")
        report = critical_path(cluster.tracer, ref.trace_id)
        assert report is not None
        assert report.name == "mkdir /a"
        assert report.hops >= 2  # client -> master -> client
        assert report.total_ms > 0
        # The categories partition the trace's wall time exactly.
        assert sum(report.by_category.values()) == report.total_ms
        assert report.coverage >= 0.95
        # A metadata round trip crosses the wire both ways.
        assert report.by_category.get("network", 0) > 0

    def test_unknown_trace(self):
        cluster, _client = _fs_cluster()
        assert critical_path(cluster.tracer, "t999") is None
        assert cluster.latency_report("t999") == "(no such trace t999)"

    def test_compute_attributed_to_rules(self):
        # With a modelled CPU cost the master's busy window delays the
        # fixpoints of *concurrent* requests: those recv->step gaps are
        # compute time, and step annotations attribute them to the rules
        # that fired.  (An isolated request shows no compute gap — its
        # own cost only delays whatever runs next.)
        cluster = Cluster(seed=1, latency=LatencyModel(1, 2))
        cluster.add(
            BoomFSMaster(
                "master",
                replication=2,
                step_cost_ms=1,
                per_derivation_cost_us=500,
            )
        )
        for i in range(2):
            cluster.add(DataNode(f"dn{i}", masters=["master"]))
        cluster.run_for(700)
        driver = LoadDriver(
            "loadgen", masters=["master"], total_ops=100, window=8, seed=2
        )
        run_driver(cluster, driver)
        reports = [
            critical_path(cluster.tracer, r.trace_id)
            for r in driver.records
        ]
        total_compute = sum(
            r.by_category.get("compute", 0) for r in reports
        )
        assert total_compute > 0
        attributed = [r for r in reports if r.by_rule]
        assert attributed, "compute time should attribute to rules"
        for report in attributed:
            # Rule attribution covers the step-closed compute gaps; gaps
            # closed by sends carry no rule annotation, so <= holds.
            assert (
                sum(report.by_rule.values())
                <= report.by_category["compute"] + 1e-9
            )

    def test_timer_wait_classified(self):
        # Unit-level: a traced tuple consumed by a timer-woken step is
        # timer wait, not compute.
        now = [0]
        tracer = Tracer(clock=lambda: now[0])
        ref = tracer.start_trace("op", node="n")
        now[0] = 40
        tracer.annotate(
            (ref,), "step", node="n", derivations=1, timer=True
        )
        report = critical_path(tracer, ref.trace_id)
        assert report.by_category.get("timer", 0) == 40
        assert report.coverage == 1.0

    def test_renderers(self):
        cluster, client = _fs_cluster()
        ref = client.start_trace("mkdir /a")
        client.mkdir("/a")
        text = cluster.latency_report(ref.trace_id)
        assert "critical path of" in text and "by category:" in text
        payload = json.loads(cluster.latency_report(ref.trace_id, fmt="json"))
        assert set(payload["by_category"]) == set(CATEGORIES)
        assert payload["total_ms"] == payload["end_ms"] - payload["begin_ms"]
        report = cluster.latency_report(ref.trace_id, fmt="report")
        assert report.to_dict() == payload
        # why_slow is the master-side door to the same report.
        assert cluster.get("master").why_slow(ref.trace_id) == text

    def test_category_summary(self):
        cluster, client = _fs_cluster()
        for path in ("/a", "/b"):
            client.start_trace(f"mkdir {path}")
            client.mkdir(path)
        reports = latency_reports(cluster.tracer)
        assert len(reports) == 2
        summary = render_category_summary(reports)
        assert "2 trace(s)" in summary
        assert render_category_summary([]) == "(no traces)"


# -- load driver ---------------------------------------------------------------


class TestLoadDriver:
    def test_thousand_ops_sim_with_tail_attribution(self):
        # Acceptance: >=1000 mixed metadata ops on the simulator; the
        # slowest decile's critical paths attribute >=95% of wall time.
        cluster, _client = _fs_cluster(seed=11)
        driver = LoadDriver(
            "loadgen", masters=["master"], total_ops=1000, window=8, seed=5
        )
        run_driver(cluster, driver)
        assert driver.done and len(driver.records) == 1000
        report = driver.percentile_report()
        assert report["all"]["count"] == 1000
        assert {"mkdir", "create", "exists", "ls"} <= set(report)
        assert (
            report["all"]["p50"]
            <= report["all"]["p99"]
            <= report["all"]["p999"]
            <= report["all"]["max"]
        )
        slow = driver.slowest(0.1)
        assert len(slow) == 100
        for record in slow:
            assert record.trace_id is not None
            path = critical_path(cluster.tracer, record.trace_id)
            assert path is not None
            assert path.coverage >= 0.95, (
                f"{record.op} {record.path}: only {path.coverage:.2%} "
                f"of {path.total_ms} ms attributed"
            )
        rendered = driver.render_report()
        assert "p999" in rendered and "latency CDFs" in rendered

    def test_thousand_ops_async_backend(self):
        # The same driver instance type runs unmodified on asyncio.
        with AsyncCluster(time_scale=SCALE) as cluster:
            cluster.add(BoomFSMaster("master", replication=2))
            for i in range(2):
                cluster.add(DataNode(f"dn{i}", masters=["master"]))
            cluster.run_for(700)
            driver = LoadDriver(
                "loadgen",
                masters=["master"],
                total_ops=1000,
                window=16,
                seed=3,
                trace=False,  # keep the hot async path lean
            )
            run_driver(cluster, driver, max_time_ms=600_000)
            assert driver.done and len(driver.records) == 1000
            report = driver.percentile_report()
            assert report["all"]["count"] == 1000
            assert report["all"]["errors"] <= 20

    def test_open_loop_paces_arrivals(self):
        cluster, _client = _fs_cluster(seed=2)
        t0 = cluster.now
        driver = LoadDriver(
            "loadgen",
            masters=["master"],
            total_ops=20,
            arrival_ms=10,
            seed=1,
        )
        run_driver(cluster, driver)
        # Open loop: the 20th op cannot be issued before 19 inter-arrival
        # gaps have elapsed.
        assert max(r.start_ms for r in driver.records) >= t0 + 19 * 10
        assert len(driver.records) == 20

    def test_seeded_mix_is_reproducible(self):
        ops1 = []
        ops2 = []
        for ops in (ops1, ops2):
            cluster, _client = _fs_cluster(seed=4)
            driver = LoadDriver(
                "loadgen", masters=["master"], total_ops=60, seed=9
            )
            run_driver(cluster, driver)
            ops.extend((r.op, r.path) for r in driver.records)
        assert ops1 == ops2


# -- per-op latency telemetry and the SLO alert pack ---------------------------


class TestPerOpLatencyTelemetry:
    def _traced(self):
        now = [0]
        tracer = Tracer(clock=lambda: now[0])
        for name, latency in (
            ("mkdir /a", 5),
            ("mkdir /b", 7),
            ("ls /", 2),
        ):
            ref = tracer.start_trace(name, node="c")
            now[0] += latency
            tracer.annotate((ref,), "step", node="c", derivations=1)
            # next trace starts where this ended
        return tracer

    def test_default_stays_single_row(self):
        (row,) = trace_latency_rows(self._traced(), clock=5)
        assert row[1] == "request.latency_ms"

    def test_per_op_rows(self):
        rows = trace_latency_rows(self._traced(), clock=5, per_op=True)
        metrics = [r[1] for r in rows]
        assert metrics == [
            "request.latency_ms",
            "request.latency_ms.ls",
            "request.latency_ms.mkdir",
        ]

    def test_slo_burn_alarm_fires_and_dumps(self):
        cluster, client = _fs_cluster(seed=6)
        recorder = cluster.enable_flight_recorder(dump_on=("alarm",))
        monitor = cluster.enable_telemetry(
            interval_ms=None, per_op_latency=True
        )
        monitor.set_slo("request.latency_ms.mkdir", 0.5)
        cluster.run_for(50)
        client.start_trace("mkdir /slow")
        client.mkdir("/slow")  # takes >= 1 virtual ms round trip
        cluster.publish_cluster_telemetry(clock=1)
        cluster.run_for(200)
        alarms = monitor.alarms()
        assert any(
            name == "p99-slo-burn" and subject == "request.latency_ms.mkdir"
            for name, subject, _detail in alarms
        )
        assert recorder.dumps
        reason, node, _path, text = recorder.dumps[0]
        assert reason == "alarm:p99-slo-burn"
        assert node == "monitor"
        assert '"kind":"alarm"' in text

    def test_slo_within_limit_stays_quiet(self):
        cluster, client = _fs_cluster(seed=6)
        monitor = cluster.enable_telemetry(
            interval_ms=None, per_op_latency=True
        )
        monitor.set_slo("request.latency_ms.mkdir", 10_000.0)
        client.start_trace("mkdir /fast")
        client.mkdir("/fast")
        cluster.publish_cluster_telemetry(clock=1)
        cluster.run_for(200)
        assert not any(
            name == "p99-slo-burn" for name, *_rest in monitor.alarms()
        )


# -- flight recorder -----------------------------------------------------------


class TestFlightRecorder:
    def _crash_campaign(self, tmp_path, run_dir):
        cluster, client = _fs_cluster(seed=8)
        recorder = cluster.enable_flight_recorder(
            capacity=64, directory=tmp_path / run_dir
        )
        for path in ("/a", "/b"):
            client.start_trace(f"mkdir {path}")
            client.mkdir(path)
        cluster.crash("dn0")
        cluster.run_for(100)
        cluster.crash("dn1")
        cluster.run_for(100)
        return recorder

    def test_crash_dump_byte_deterministic(self, tmp_path):
        first = self._crash_campaign(tmp_path, "run1")
        second = self._crash_campaign(tmp_path, "run2")
        assert len(first.dumps) == len(second.dumps) == 2
        for (r1, n1, p1, t1), (r2, n2, p2, t2) in zip(
            first.dumps, second.dumps
        ):
            assert (r1, n1) == (r2, n2) == ("crash", n1)
            assert t1 == t2  # byte-identical post-mortems
            assert (tmp_path / "run1").exists()
            assert open(p1).read() == open(p2).read()

    def test_dump_contents(self, tmp_path):
        recorder = self._crash_campaign(tmp_path, "run")
        lines = recorder.dumps[0][3].splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "flight_dump"
        assert header["reason"] == "crash"
        assert header["node"] == "dn0"
        entries = [json.loads(line) for line in lines[1:]]
        kinds = {e["kind"] for e in entries}
        # Envelope lifecycle, span events and the crash marker all land.
        assert {"env_out", "env_in", "crash"} <= kinds
        assert any(k.startswith("trace_") for k in kinds)
        seqs = [e["seq"] for e in entries]
        assert seqs == sorted(seqs)
        for entry in entries:
            if entry["kind"] in ("env_out", "env_in"):
                assert entry["deltas"] >= 1 and entry["bytes"] > 0
                assert len(entry["rows"]) <= 4

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=10)
        for i in range(100):
            recorder.record("n1", "tick", i=i)
        entries = recorder.snapshot("n1")
        assert len(entries) == 10
        assert entries[0]["i"] == 90  # oldest evicted

    def test_standalone_dump_without_directory(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("n1", "x")
        text = recorder.dump("manual")
        assert recorder.dumps[0][2] is None  # no file written
        assert json.loads(text.splitlines()[0])["reason"] == "manual"


# -- crash/restart survival on the asyncio backend (satellite) -----------------


class TestAsyncCrashRestartObservability:
    def test_trace_context_survives_master_restart(self):
        with AsyncCluster(time_scale=SCALE) as cluster:
            cluster.add(BoomFSMaster("master", replication=1))
            cluster.add(DataNode("dn0", masters=["master"]))
            client = cluster.add(
                BoomFSClient(
                    "client", masters=["master"], rpc_timeout_ms=200
                )
            )
            cluster.run_for(700)
            client.start_trace("mkdir /a")
            client.mkdir("/a")
            cluster.crash("master")
            cluster.run_for(100)
            cluster.restart("master")
            cluster.run_for(700)  # DN re-registers via heartbeat
            # A new trace through the restarted master still stitches a
            # cross-node span tree on the same cluster-wide tracer.
            ref = client.start_trace("mkdir /b")
            client.mkdir("/b")
            nodes = cluster.tracer.nodes_crossed(ref.trace_id)
            assert {"client", "master"} <= nodes
            report = critical_path(cluster.tracer, ref.trace_id)
            assert report is not None and report.coverage >= 0.9

    def test_telemetry_loop_survives_restart(self):
        with AsyncCluster(time_scale=SCALE) as cluster:
            cluster.add(BoomFSMaster("master", replication=1))
            monitor = cluster.enable_telemetry(interval_ms=200)
            cluster.run_for(600)
            assert any(
                node == "master" for node, *_rest in monitor.samples()
            )
            cluster.crash("master")
            cluster.run_for(400)
            high_water = max(
                clock
                for node, *_rest, clock in monitor.samples()
                if node == "master"
            )
            cluster.restart("master")
            cluster.run_for(1200)
            latest = max(
                clock
                for node, *_rest, clock in monitor.samples()
                if node == "master"
            )
            assert latest > high_water  # export loop re-armed

    def test_flight_recorder_on_async_crash(self):
        with AsyncCluster(time_scale=SCALE) as cluster:
            recorder = cluster.enable_flight_recorder(dump_on=("crash",))
            node = cluster.add(
                OverlogProcess(
                    "n1",
                    """
                    program kv;
                    define(store, keys(0), {Str, Int});
                    event(put, 2);
                    store(K, V) :- put(K, V);
                    """,
                )
            )
            node.inject("put", ("a", 1))
            cluster.run_until(
                lambda: node.runtime.rows("store") == [("a", 1)],
                max_time_ms=2000,
            )
            cluster.crash("n1")
            assert len(recorder.dumps) == 1
            assert recorder.dumps[0][0] == "crash"
