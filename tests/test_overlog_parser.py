"""Unit tests for the Overlog parser."""

import pytest

from repro.overlog import (
    AggSpec,
    Assign,
    BinOp,
    Cond,
    Const,
    FuncCall,
    NotIn,
    ParseError,
    UnOp,
    Var,
    parse,
    parse_with_watches,
)


def parse_one_rule(rule_src, decls=""):
    prog = parse(f"program t;\n{decls}\n{rule_src}")
    assert len(prog.rules) == 1
    return prog.rules[0]


class TestDeclarations:
    def test_table_decl(self):
        prog = parse("program t; define(file, keys(0, 1), {Int, Str, Bool});")
        (decl,) = prog.tables()
        assert decl.name == "file"
        assert decl.keys == (0, 1)
        assert decl.types == ("Int", "Str", "Bool")
        assert decl.arity == 3

    def test_table_decl_no_keys(self):
        prog = parse("program t; define(log, keys(), {Str});")
        assert prog.tables()[0].keys == ()

    def test_event_decl(self):
        prog = parse("program t; event(request, 4);")
        (decl,) = prog.events()
        assert decl.name == "request"
        assert decl.arity == 4

    def test_timer_decl(self):
        prog = parse("program t; timer(hb, 3000);")
        (decl,) = prog.timers()
        assert decl.period_ms == 3000

    def test_watch(self):
        prog, watches = parse_with_watches(
            "program t; define(x, keys(0), {Int}); watch(x);"
        )
        assert watches == ["x"]

    def test_program_name(self):
        assert parse("program boomfs;").name == "boomfs"


class TestRules:
    def test_named_rule(self):
        rule = parse_one_rule("r1 a(X) :- b(X);")
        assert rule.name == "r1"
        assert rule.head.name == "a"

    def test_unnamed_rule_gets_generated_name(self):
        rule = parse_one_rule("a(X) :- b(X);")
        assert rule.name == "t_r1"

    def test_delete_rule(self):
        rule = parse_one_rule("gc delete a(X) :- b(X);")
        assert rule.delete
        assert rule.name == "gc"

    def test_unnamed_delete_rule(self):
        rule = parse_one_rule("delete a(X) :- b(X);")
        assert rule.delete

    def test_location_specifier_in_head(self):
        rule = parse_one_rule("a(@X, Y) :- b(X, Y);")
        assert rule.head.loc == 0

    def test_location_specifier_mid_args(self):
        rule = parse_one_rule("a(Y, @X) :- b(X, Y);")
        assert rule.head.loc == 1

    def test_two_location_specifiers_rejected(self):
        with pytest.raises(ParseError):
            parse("program t; a(@X, @Y) :- b(X, Y);")

    def test_negation(self):
        rule = parse_one_rule("a(X) :- b(X), notin c(X, _);")
        neg = [e for e in rule.body if isinstance(e, NotIn)]
        assert len(neg) == 1
        assert neg[0].atom.name == "c"

    def test_assignment(self):
        rule = parse_one_rule('a(X, P) :- b(X), P := f_concat_path("/", X);')
        assigns = [e for e in rule.body if isinstance(e, Assign)]
        assert assigns[0].var == Var("P")
        assert isinstance(assigns[0].expr, FuncCall)

    def test_condition(self):
        rule = parse_one_rule("a(X) :- b(X), X > 10;")
        conds = [e for e in rule.body if isinstance(e, Cond)]
        assert len(conds) == 1

    def test_function_call_condition_not_atom(self):
        rule = parse_one_rule('a(X) :- b(X), f_match("x.*", X);')
        conds = [e for e in rule.body if isinstance(e, Cond)]
        assert len(conds) == 1
        assert isinstance(conds[0].expr, FuncCall)

    def test_aggregate_head(self):
        rule = parse_one_rule("cnt(A, count<C>) :- hb(A, C);")
        assert rule.is_aggregate
        spec = rule.head.args[1]
        assert isinstance(spec, AggSpec)
        assert spec.func == "count"
        assert spec.var == Var("C")

    def test_count_star(self):
        rule = parse_one_rule("cnt(A, count<*>) :- hb(A, C);")
        spec = rule.head.args[1]
        assert spec.var.is_wildcard

    def test_all_aggregate_functions(self):
        for func in ("count", "sum", "min", "max", "avg"):
            rule = parse_one_rule(f"agg(K, {func}<V>) :- src(K, V);")
            assert rule.head.args[1].func == func

    def test_aggregate_not_allowed_in_body(self):
        # In a body, `count < X` should parse as a comparison... but `count`
        # is a bare lowercase identifier, which is invalid in an expression.
        with pytest.raises(ParseError):
            parse("program t; a(X) :- b(X), count < 3;")

    def test_zero_arity_atom(self):
        rule = parse_one_rule("tick() :- ping();")
        assert rule.head.arity == 0


class TestExpressions:
    def expr_of(self, src):
        rule = parse_one_rule(f"a(X) :- b(X), Y := {src};")
        return [e for e in rule.body if isinstance(e, Assign)][0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr_of("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parenthesized(self):
        e = self.expr_of("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_comparison_binds_looser_than_arith(self):
        e = self.expr_of("X + 1 > 2 * 3")
        assert e.op == ">"

    def test_boolean_ops(self):
        e = self.expr_of("X > 1 && X < 5 || X == 0")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary_minus(self):
        e = self.expr_of("-X")
        assert isinstance(e, UnOp) and e.op == "-"

    def test_not(self):
        e = self.expr_of("!X")
        assert isinstance(e, UnOp) and e.op == "!"

    def test_literals(self):
        assert self.expr_of("42") == Const(42)
        assert self.expr_of("2.5") == Const(2.5)
        assert self.expr_of('"hi"') == Const("hi")
        assert self.expr_of("true") == Const(True)
        assert self.expr_of("false") == Const(False)
        assert self.expr_of("nil") == Const(None)

    def test_nested_function_calls(self):
        e = self.expr_of("f_max(f_size(X), 3)")
        assert isinstance(e, FuncCall)
        assert isinstance(e.args[0], FuncCall)

    def test_zero_arg_function(self):
        e = self.expr_of("f_now()")
        assert e == FuncCall("f_now", ())


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("program t; a(X) :- b(X)")

    def test_missing_program_header(self):
        with pytest.raises(ParseError):
            parse("a(X) :- b(X);")

    def test_garbage(self):
        from repro.overlog import OverlogError

        with pytest.raises(OverlogError):
            parse("program t; ???")


class TestRoundTrip:
    def test_program_str_reparses(self):
        src = """
        program demo;
        define(file, keys(0), {Int, Str});
        event(req, 2);
        timer(hb, 1000);
        r1 file(I, N) :- req(I, N), notin file(I, _);
        r2 resp(@C, I, count<N>) :- req(I, C), file(I, N), I > 0;
        gc delete file(I, N) :- req(I, N);
        """
        prog = parse(src)
        reparsed = parse(str(prog))
        assert reparsed.decls == prog.decls
        assert [r.head for r in reparsed.rules] == [r.head for r in prog.rules]
        assert [r.body for r in reparsed.rules] == [r.body for r in prog.rules]
        assert [r.delete for r in reparsed.rules] == [r.delete for r in prog.rules]
