"""Unit tests for Overlog evaluation: joins, negation, aggregation,
primary-key updates, deletion rules, network heads, and fixpoints."""

import pytest

from repro.overlog import (
    CatalogError,
    EvaluationError,
    OverlogRuntime,
    StratificationError,
)


def make(src, address="me", **kw):
    return OverlogRuntime("program t;\n" + src, address=address, **kw)


class TestBasicDerivation:
    def test_copy_rule(self):
        rt = make(
            """
            define(a, keys(0), {Int});
            define(b, keys(0), {Int});
            b(X) :- a(X);
            """
        )
        rt.insert("a", (1,))
        rt.insert("a", (2,))
        rt.tick()
        assert sorted(rt.rows("b")) == [(1,), (2,)]

    def test_join(self):
        rt = make(
            """
            define(emp, keys(0), {Str, Str});
            define(dept, keys(0), {Str, Str});
            define(loc, keys(0), {Str, Str});
            loc(E, City) :- emp(E, D), dept(D, City);
            """
        )
        rt.install("emp", [("alice", "eng"), ("bob", "sales")])
        rt.install("dept", [("eng", "sf"), ("sales", "nyc")])
        rt.insert("emp", ("carol", "eng"))
        rt.tick()
        assert sorted(rt.rows("loc")) == [
            ("alice", "sf"),
            ("bob", "nyc"),
            ("carol", "sf"),
        ]

    def test_transitive_closure(self):
        rt = make(
            """
            define(link, keys(0, 1), {Str, Str});
            define(path, keys(0, 1), {Str, Str});
            path(X, Y) :- link(X, Y);
            path(X, Z) :- link(X, Y), path(Y, Z);
            """
        )
        rt.insert_many("link", [(chr(97 + i), chr(98 + i)) for i in range(5)])
        rt.tick()
        assert len(rt.rows("path")) == 15  # 5+4+3+2+1

    def test_self_join_with_repeated_variable(self):
        rt = make(
            """
            define(edge, keys(0, 1), {Str, Str});
            define(loopy, keys(0), {Str});
            loopy(X) :- edge(X, X);
            """
        )
        rt.install("edge", [("a", "a"), ("a", "b")])
        rt.insert("edge", ("b", "b"))
        rt.tick()
        assert sorted(rt.rows("loopy")) == [("a",), ("b",)]

    def test_constant_in_body_atom_filters(self):
        rt = make(
            """
            define(req, keys(0), {Int, Str});
            define(reads, keys(0), {Int});
            reads(I) :- req(I, "read");
            """
        )
        rt.insert_many("req", [(1, "read"), (2, "write"), (3, "read")])
        rt.tick()
        assert sorted(rt.rows("reads")) == [(1,), (3,)]

    def test_wildcards_do_not_bind(self):
        rt = make(
            """
            define(t3, keys(0), {Int, Int, Int});
            define(firsts, keys(0), {Int});
            firsts(X) :- t3(X, _, _);
            """
        )
        rt.insert_many("t3", [(1, 2, 3), (4, 5, 6)])
        rt.tick()
        assert sorted(rt.rows("firsts")) == [(1,), (4,)]


class TestAssignAndCond:
    def test_assignment_binds(self):
        rt = make(
            """
            define(n, keys(0), {Int});
            define(sq, keys(0, 1), {Int, Int});
            sq(X, Y) :- n(X), Y := X * X;
            """
        )
        rt.insert_many("n", [(2,), (3,)])
        rt.tick()
        assert sorted(rt.rows("sq")) == [(2, 4), (3, 9)]

    def test_assignment_to_bound_var_acts_as_filter(self):
        rt = make(
            """
            define(pair, keys(0, 1), {Int, Int});
            define(dbl, keys(0), {Int});
            dbl(X) :- pair(X, Y), Y := X * 2;
            """
        )
        rt.insert_many("pair", [(1, 2), (2, 5), (3, 6)])
        rt.tick()
        assert sorted(rt.rows("dbl")) == [(1,), (3,)]

    def test_condition_filters(self):
        rt = make(
            """
            define(n, keys(0), {Int});
            define(big, keys(0), {Int});
            big(X) :- n(X), X >= 10;
            """
        )
        rt.insert_many("n", [(5,), (10,), (15,)])
        rt.tick()
        assert sorted(rt.rows("big")) == [(10,), (15,)]

    def test_integer_division(self):
        rt = make(
            """
            define(n, keys(0), {Int});
            define(half, keys(0, 1), {Int, Int});
            half(X, Y) :- n(X), Y := X / 2;
            """
        )
        rt.insert("n", (7,))
        rt.tick()
        assert rt.rows("half") == [(7, 3)]

    def test_function_call(self):
        rt = make(
            """
            define(seg, keys(0, 1), {Str, Str});
            define(full, keys(0), {Str});
            full(P) :- seg(D, N), P := f_concat_path(D, N);
            """
        )
        rt.insert("seg", ("/a", "b"))
        rt.tick()
        assert rt.rows("full") == [("/a/b",)]

    def test_unbound_variable_in_head_raises(self):
        rt = make(
            """
            define(a, keys(0), {Int});
            define(b, keys(0, 1), {Int, Int});
            b(X, Y) :- a(X);
            """
        )
        rt.insert("a", (1,))
        with pytest.raises(EvaluationError, match="unbound"):
            rt.tick()


class TestNegation:
    def test_notin_filters(self):
        rt = make(
            """
            define(all, keys(0), {Int});
            define(banned, keys(0), {Int});
            define(ok, keys(0), {Int});
            ok(X) :- all(X), notin banned(X);
            """
        )
        rt.install("banned", [(2,)])
        rt.insert_many("all", [(1,), (2,), (3,)])
        rt.tick()
        assert sorted(rt.rows("ok")) == [(1,), (3,)]

    def test_notin_with_wildcard(self):
        rt = make(
            """
            define(chunk, keys(0), {Int});
            define(stored, keys(0, 1), {Str, Int});
            define(missing, keys(0), {Int});
            missing(C) :- chunk(C), notin stored(_, C);
            """
        )
        rt.install("chunk", [(1,), (2,)])
        rt.install("stored", [("dn1", 1)])
        rt.insert("chunk", (3,))
        rt.tick()
        assert sorted(rt.rows("missing")) == [(2,), (3,)]

    def test_unstratifiable_rejected(self):
        with pytest.raises(StratificationError):
            make(
                """
                define(p, keys(0), {Int});
                define(q, keys(0), {Int});
                p(X) :- q(X), notin p(X);
                """
            )

    def test_negation_sees_same_step_insertions(self):
        # `derived` is computed in a lower stratum than `report`, so the
        # negation sees tuples derived earlier in this same timestep.
        rt = make(
            """
            define(src, keys(0), {Int});
            define(derived, keys(0), {Int});
            define(report, keys(0), {Int});
            derived(X) :- src(X), X > 1;
            report(X) :- src(X), notin derived(X);
            """
        )
        rt.insert_many("src", [(1,), (2,)])
        rt.tick()
        assert rt.rows("report") == [(1,)]


class TestAggregation:
    def test_count_groups(self):
        rt = make(
            """
            define(hb, keys(0, 1), {Str, Int});
            define(cnt, keys(0), {Str, Int});
            cnt(A, count<C>) :- hb(A, C);
            """
        )
        rt.insert_many("hb", [("dn1", 1), ("dn1", 2), ("dn2", 3)])
        rt.tick()
        assert sorted(rt.rows("cnt")) == [("dn1", 2), ("dn2", 1)]

    def test_min_max_sum_avg(self):
        rt = make(
            """
            define(v, keys(0, 1), {Str, Int});
            define(stats, keys(0), {Str, Int, Int, Int, Float});
            stats(K, min<X>, max<X>, sum<X>, avg<X>) :- v(K, X);
            """
        )
        rt.insert_many("v", [("a", 1), ("a", 2), ("a", 3)])
        rt.tick()
        assert rt.rows("stats") == [("a", 1, 3, 6, 2.0)]

    def test_count_star(self):
        rt = make(
            """
            define(pair, keys(0, 1), {Str, Int});
            define(total, keys(0), {Str, Int});
            total(K, count<*>) :- pair(K, V);
            """
        )
        rt.insert_many("pair", [("x", 1), ("x", 2), ("y", 9)])
        rt.tick()
        assert sorted(rt.rows("total")) == [("x", 2), ("y", 1)]

    def test_count_distinct_values(self):
        # Two rows project onto the same aggregated value: count is distinct.
        rt = make(
            """
            define(t, keys(0, 1), {Str, Str, Int});
            define(c, keys(0), {Str, Int});
            c(K, count<V>) :- t(K, _, V);
            """
        )
        rt.insert_many("t", [("k", "a", 7), ("k", "b", 7)])
        rt.tick()
        assert rt.rows("c") == [("k", 1)]

    def test_aggregate_feeds_downstream_rule(self):
        rt = make(
            """
            define(hb, keys(0, 1), {Str, Int});
            define(cnt, keys(0), {Str, Int});
            define(overloaded, keys(0), {Str});
            cnt(A, count<C>) :- hb(A, C);
            overloaded(A) :- cnt(A, N), N >= 2;
            """
        )
        rt.insert_many("hb", [("dn1", 1), ("dn1", 2), ("dn2", 3)])
        rt.tick()
        assert rt.rows("overloaded") == [("dn1",)]

    def test_aggregate_over_empty_produces_nothing(self):
        rt = make(
            """
            define(v, keys(0, 1), {Str, Int});
            define(c, keys(0), {Str, Int});
            define(other, keys(0), {Int});
            c(K, count<X>) :- v(K, X);
            other(1) :- c(_, _);
            """
        )
        rt.tick()
        assert rt.rows("c") == []
        assert rt.rows("other") == []

    def test_aggregation_in_recursion_rejected(self):
        with pytest.raises(StratificationError):
            make(
                """
                define(p, keys(0), {Int});
                p(count<X>) :- p(X);
                """
            )

    def test_global_aggregate_no_group(self):
        rt = make(
            """
            define(v, keys(0), {Int});
            define(total, keys(), {Int});
            total(sum<X>) :- v(X);
            """
        )
        rt.insert_many("v", [(1,), (2,), (3,)])
        rt.tick()
        assert rt.rows("total") == [(6,)]


class TestPrimaryKeyUpdates:
    def test_insert_replaces_on_key_collision(self):
        rt = make("define(kv, keys(0), {Str, Int});")
        rt.insert("kv", ("a", 1))
        rt.tick()
        rt.insert("kv", ("a", 2))
        rt.tick()
        assert rt.rows("kv") == [("a", 2)]

    def test_replacement_during_fixpoint(self):
        rt = make(
            """
            define(raw, keys(0), {Str, Int});
            define(best, keys(0), {Str, Int});
            best(K, V) :- raw(K, V);
            """
        )
        # Both raw rows share the `best` key "a"; the table must end up with
        # exactly one of them (last writer wins within the fixpoint).
        rt.insert_many("raw", [("a", 1)])
        rt.tick()
        assert rt.rows("best") == [("a", 1)]
        rt.insert("raw", ("a", 5))
        rt.tick()
        assert rt.rows("best") == [("a", 5)]


class TestDeleteRules:
    def test_delete_rule(self):
        rt = make(
            """
            define(file, keys(0), {Int, Str});
            event(rm, 1);
            del delete file(I, N) :- rm(I), file(I, N);
            """
        )
        rt.install("file", [(1, "a"), (2, "b")])
        rt.insert("rm", (1,))
        result = rt.tick()
        assert rt.rows("file") == [(2, "b")]
        assert ("file", (1, "a")) in result.deletions

    def test_delete_applied_after_fixpoint(self):
        # The same step both reads the row (deriving `saw`) and deletes it.
        rt = make(
            """
            define(file, keys(0), {Int});
            define(saw, keys(0), {Int});
            event(rm, 1);
            saw(I) :- rm(I), file(I);
            del delete file(I) :- rm(I), file(I);
            """
        )
        rt.install("file", [(1,)])
        rt.insert("rm", (1,))
        rt.tick()
        assert rt.rows("saw") == [(1,)]
        assert rt.rows("file") == []

    def test_delete_of_absent_row_is_noop(self):
        rt = make(
            """
            define(file, keys(0), {Int});
            event(rm, 1);
            del delete file(I) :- rm(I);
            """
        )
        rt.insert("rm", (99,))
        result = rt.tick()
        assert result.deletions == []

    def test_delete_head_must_be_table(self):
        with pytest.raises(CatalogError):
            make(
                """
                event(e, 1);
                event(rm, 1);
                del delete e(I) :- rm(I);
                """
            )


class TestEventsAndNetwork:
    def test_events_do_not_persist(self):
        rt = make(
            """
            event(ping, 1);
            define(log, keys(0), {Int});
            log(X) :- ping(X);
            """
        )
        rt.insert("ping", (1,))
        rt.tick()
        rt.tick()
        assert rt.rows("log") == [(1,)]

    def test_derived_event_triggers_rules_same_step(self):
        rt = make(
            """
            event(a, 1);
            event(b, 1);
            define(out, keys(0), {Int});
            b(X) :- a(X);
            out(X) :- b(X);
            """
        )
        rt.insert("a", (7,))
        rt.tick()
        assert rt.rows("out") == [(7,)]

    def test_remote_head_becomes_send(self):
        rt = make(
            """
            event(req, 2);
            event(resp, 2);
            resp(@C, X) :- req(C, X);
            """,
            address="server",
        )
        rt.insert("req", ("client9", 42))
        result = rt.tick()
        assert result.sends == [("client9", "resp", ("client9", 42))]

    def test_local_address_head_stays_local(self):
        rt = make(
            """
            event(req, 2);
            define(local_log, keys(0, 1), {Str, Int});
            local_log(@C, X) :- req(C, X);
            """,
            address="server",
        )
        rt.insert("req", ("server", 1))
        result = rt.tick()
        assert result.sends == []
        assert rt.rows("local_log") == [("server", 1)]

    def test_sends_are_deduplicated(self):
        rt = make(
            """
            define(src, keys(0, 1), {Str, Int});
            event(out, 2);
            out(@D, X) :- src(D, X);
            """,
            address="server",
        )
        rt.insert_many("src", [("d1", 1), ("d1", 1)])
        result = rt.tick()
        assert result.sends == [("d1", "out", ("d1", 1))]


class TestTimers:
    def test_timer_fires_when_due(self):
        rt = make(
            """
            timer(hb, 100);
            define(beats, keys(0), {Int, Int});
            beats(N, T) :- hb(N, T);
            """
        )
        rt.tick(now=50)
        assert rt.rows("beats") == []
        rt.tick(now=100)
        assert rt.rows("beats") == [(1, 100)]
        rt.tick(now=350)  # catches up: fires 2 and 3
        assert len(rt.rows("beats")) == 3

    def test_next_timer_fire(self):
        rt = make("timer(hb, 100);")
        assert rt.next_timer_fire() == 100
        rt.tick(now=100)
        assert rt.next_timer_fire() == 200

    def test_clock_cannot_go_backwards(self):
        rt = make("define(x, keys(0), {Int});")
        rt.tick(now=10)
        with pytest.raises(ValueError):
            rt.tick(now=5)


class TestStatefulFunctions:
    def test_f_now(self):
        rt = make(
            """
            event(ping, 1);
            define(log, keys(0, 1), {Int, Int});
            log(X, T) :- ping(X), T := f_now();
            """
        )
        rt.insert("ping", (1,))
        rt.tick(now=777)
        assert rt.rows("log") == [(1, 777)]

    def test_f_newid_monotone(self):
        rt = make(
            """
            event(mk, 1);
            define(ids, keys(0), {Int, Int});
            ids(X, I) :- mk(X), I := f_newid();
            """
        )
        rt.insert_many("mk", [(1,), (2,)])
        rt.tick()
        ids = [i for _, i in rt.rows("ids")]
        assert len(set(ids)) == 2

    def test_f_rand_deterministic_under_seed(self):
        def draw(seed):
            rt = make(
                """
                event(go, 1);
                define(out, keys(0), {Int, Float});
                out(X, R) :- go(X), R := f_rand();
                """,
                seed=seed,
            )
            rt.insert("go", (1,))
            rt.tick()
            return rt.rows("out")[0][1]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)

    def test_f_localaddr(self):
        rt = make(
            """
            event(go, 1);
            define(me, keys(0), {Str});
            me(A) :- go(_), A := f_localaddr();
            """,
            address="node3",
        )
        rt.insert("go", (1,))
        rt.tick()
        assert rt.rows("me") == [("node3",)]


class TestValidation:
    def test_undeclared_relation_rejected(self):
        with pytest.raises(CatalogError):
            make("define(a, keys(0), {Int}); a(X) :- nothere(X);")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            make("define(a, keys(0), {Int}); a(X, Y) :- a(X), a(Y);")

    def test_type_check_on_insert(self):
        rt = make("define(a, keys(0), {Int});")
        rt.insert("a", ("not an int",))
        with pytest.raises(CatalogError):
            rt.tick()

    def test_cannot_derive_timer(self):
        with pytest.raises(CatalogError):
            make(
                """
                timer(hb, 100);
                define(x, keys(0), {Int});
                hb(N, T) :- x(N), T := 0;
                """
            )


class TestWatchers:
    def test_watcher_sees_new_tuples(self):
        rt = make(
            """
            define(a, keys(0), {Int});
            define(b, keys(0), {Int});
            b(X) :- a(X);
            """
        )
        seen = []
        rt.watch("b", seen.append)
        rt.insert("a", (1,))
        rt.tick()
        assert seen == [(1,)]
        rt.insert("a", (1,))  # duplicate: no new derivation
        rt.tick()
        assert seen == [(1,)]

    def test_watch_undeclared_relation_rejected(self):
        rt = make("define(a, keys(0), {Int});")
        with pytest.raises(CatalogError):
            rt.watch("zzz", lambda row: None)


class TestDeterminism:
    def test_same_seed_same_results(self):
        src = """
        define(link, keys(0, 1), {Str, Str});
        define(path, keys(0, 1), {Str, Str});
        define(cnt, keys(), {Int});
        path(X, Y) :- link(X, Y);
        path(X, Z) :- link(X, Y), path(Y, Z);
        cnt(count<*>) :- path(X, Y);
        """
        runs = []
        for _ in range(2):
            rt = make(src, seed=3)
            rt.insert_many(
                "link", [(f"n{i}", f"n{i+1}") for i in range(8)]
            )
            rt.tick()
            runs.append((sorted(rt.rows("path")), rt.rows("cnt")))
        assert runs[0] == runs[1]
        assert runs[0][1] == [(36,)]
