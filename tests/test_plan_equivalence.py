"""Differential testing of the compiled-plan evaluator.

Every seed generates a random Overlog program (multi-way joins, negation,
aggregates, deletion rules, deferred ``@next`` rules, ``@``-located heads,
wildcards, assignments, conditions) plus a random multi-timestep workload,
then runs it under five evaluator configurations:

* **compiled** — the default tier: cached plans lowered to generated
  Python source (``compile_mode="source"``, repro.overlog.codegen),
* **closure** — ``compile_mode="closure"``: the step-pipeline tier the
  source emitter was derived from,
* **interpreted** — ``compile_plans=False``: the AST-walking semi-naive
  reference the plans were compiled from,
* **naive** — ``naive=True``: textbook full re-evaluation every round
  (:meth:`Evaluator._run_stratum_naive`), the ground-truth semantics,
* **ledgered** — the default tier again but with the provenance ledger
  and an aggressive 1-in-2 plan profiler attached (pure observers).

The compiled tiers must be *indistinguishable* from the interpreted
reference — identical table fixpoints, send sets, per-rule fire counts,
derivation totals and semi-naive pass counts — and all must agree with
naive evaluation on fixpoints and sends (fire counts differ under naive
evaluation by design: it re-derives everything every round).

Programs are generated in layers so stratification always succeeds, and
use only deterministic builtins with modular arithmetic so every fixpoint
is finite and order-independent (generated tables use whole-row keys, so
primary-key displacement — which is insertion-order sensitive — cannot
occur).
"""

import random

import pytest

from repro.overlog import OverlogRuntime
from repro.overlog.ast import (
    Assign,
    Atom,
    BinOp,
    Cond,
    Const,
    EventDecl,
    Program,
    Rule,
    TableDecl,
    Var,
)

SEEDS = range(200)

LOCAL = "n0"
REMOTE = "n1"
INT_MOD = 7  # all generated arithmetic is mod 7: finite value domain


class ProgramGenerator:
    """Builds one random, stratifiable, deterministic Overlog program."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.decls: list = []
        self.rules: list[Rule] = []
        # (name, arity) of relations usable as rule bodies, in layer order:
        # a rule for a new relation only reads earlier entries, so negation
        # and aggregation edges can never close a cycle.
        self.sources: list[tuple[str, int]] = []
        self._var_counter = 0
        self._rule_counter = 0

    # -- naming -------------------------------------------------------------

    def fresh_var(self) -> Var:
        self._var_counter += 1
        return Var(f"V{self._var_counter}")

    def rule_name(self, kind: str) -> str:
        self._rule_counter += 1
        return f"r{self._rule_counter}_{kind}"

    # -- program skeleton ---------------------------------------------------

    def base_relations(self) -> None:
        # Whole-row keys (keys=()) give set semantics: no primary-key
        # displacement, hence no insertion-order sensitivity.
        for i in range(self.rng.randint(2, 3)):
            arity = self.rng.randint(2, 3)
            self.decls.append(TableDecl(f"t{i}", (), ("Int",) * arity))
            self.sources.append((f"t{i}", arity))
        self.decls.append(EventDecl("e0", 2))
        self.sources.append(("e0", 2))
        # Address book for @-located heads.
        self.decls.append(TableDecl("addr", (), ("Str",)))

    # -- body construction --------------------------------------------------

    def make_body(
        self, min_atoms: int = 1, max_atoms: int = 2
    ) -> tuple[list, list[Var]]:
        """A random join chain; returns (body elements, bound variables)."""
        rng = self.rng
        body: list = []
        bound: list[Var] = []
        for _ in range(rng.randint(min_atoms, max_atoms)):
            name, arity = rng.choice(self.sources)
            args = []
            for _col in range(arity):
                roll = rng.random()
                if roll < 0.15:
                    args.append(Var("_"))  # wildcard joins need dedup
                elif roll < 0.35 and bound:
                    args.append(rng.choice(bound))  # join / repeat var
                elif roll < 0.45:
                    args.append(Const(rng.randrange(INT_MOD)))
                else:
                    v = self.fresh_var()
                    args.append(v)
                    bound.append(v)
            body.append(Atom(name, tuple(args)))
        if bound and rng.random() < 0.35:
            body.append(
                Cond(
                    BinOp(
                        rng.choice(("<", "<=", "!=", ">=")),
                        rng.choice(bound),
                        Const(rng.randrange(INT_MOD)),
                    )
                )
            )
        if bound and rng.random() < 0.35:
            v = self.fresh_var()
            body.append(
                Assign(
                    v,
                    BinOp(
                        "%",
                        BinOp(
                            rng.choice(("+", "*")),
                            rng.choice(bound),
                            Const(rng.randint(1, 3)),
                        ),
                        Const(INT_MOD),
                    ),
                )
            )
            bound.append(v)
        return body, bound

    def head_args(self, bound: list[Var], arity: int) -> tuple:
        rng = self.rng
        args = []
        for _ in range(arity):
            if bound and rng.random() < 0.85:
                args.append(rng.choice(bound))
            else:
                args.append(Const(rng.randrange(INT_MOD)))
        return tuple(args)

    # -- rule kinds ---------------------------------------------------------

    def add_join_rule(self, index: int) -> None:
        name = f"d{index}"
        arity = self.rng.randint(1, 2)
        body, bound = self.make_body()
        self.decls.append(TableDecl(name, (), ("Int",) * arity))
        self.rules.append(
            Rule(
                self.rule_name("join"),
                Atom(name, self.head_args(bound, arity)),
                tuple(body),
            )
        )
        self.sources.append((name, arity))

    def add_recursive_rule(self, index: int) -> None:
        """Transitive closure over a binary base relation (head projects
        body variables directly, so the fixpoint is finite)."""
        name = f"d{index}"
        base = self.rng.choice(
            [s for s in self.sources if s[1] >= 2 and s[0] != "e0"]
        )
        x, y, z = self.fresh_var(), self.fresh_var(), self.fresh_var()
        pad = (Var("_"),) * (base[1] - 2)
        self.decls.append(TableDecl(name, (), ("Int", "Int")))
        self.rules.append(
            Rule(
                self.rule_name("seed"),
                Atom(name, (x, y)),
                (Atom(base[0], (x, y) + pad),),
            )
        )
        self.rules.append(
            Rule(
                self.rule_name("rec"),
                Atom(name, (x, z)),
                (Atom(base[0], (x, y) + pad), Atom(name, (y, z))),
            )
        )
        self.sources.append((name, 2))

    def add_negation_rule(self, index: int) -> None:
        name = f"d{index}"
        body, bound = self.make_body()
        if not bound:
            self.add_join_rule(index)
            return
        neg_name, neg_arity = self.rng.choice(self.sources)
        neg_args = []
        for _ in range(neg_arity):
            roll = self.rng.random()
            if roll < 0.5:
                neg_args.append(self.rng.choice(bound))
            elif roll < 0.75:
                neg_args.append(Var("_"))
            else:
                neg_args.append(Const(self.rng.randrange(INT_MOD)))
        from repro.overlog.ast import NotIn

        body.append(NotIn(Atom(neg_name, tuple(neg_args))))
        arity = self.rng.randint(1, 2)
        self.decls.append(TableDecl(name, (), ("Int",) * arity))
        self.rules.append(
            Rule(
                self.rule_name("neg"),
                Atom(name, self.head_args(bound, arity)),
                tuple(body),
            )
        )
        self.sources.append((name, arity))

    def add_aggregate_rule(self, index: int) -> None:
        from repro.overlog.ast import AggSpec

        name = f"d{index}"
        body, bound = self.make_body(min_atoms=1, max_atoms=2)
        if len(bound) < 2:
            self.add_join_rule(index)
            return
        group, val = bound[0], bound[-1]
        func = self.rng.choice(("count", "sum", "min", "max"))
        spec_var = Var("_") if func == "count" and self.rng.random() < 0.3 else val
        self.decls.append(TableDecl(name, (), ("Int", "Int")))
        self.rules.append(
            Rule(
                self.rule_name("agg"),
                Atom(name, (group, AggSpec(func, spec_var))),
                tuple(body),
            )
        )
        self.sources.append((name, 2))

    def add_deferred_rule(self, index: int) -> None:
        from repro.overlog.ast import NotIn

        name = f"d{index}"
        body, bound = self.make_body()
        arity = self.rng.randint(1, 2)
        self.decls.append(TableDecl(name, (), ("Int",) * arity))
        head = self.head_args(bound, arity)
        # Dedalus-style guard: stop re-deriving once the tuple is
        # materialized.  Without it, naive evaluation (no cross-step
        # activity gating) re-defers the same tuples every step and the
        # workload never quiesces.  Negating the rule's own head is legal
        # here because @next rules contribute no stratification edges.
        body.append(NotIn(Atom(name, head)))
        self.rules.append(
            Rule(
                self.rule_name("defer"),
                Atom(name, head),
                tuple(body),
                deferred=True,
            )
        )
        self.sources.append((name, arity))

    def add_delete_rule(self) -> None:
        """Delete from a base table, keyed off the event (bodies touch only
        base relations so the dependency graph stays acyclic-through-
        negation)."""
        target, arity = self.rng.choice(
            [s for s in self.sources if s[0].startswith("t")]
        )
        vars_ = tuple(self.fresh_var() for _ in range(arity))
        ex, ey = self.fresh_var(), self.fresh_var()
        self.rules.append(
            Rule(
                self.rule_name("del"),
                Atom(target, vars_),
                (Atom("e0", (ex, ey)), Atom(target, vars_)),
                delete=True,
            )
        )

    def add_located_rule(self, index: int) -> None:
        """An ``@``-located head: rows whose first column is a remote
        address become sends, local ones insert locally."""
        name = f"dl{index}"
        body, bound = self.make_body(min_atoms=1, max_atoms=1)
        a = self.fresh_var()
        body.append(Atom("addr", (a,)))
        payload = bound[0] if bound else Const(0)
        self.decls.append(TableDecl(name, (), ("Str", "Int")))
        self.rules.append(
            Rule(
                self.rule_name("loc"),
                Atom(name, (a, payload), loc=0),
                tuple(body),
            )
        )

    # -- top level ----------------------------------------------------------

    def generate(self) -> Program:
        self.base_relations()
        kinds = ["join", "recursive", "negation", "aggregate", "deferred"]
        n_derived = self.rng.randint(3, 5)
        for i in range(n_derived):
            kind = self.rng.choice(kinds)
            getattr(self, f"add_{kind}_rule")(i)
        if self.rng.random() < 0.6:
            self.add_delete_rule()
        if self.rng.random() < 0.6:
            self.add_located_rule(n_derived)
        return Program("generated", tuple(self.decls), tuple(self.rules))

    def workload(self) -> list[list[tuple[str, tuple]]]:
        """Random inbox batches: base facts up front, then event ticks."""
        rng = self.rng
        batches = []
        first = [
            (name, tuple(rng.randrange(INT_MOD) for _ in range(arity)))
            for name, arity in self.sources
            if name.startswith("t")
            for _ in range(rng.randint(3, 7))
        ]
        first.append(("addr", (LOCAL,)))
        first.append(("addr", (REMOTE,)))
        batches.append(first)
        for _ in range(rng.randint(1, 3)):
            batch = [
                ("e0", (rng.randrange(INT_MOD), rng.randrange(INT_MOD)))
                for _ in range(rng.randint(0, 3))
            ]
            if rng.random() < 0.4:
                name, arity = rng.choice(
                    [s for s in self.sources if s[0].startswith("t")]
                )
                batch.append(
                    (name, tuple(rng.randrange(INT_MOD) for _ in range(arity)))
                )
            batches.append(batch)
        return batches


def run_variant(program, batches, **kwargs):
    rt = OverlogRuntime(program, address=LOCAL, **kwargs)
    sends = []
    steps = 0
    for batch in batches:
        for rel, row in batch:
            rt.insert(rel, row)
        result = rt.tick()
        sends.extend(result.sends)
        while rt.has_pending_work:
            steps += 1
            assert steps < 500, "generated program did not quiesce"
            result = rt.tick()
            sends.extend(result.sends)
    return {
        "tables": {
            name: sorted(rt.rows(name)) for name in rt.catalog.tables
        },
        "sends": sorted(sends, key=repr),
        "rule_fires": dict(rt.evaluator.rule_fires),
        "derivations": rt.total_derivations,
        "stratum_iterations": dict(rt.evaluator.stratum_iteration_totals),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_plans_match_reference_and_naive(seed):
    rng = random.Random(seed)
    gen = ProgramGenerator(rng)
    program = gen.generate()
    batches = gen.workload()

    compiled = run_variant(program, batches)  # source-codegen tier (default)
    closure = run_variant(program, batches, compile_mode="closure")
    interpreted = run_variant(program, batches, compile_plans=False)
    naive = run_variant(program, batches, naive=True)
    # The generated-source tier and the closure tier it was lowered from
    # must be bit-identical in every observable.
    assert closure == compiled, str(program)
    # The provenance ledger + sampled profiler must be pure observers:
    # with both enabled (and an aggressive 1-in-2 sampling rate so the
    # profiler's own execution paths run constantly), the compiled
    # evaluator must stay bit-identical to its unobserved self.
    ledgered = run_variant(
        program,
        batches,
        provenance=True,
        profile=True,
        profile_sample_every=2,
    )
    assert ledgered == compiled, str(program)

    # The compiled path must be indistinguishable from the interpreted
    # reference, down to per-rule fire counts and semi-naive pass counts.
    assert compiled["tables"] == interpreted["tables"], str(program)
    assert compiled["sends"] == interpreted["sends"], str(program)
    assert compiled["rule_fires"] == interpreted["rule_fires"], str(program)
    assert compiled["derivations"] == interpreted["derivations"], str(program)
    assert (
        compiled["stratum_iterations"] == interpreted["stratum_iterations"]
    ), str(program)

    # ... and both must agree with ground-truth naive evaluation on the
    # observable outcome.  Fire counts differ under naive re-derivation by
    # design, and so does send *multiplicity* across steps (naive mode
    # re-derives — and hence re-sends — located heads every step it finds
    # them active; the per-step send dedup only spans one step), so sends
    # are compared as sets against naive.
    assert compiled["tables"] == naive["tables"], str(program)
    assert set(compiled["sends"]) == set(naive["sends"]), str(program)
