"""Tests for the observability subsystem: metrics registry, evaluator
instrumentation, cluster aggregation, and causal cross-node tracing."""

import pytest

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode
from repro.metrics import (
    ClusterMetrics,
    Counter,
    Histogram,
    MetricsRegistry,
    TimeWindow,
    Tracer,
)
from repro.overlog import OverlogRuntime, parse
from repro.sim import Cluster, LatencyModel

SIMPLE = """
program demo;
define(a, keys(0), {Int});
define(b, keys(0), {Int});
define(c, keys(0), {Int});
r1 b(X) :- a(X);
r2 c(X) :- b(X), X > 1;
"""


# -- primitives ---------------------------------------------------------------


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_histogram_buckets_and_mean(self):
        h = Histogram(bounds=(10, 100))
        for v in (3, 10, 11, 500):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["mean"] == pytest.approx(131.0)
        assert snap["buckets"] == {"le_10": 2, "le_100": 1, "overflow": 1}

    def test_time_window_rates_and_pruning(self):
        w = TimeWindow(width_ms=100, keep=2)
        w.add(50)          # bucket 0
        w.add(150, 3)      # bucket 1
        assert w.value_at(160) == 3
        assert w.rate_per_s(250) == 30.0  # 3 events in the last 100ms window
        w.add(250)         # bucket 2 -> bucket 0 pruned
        assert w.value_at(50) == 0

    def test_registry_get_or_create(self):
        reg = MetricsRegistry("n1")
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        reg.counter("x").inc()
        snap = reg.snapshot()
        assert snap["scope"] == "n1"
        assert snap["counters"] == {"x": 1}


# -- evaluator instrumentation -----------------------------------------------


class TestRuntimeMetrics:
    def test_rule_fires_and_step_counters(self):
        rt = OverlogRuntime(parse(SIMPLE), address="n")
        rt.insert_many("a", [(1,), (2,), (3,)])
        rt.tick(now=5)
        assert rt.evaluator.rule_fires == {"r1": 3, "r2": 2}
        snap = rt.metrics.registry.snapshot()
        assert snap["counters"]["overlog.steps"] == 1
        # 3 inserted a-events + 3 derived b + 2 derived c
        assert snap["counters"]["overlog.derivations"] == 8
        assert snap["rule_fires"] == {"r1": 3, "r2": 2}
        # Relation cardinalities appear as lazily computed gauges.
        assert snap["gauges"]["rows.b"] == 3
        assert snap["gauges"]["rows.c"] == 2

    def test_stratum_iteration_counts(self):
        rt = OverlogRuntime(parse(SIMPLE), address="n")
        rt.insert_many("a", [(1,), (2,)])
        result = rt.tick()
        assert result.stratum_iterations  # (stratum, passes) recorded
        assert all(n >= 1 for _, n in result.stratum_iterations)
        assert rt.evaluator.stratum_iteration_totals

    def test_metrics_can_be_disabled(self):
        rt = OverlogRuntime(parse(SIMPLE), address="n", metrics=False)
        rt.insert("a", (1,))
        rt.tick()
        assert rt.metrics is None
        # The evaluator's own counters are inherent and stay on.
        assert rt.evaluator.rule_fires["r1"] == 1


# -- cluster aggregation ------------------------------------------------------


def _fs_cluster(seed=0):
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 1))
    cluster.add(BoomFSMaster("master", replication=2))
    for i in range(2):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
    client = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(700)  # heartbeats register the DataNodes
    return cluster, client


class TestClusterMetrics:
    def test_component_counters_aggregate(self):
        cluster, client = _fs_cluster()
        client.mkdir("/a")
        client.write("/a/f", b"x" * 100)
        snap = cluster.metrics_snapshot()
        # "transport" is the wire-level scope (envelopes/bytes/stalls).
        assert set(snap["nodes"]) == {
            "master",
            "dn0",
            "dn1",
            "client",
            "transport",
        }
        totals = snap["cluster"]["counters"]
        assert totals["fs.requests.mkdir"] == 1
        assert totals["fs.responses.ok"] >= 2
        assert totals["dn.chunks_stored"] == 2  # replication=2
        assert totals["dn.heartbeats"] >= 4
        master = snap["nodes"]["master"]
        assert master["rule_fires"]  # evaluator counters surface per node
        assert master["gauges"]["rows.fqpath"] >= 2

    def test_dashboard_renders(self):
        cluster, client = _fs_cluster()
        client.mkdir("/a")
        text = cluster.dashboard()
        assert "master" in text
        assert "fs.requests.mkdir" in text

    def test_restart_resets_node_metrics(self):
        cluster, client = _fs_cluster()
        client.mkdir("/a")
        before = cluster.metrics_snapshot()["nodes"]["master"]["counters"]
        assert before["overlog.steps"] > 0
        cluster.crash("master")
        cluster.restart("master")
        after = cluster.metrics_snapshot()["nodes"]["master"]["counters"]
        # Metrics are soft state: the restarted node reports from zero.
        assert after.get("fs.requests.mkdir", 0) == 0
        master = cluster.get("master")
        assert master.metrics is cluster.metrics.registries["master"]

    def test_adopt_replaces_registry_by_scope(self):
        cm = ClusterMetrics()
        first = cm.node("n")
        second = MetricsRegistry("n")
        assert cm.adopt(second) is second
        assert cm.registries["n"] is second is not first


# -- causal tracing -----------------------------------------------------------


class TestTracerUnit:
    def test_send_deliver_builds_child_spans(self):
        t = Tracer()
        ref = t.start_trace("op", node="c")
        with t.activate((ref,)):
            mid = t.on_send("c", "s", "request")
        assert mid is not None
        ctx = t.on_deliver(mid, "s", "request")
        assert len(ctx) == 1 and ctx[0].trace_id == ref.trace_id
        tree = t.span_tree(ref.trace_id)
        assert tree.children[0].node == "s"
        assert t.nodes_crossed(ref.trace_id) == {"c", "s"}

    def test_untraced_sends_cost_nothing(self):
        t = Tracer()
        assert t.on_send("a", "b", "r") is None
        assert t.on_deliver(None, "b", "r") == ()
        assert t.events == []

    def test_drop_recorded(self):
        t = Tracer()
        with t.trace("op") as ref:
            mid = t.on_send("c", "s", "request")
        t.on_drop(mid, "loss")
        kinds = [e["kind"] for e in t.events if e["trace"] == ref.trace_id]
        assert kinds == ["begin", "send", "drop"]


class TestCrossNodeTracing:
    def test_mkdir_span_tree_crosses_nodes(self):
        cluster, client = _fs_cluster()
        ref = client.start_trace("mkdir /a")
        client.mkdir("/a")
        nodes = cluster.tracer.nodes_crossed(ref.trace_id)
        assert len(nodes) >= 2
        assert {"client", "master"} <= nodes
        tree = cluster.tracer.span_tree(ref.trace_id)
        hops = [(s.node, s.name) for s in tree.walk()]
        assert ("master", "request") in hops
        assert ("client", "response") in hops
        rendered = cluster.tracer.render_tree(ref.trace_id)
        assert "master" in rendered and "request" in rendered

    def test_write_trace_reaches_datanodes(self):
        cluster, client = _fs_cluster()
        ref = client.start_trace("write /f")
        client.write("/f", b"data")
        nodes = cluster.tracer.nodes_crossed(ref.trace_id)
        assert {"client", "master"} <= nodes
        assert nodes & {"dn0", "dn1"}  # chunk placement crossed into the data plane

    def test_trace_is_consumed_by_one_op(self):
        cluster, client = _fs_cluster()
        ref = client.start_trace("mkdir /a")
        client.mkdir("/a")
        client.mkdir("/b")  # untraced
        sends = [
            e
            for e in cluster.tracer.events
            if e["kind"] == "send" and e["trace"] == ref.trace_id
        ]
        assert sends and cluster.tracer.nodes_crossed(ref.trace_id)
        # The second mkdir minted no new trace.
        assert cluster.tracer.trace_ids() == [ref.trace_id]


# -- deterministic export (acceptance) ---------------------------------------


def _traced_run(seed):
    cluster, client = _fs_cluster(seed=seed)
    client.start_trace("mkdir /a")
    client.mkdir("/a")
    client.start_trace("write /a/f")
    client.write("/a/f", b"payload" * 40)
    cluster.run_for(1000)
    return cluster


class TestDeterministicExport:
    def test_trace_jsonl_byte_identical_across_runs(self):
        first = _traced_run(seed=7).tracer.to_jsonl()
        second = _traced_run(seed=7).tracer.to_jsonl()
        assert first  # non-empty export
        assert first == second

    def test_metrics_jsonl_byte_identical_across_runs(self):
        first = _traced_run(seed=7)
        second = _traced_run(seed=7)
        assert first.metrics.to_jsonl(now_ms=first.now) == second.metrics.to_jsonl(
            now_ms=second.now
        )

    def test_jsonl_files_written(self, tmp_path):
        cluster = _traced_run(seed=3)
        traces = tmp_path / "traces.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        cluster.export_traces_jsonl(traces)
        cluster.export_metrics_jsonl(metrics)
        assert traces.read_text() == cluster.tracer.to_jsonl()
        lines = metrics.read_text().splitlines()
        assert lines  # one record per node + one cluster record
        import json

        records = [json.loads(line) for line in lines]
        assert {r["record"] for r in records} == {"node", "cluster"}
