"""Unit tests for the compiled-plan layer (:mod:`repro.overlog.plan`).

The differential harness (test_plan_equivalence.py) proves the compiled
evaluator *behaves* like the reference; these tests pin down the plans
themselves: which index a join step probes, that composite indexes are
built once and then maintained, that the plan cache is invalidated on
rule installation, and that wildcard-join dedup survives compilation.
"""

import pytest

from repro.overlog import OverlogRuntime
from repro.overlog.plan import _SRC_DELTA, _SRC_NORMAL, _SRC_POST_DELTA

JOIN_PROGRAM = """
program plans;
define(a, keys(0, 1), {Int, Int});
define(b, keys(0, 1, 2), {Int, Int, Int});
define(out, keys(0, 1), {Int, Int});
r1 out(X, Z) :- a(X, Y), b(Y, Z, X);
r2 out(X, X) :- b(3, X, _);
"""


def rule_named(rt: OverlogRuntime, name: str):
    (rule,) = [r for r in rt.rules if r.name == name]
    return rule


def plans_for(rt: OverlogRuntime, name: str):
    return rt.evaluator.planner.plans_for(rule_named(rt, name))


# -- index / probe selection -------------------------------------------------


def test_most_bound_probe_uses_all_bound_columns():
    rt = OverlogRuntime(JOIN_PROGRAM)
    full = plans_for(rt, "r1").full
    # a(X, Y) opens the join: nothing is bound yet, so it must scan.
    assert full.steps[0].probe_cols == ()
    # b(Y, Z, X): Y and X are bound, Z is not -> composite probe on (0, 2),
    # not the reference evaluator's first-single-column probe.
    assert full.steps[1].probe_cols == (0, 2)
    assert "probe b[col0=Y, col2=X]" in full.explain()


def test_constant_columns_are_probed():
    rt = OverlogRuntime(JOIN_PROGRAM)
    full = plans_for(rt, "r2").full
    # b(3, X, _): the constant column is probeable even with nothing bound.
    assert full.steps[0].probe_cols == (0,)


def test_delta_plans_shift_sources():
    rt = OverlogRuntime(JOIN_PROGRAM)
    plans = plans_for(rt, "r1")
    d0, d1 = plans.by_pos
    # delta@0: a is the delta (never probed), b sits after it at full view.
    assert d0.steps[0].source == _SRC_DELTA
    assert d0.steps[0].probe_cols == ()
    # ... b sits after the delta, so it reads the full view minus the
    # delta (semi-naive exclusion) — still through the composite probe.
    assert d0.steps[1].source == _SRC_POST_DELTA
    assert d0.steps[1].probe_cols == (0, 2)
    # delta@1: a is *before* the delta and reads the plain full view.
    assert d1.steps[0].source == _SRC_NORMAL
    assert d1.steps[1].source == _SRC_DELTA
    assert "[delta@0]" in d0.explain()


def test_composite_index_built_once_and_maintained():
    rt = OverlogRuntime(JOIN_PROGRAM)
    rt.insert_many("a", [(1, 2), (4, 5)])
    rt.insert_many("b", [(2, 9, 1), (5, 8, 4), (5, 8, 0)])
    rt.tick()
    b = rt.catalog.table("b")
    # The bootstrap step full-evaluates every rule: r1 builds the (0, 2)
    # composite, r2 builds the single-column (0,) index.  Exactly once each.
    assert b.index_builds == 2
    assert sorted(rt.rows("out")) == [(1, 9), (4, 8)]
    # Later inserts maintain both indexes in place instead of rebuilding.
    rt.insert("b", (2, 7, 1))
    rt.insert("a", (0, 5))
    rt.tick()
    assert b.index_builds == 2
    assert sorted(rt.rows("out")) == [(0, 8), (1, 7), (1, 9), (4, 8)]


def test_ensure_index_is_idempotent():
    rt = OverlogRuntime(JOIN_PROGRAM)
    b = rt.catalog.table("b")
    b.insert((1, 2, 3))
    b.insert((1, 2, 4))
    first = b.ensure_index((0, 2))
    assert b.index_builds == 1
    assert b.ensure_index((0, 2)) is first
    assert b.index_builds == 1
    assert b.rows_matching_cols((0, 2), (1, 3)) == [(1, 2, 3)]
    b.delete((1, 2, 3))
    assert b.rows_matching_cols((0, 2), (1, 3)) == []
    assert b.index_builds == 1


# -- plan cache lifecycle ----------------------------------------------------


def test_plans_are_reused_across_timesteps():
    rt = OverlogRuntime(JOIN_PROGRAM)
    planner = rt.evaluator.planner
    assert planner.compile_count == 1  # compiled eagerly at install
    rt.insert("a", (1, 2))
    rt.tick()
    rt.insert("b", (2, 0, 1))
    rt.tick()
    assert planner.compile_count == 1


def test_add_rule_invalidates_and_recompiles():
    rt = OverlogRuntime(JOIN_PROGRAM)
    planner = rt.evaluator.planner
    rt.insert_many("a", [(1, 2), (3, 4)])
    rt.tick()
    rt.add_rule("r3 out(X, 0) :- a(X, _);")
    assert planner.compile_count == 2
    # The new rule must see facts that were already materialized.
    rt.tick()
    assert (1, 0) in rt.rows("out") and (3, 0) in rt.rows("out")
    # ... and participates in normal incremental evaluation afterwards.
    rt.insert("a", (5, 6))
    rt.tick()
    assert (5, 0) in rt.rows("out")


def test_program_swap_drops_stale_plans():
    rt = OverlogRuntime(JOIN_PROGRAM)
    planner = rt.evaluator.planner
    old_rule = rule_named(rt, "r1")
    old_plan = planner.plans_for(old_rule)
    rt.evaluator.set_rules(rt.rules)  # swap in an equal rule set
    assert planner.compile_count == 2
    assert planner.plans_for(rule_named(rt, "r1")) is not old_plan


def test_explain_renders_plans():
    rt = OverlogRuntime(JOIN_PROGRAM)
    text = rt.explain()
    assert "[full]" in text and "[delta@0]" in text
    only_r2 = rt.explain("r2")
    assert "r2" in only_r2 and "r1" not in only_r2
    interpreted = OverlogRuntime(JOIN_PROGRAM, compile_plans=False)
    assert "no compiled plans" in interpreted.explain()


# -- semantics that must survive compilation ---------------------------------


def test_wildcard_join_dedup_survives_compilation():
    # t(X, _) projects away the second column; the two t(1, *) rows must
    # collapse to ONE environment *before* f_newid runs, or the compiled
    # path would mint extra ids (the reference evaluator fires once per
    # distinct binding, which nondeterministic builtins rely on).
    program = """
    program wild;
    define(t, keys(0, 1), {Int, Int});
    define(out, keys(0, 1), {Int, Int});
    rw out(Id, X) :- t(X, _), Id := f_newid();
    """
    rt = OverlogRuntime(program)
    rt.insert_many("t", [(1, 10), (1, 20), (2, 30)])
    rt.tick()
    rows = rt.rows("out")
    assert len(rows) == 2
    assert sorted(x for _, x in rows) == [1, 2]
    ids = [i for i, _ in rows]
    assert len(set(ids)) == 2


@pytest.mark.parametrize("compile_plans", [True, False])
def test_negation_probe_matches_reference(compile_plans):
    program = """
    program neg;
    define(t, keys(0, 1), {Int, Int});
    define(block, keys(0, 1), {Int, Int});
    define(out, keys(0, 1), {Int, Int});
    rn out(X, Y) :- t(X, Y), notin block(X, Y);
    """
    rt = OverlogRuntime(program, compile_plans=compile_plans)
    rt.insert_many("t", [(1, 2), (3, 4)])
    rt.insert("block", (3, 4))
    rt.tick()
    assert rt.rows("out") == [(1, 2)]
    if compile_plans:
        plan = plans_for(rt, "rn").full
        assert plan.steps[1].probe_cols == (0, 1)
        assert "antijoin probe block" in plan.explain()


def test_post_delta_exclusion_still_applies_with_probe():
    # Self-join u(X, Y), u(Y, Z): with delta at position 0, position 1
    # reads the full view MINUS the delta (semi-naive exclusion) and still
    # goes through the composite probe.  A pair only derivable from two
    # delta rows must come from the delta@1 plan, not twice.
    program = """
    program selfjoin;
    define(u, keys(0, 1), {Int, Int});
    define(p, keys(0, 1), {Int, Int});
    rs p(X, Z) :- u(X, Y), u(Y, Z);
    """
    rt = OverlogRuntime(program)
    rt.insert_many("u", [(1, 2), (2, 3)])
    rt.tick()
    assert sorted(rt.rows("p")) == [(1, 3)]
    fires = dict(rt.evaluator.rule_fires)
    interp = OverlogRuntime(program, compile_plans=False)
    interp.insert_many("u", [(1, 2), (2, 3)])
    interp.tick()
    assert dict(interp.evaluator.rule_fires) == fires
