"""Tests for the hash-partitioned BOOM-FS namespace (scalability revision)."""

import pytest

from repro.boomfs import DataNode, FSError
from repro.boomfs.partition import (
    PartitionedFSClient,
    partition_of,
    partitioned_master,
)
from repro.sim import Cluster, LatencyModel


def make_partitioned(partitions=4, datanodes=4, seed=0):
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 1))
    masters = [
        cluster.add(partitioned_master(f"master{p}", partitions, replication=2))
        for p in range(partitions)
    ]
    addrs = [m.address for m in masters]
    for i in range(datanodes):
        cluster.add(DataNode(f"dn{i}", masters=addrs, heartbeat_ms=300))
    fs = cluster.add(PartitionedFSClient("client", [[a] for a in addrs]))
    cluster.run_for(700)
    return cluster, masters, fs


@pytest.fixture()
def part_setup():
    return make_partitioned()


class TestPartitionFunction:
    def test_deterministic(self):
        assert partition_of("/a/b", 4) == partition_of("/a/b", 4)

    def test_spread(self):
        owners = {partition_of(f"/f{i}", 4) for i in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_range(self):
        for i in range(32):
            assert 0 <= partition_of(f"/p{i}", 3) < 3


class TestPartitionedNamespace:
    def test_directories_replicated_everywhere(self, part_setup):
        _, masters, fs = part_setup
        fs.mkdir("/data")
        for m in masters:
            assert "/data" in m.paths()

    def test_files_live_on_exactly_one_partition(self, part_setup):
        _, masters, fs = part_setup
        fs.mkdir("/d")
        for i in range(12):
            fs.create(f"/d/f{i}")
        for i in range(12):
            holders = [m for m in masters if f"/d/f{i}" in m.paths()]
            assert len(holders) == 1
            expected = partition_of(f"/d/f{i}", len(masters))
            assert holders[0].address == f"master{expected}"

    def test_ls_unions_partitions(self, part_setup):
        _, _, fs = part_setup
        fs.mkdir("/d")
        names = sorted(f"f{i}" for i in range(12))
        for name in names:
            fs.create(f"/d/{name}")
        assert fs.ls("/d") == names

    def test_write_read_roundtrip(self, part_setup):
        _, _, fs = part_setup
        fs.mkdir("/d")
        for i in range(6):
            fs.write(f"/d/f{i}", bytes([i]) * 99)
        for i in range(6):
            assert fs.read(f"/d/f{i}") == bytes([i]) * 99

    def test_rm_file_and_dir(self, part_setup):
        _, masters, fs = part_setup
        fs.mkdir("/d")
        for i in range(6):
            fs.create(f"/d/f{i}")
        fs.rm("/d/f0")
        assert "f0" not in fs.ls("/d")
        fs.rm("/d")
        for m in masters:
            assert set(m.paths()) == {"/"}

    def test_mv_within_partition(self, part_setup):
        _, _, fs = part_setup
        fs.mkdir("/d")
        # find a rename that stays in one partition
        n = 4
        for i in range(100):
            old, new = f"/d/a{i}", f"/d/b{i}"
            if partition_of(old, n) == partition_of(new, n):
                fs.create(old)
                fs.mv(old, new)
                assert fs.exists(new) is False
                assert fs.exists(old) is None
                return
        pytest.skip("no same-partition pair found")

    def test_cross_partition_mv_rejected(self, part_setup):
        _, _, fs = part_setup
        fs.mkdir("/d")
        n = 4
        for i in range(100):
            old, new = f"/d/a{i}", f"/d/b{i}"
            if partition_of(old, n) != partition_of(new, n):
                fs.create(old)
                with pytest.raises(FSError, match="crosspartition"):
                    fs.mv(old, new)
                return
        pytest.skip("no cross-partition pair found")

    def test_chunk_ids_do_not_collide_across_partitions(self, part_setup):
        cluster, masters, fs = part_setup
        fs.mkdir("/d")
        for i in range(8):
            fs.write(f"/d/f{i}", b"x" * 10)
        cluster.run_for(500)
        all_chunks: list[str] = []
        for m in masters:
            all_chunks.extend(cid for cid, _, _ in m.runtime.rows("fchunk"))
        assert len(all_chunks) == len(set(all_chunks)) == 8

    def test_partitioned_masters_do_not_gc_each_other(self, part_setup):
        cluster, masters, fs = part_setup
        fs.mkdir("/d")
        fs.write("/d/f", b"y" * 50)
        # gc timers would fire within 8s; chunks must survive since gc1 is
        # dropped from partitioned masters.
        cluster.run_for(9000)
        assert fs.read("/d/f") == b"y" * 50

    def test_makedirs_nested(self, part_setup):
        _, masters, fs = part_setup
        fs.makedirs("/x/y/z")
        for m in masters:
            assert "/x/y/z" in m.paths()
