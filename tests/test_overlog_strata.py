"""Unit tests for stratification analysis."""

import pytest

from repro.overlog import StratificationError, parse
from repro.overlog.strata import compute_strata, rules_by_stratum


def strata_of(src):
    program = parse("program t;\n" + src)
    return compute_strata(program.rules), program


class TestStrataAssignment:
    def test_flat_program_single_stratum(self):
        strata, _ = strata_of("b(X) :- a(X); c(X) :- b(X);")
        assert strata["a"] == strata["b"] == strata["c"] == 0

    def test_negation_raises_stratum(self):
        strata, _ = strata_of("c(X) :- a(X), notin b(X);")
        assert strata["c"] > strata["b"]

    def test_aggregation_raises_stratum(self):
        strata, _ = strata_of("c(count<X>) :- a(X);")
        assert strata["c"] > strata["a"]

    def test_chained_negation_multiple_strata(self):
        strata, _ = strata_of(
            """
            b(X) :- a(X), notin z(X);
            c(X) :- a(X), notin b(X);
            d(X) :- a(X), notin c(X);
            """
        )
        assert strata["b"] < strata["c"] < strata["d"]

    def test_positive_recursion_same_stratum(self):
        strata, _ = strata_of(
            "p(X, Y) :- e(X, Y); p(X, Z) :- e(X, Y), p(Y, Z);"
        )
        assert strata["p"] == strata["e"] == 0

    def test_negation_over_recursive_relation_ok(self):
        strata, _ = strata_of(
            """
            p(X, Y) :- e(X, Y);
            p(X, Z) :- e(X, Y), p(Y, Z);
            q(X) :- e(X, _), notin p(X, X);
            """
        )
        assert strata["q"] > strata["p"]

    def test_empty_program(self):
        assert compute_strata(()) == {}


class TestUnstratifiable:
    def test_direct_self_negation(self):
        with pytest.raises(StratificationError):
            strata_of("p(X) :- a(X), notin p(X);")

    def test_mutual_negation(self):
        with pytest.raises(StratificationError):
            strata_of("p(X) :- a(X), notin q(X); q(X) :- a(X), notin p(X);")

    def test_aggregate_in_recursion(self):
        with pytest.raises(StratificationError):
            strata_of("p(count<X>) :- p(X);")

    def test_long_cycle_through_negation(self):
        with pytest.raises(StratificationError):
            strata_of(
                """
                b(X) :- a(X);
                c(X) :- b(X), notin d(X);
                d(X) :- c(X);
                """
            )


class TestDeferredRules:
    def test_deferred_rule_breaks_cycle(self):
        strata, _ = strata_of(
            """
            path(N, F) :- file(F, N);
            file(F, N)@next :- mk(F, N), notin path(N, _);
            """
        )
        # No error; the @next rule contributes no edge.
        assert "path" in strata

    def test_deferred_rule_runs_after_its_body_strata(self):
        _, program = strata_of(
            """
            agg(count<X>) :- src(X);
            out(N)@next :- agg(N);
            """
        )
        strata = compute_strata(program.rules)
        buckets = rules_by_stratum(program.rules, strata)
        # the deferred rule must sit in agg's (higher) stratum bucket
        deferred_bucket = next(
            i for i, b in enumerate(buckets) for r in b if r.deferred
        )
        agg_bucket = next(
            i for i, b in enumerate(buckets) for r in b if r.is_aggregate
        )
        assert deferred_bucket >= agg_bucket


class TestRealPrograms:
    def test_boomfs_master_stratifies(self):
        from repro.boomfs import master_program

        strata = compute_strata(master_program().rules)
        # responses sit above the base tables they negate over
        assert strata["response"] > strata["fqpath"]

    def test_paxos_stratifies(self):
        from repro.paxos import paxos_program

        strata = compute_strata(paxos_program().rules)
        assert strata["become_leader"] > strata["prom_cnt"] - 1

    def test_merged_replicated_master_stratifies(self):
        from repro.paxos import replicated_master_program

        program = replicated_master_program()
        strata = compute_strata(program.rules)
        # decided log feeds fs_op feeds request feeds the FS rules
        assert strata["request"] >= strata["fs_op"]

    def test_scheduler_programs_stratify(self):
        from repro.mapreduce import scheduler_program

        for policy in ("fifo", "hadoop", "late"):
            strata = compute_strata(scheduler_program(policy).rules)
            assert strata["do_assign"] >= strata["tt_hb"]
