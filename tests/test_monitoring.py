"""Tests for the metaprogramming layer: trace rewrites and invariants."""

import pytest

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode, master_program
from repro.monitoring import (
    InvariantMonitor,
    TraceCollector,
    add_relation_tracing,
    add_rule_tracing,
    boomfs_invariants_program,
    with_invariants,
)
from repro.overlog import OverlogRuntime, parse
from repro.sim import Cluster, LatencyModel

SIMPLE = """
program demo;
define(a, keys(0), {Int});
define(b, keys(0), {Int});
define(c, keys(0), {Int});
r1 b(X) :- a(X);
r2 c(X) :- b(X), X > 1;
"""


class TestRuleTracing:
    def test_rewrite_adds_one_twin_per_rule(self):
        prog = parse(SIMPLE)
        traced = add_rule_tracing(prog)
        assert len(traced.rules) == 2 * len(prog.rules)
        names = {r.name for r in traced.rules}
        assert "trace_r1" in names and "trace_r2" in names

    def test_original_program_untouched(self):
        prog = parse(SIMPLE)
        add_rule_tracing(prog)
        assert len(prog.rules) == 2  # rewrites return new trees

    def test_trace_fires_with_rule(self):
        rt = OverlogRuntime(add_rule_tracing(parse(SIMPLE)))
        collector = TraceCollector()
        collector.attach(rt)
        rt.insert_many("a", [(1,), (2,), (3,)])
        rt.tick(now=5)
        counts = collector.rule_counts()
        assert counts["r1"] == 3
        assert counts["r2"] == 2  # X > 1 filter
        assert all(t == 5 for *_, t in collector.events)

    def test_selective_tracing(self):
        rt = OverlogRuntime(add_rule_tracing(parse(SIMPLE), rule_names=["r2"]))
        collector = TraceCollector()
        collector.attach(rt)
        rt.insert_many("a", [(1,), (2,)])
        rt.tick()
        assert set(collector.rule_counts()) == {"r2"}

    def test_traced_program_equivalent_results(self):
        plain = OverlogRuntime(parse(SIMPLE))
        traced = OverlogRuntime(add_rule_tracing(parse(SIMPLE)))
        for rt in (plain, traced):
            rt.insert_many("a", [(1,), (2,), (5,)])
            rt.tick()
        assert sorted(plain.rows("c")) == sorted(traced.rows("c"))

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(KeyError, match="zzz"):
            add_rule_tracing(parse(SIMPLE), rule_names=["r1", "zzz"])

    def test_double_instrumentation_is_an_error(self):
        traced = add_rule_tracing(parse(SIMPLE))
        with pytest.raises(ValueError, match="already traced"):
            add_rule_tracing(traced)

    def test_boomfs_master_program_traceable(self):
        # The headline claim: instrument the real NameNode without
        # touching it.
        traced = add_rule_tracing(master_program())
        # construct a runtime over the traced program directly
        rt = OverlogRuntime(traced, address="master2")
        rt.install("file", [(0, -1, "", True)])
        rt.install("repfactor", [(2,)])
        rt.install("dn_timeout", [(3000,)])
        collector = TraceCollector()
        collector.attach(rt)
        rt.insert("request", (1, "client", "mkdir", "/x", None))
        rt.tick(now=1)
        while rt.has_pending_work:
            rt.tick(now=1)
        assert ("/x", 1) in rt.rows("fqpath")
        assert collector.rule_counts().get("c1") == 1  # mkdir rule traced


class TestTracingCompiledPlans:
    """Regression: trace rewrites must ride the compiled-plan path like
    any other rules — plans are built for the twin rules, reused across
    timesteps, and dropped (then rebuilt) when a rewrite swaps rules in
    at runtime."""

    def test_traced_program_compiles_plans(self):
        rt = OverlogRuntime(add_rule_tracing(parse(SIMPLE)))
        planner = rt.evaluator.planner
        assert planner is not None
        planned = {rp.rule.name for rp in planner.plans}
        assert {"r1", "r2", "trace_r1", "trace_r2"} <= planned
        rt.insert_many("a", [(1,), (2,)])
        rt.tick()
        rt.insert("a", (3,))
        rt.tick()
        # Compiled once at install; ticking reuses the cached plans.
        assert planner.compile_count == 1

    def test_runtime_rewrite_invalidates_plan_cache(self):
        # trace_event must be declared up front: add_rule installs rules,
        # not declarations (the full-program rewrite adds the decl itself).
        rt = OverlogRuntime(parse(SIMPLE + "event(trace_event, 4);"))
        planner = rt.evaluator.planner
        rt.insert_many("a", [(1,), (2,)])
        rt.tick()
        assert planner.compile_count == 1
        # Apply the tracing rewrite to the *running* program, keeping
        # state: install the twin rules through add_rule.
        traced = add_rule_tracing(rt.program)
        twins = [r for r in traced.rules if r.name.startswith("trace_")]
        collector = TraceCollector()
        collector.attach(rt)
        for twin in twins:
            rt.add_rule(twin)
        planned = {rp.rule.name for rp in rt.evaluator.planner.plans}
        assert {"trace_r1", "trace_r2"} <= planned
        assert rt.evaluator.planner.compile_count >= 2  # cache rebuilt
        rt.insert("a", (5,))
        rt.tick(now=7)
        # The twins fire through their freshly compiled plans — over the
        # new tuple *and* the pre-existing rows (add_rule marks the read
        # relations dirty, so new rules apply retroactively).
        assert collector.rule_counts() == {"r1": 3, "r2": 2}


class TestRelationTracing:
    def test_relation_tracing(self):
        rt = OverlogRuntime(add_relation_tracing(parse(SIMPLE), ["b"]))
        collector = TraceCollector()
        collector.attach(rt)
        rt.insert_many("a", [(1,), (2,)])
        rt.tick()
        assert collector.relation_counts() == {"b": 2}

    def test_unknown_relation_rejected(self):
        with pytest.raises(KeyError):
            add_relation_tracing(parse(SIMPLE), ["zzz"])

    def test_double_relation_instrumentation_is_an_error(self):
        traced = add_relation_tracing(parse(SIMPLE), ["b"])
        with pytest.raises(ValueError, match="already traced"):
            add_relation_tracing(traced, ["b"])

    def test_arity_zero_relation(self):
        source = SIMPLE + "event(ping, 0);\nr3 ping() :- a(X), X > 2;\n"
        rt = OverlogRuntime(add_relation_tracing(parse(source), ["ping"]))
        collector = TraceCollector()
        collector.attach(rt)
        rt.insert_many("a", [(1,), (3,)])
        rt.tick()
        assert collector.relation_counts() == {"ping": 1}

    def test_metamorphic_master_equivalence(self):
        # Tracing the full NameNode program must not change what it
        # derives: run the same workload on the plain and doubly-rewritten
        # programs and compare every non-trace relation.
        plain_rt = OverlogRuntime(master_program(), address="m")
        traced_prog = add_relation_tracing(
            add_rule_tracing(master_program()), ["fqpath", "chunk_cnt"]
        )
        traced_rt = OverlogRuntime(traced_prog, address="m")
        for rt in (plain_rt, traced_rt):
            rt.install("file", [(0, -1, "", True)])
            rt.install("repfactor", [(2,)])
            rt.install("dn_timeout", [(3000,)])
            for i, (op, path) in enumerate(
                [("mkdir", "/a"), ("mkdir", "/a/b"), ("create", "/a/b/f"),
                 ("ls", "/a"), ("rm", "/a/b")]
            ):
                rt.insert("request", (i, "c", op, path, None))
                rt.tick(now=i + 1)
                while rt.has_pending_work:
                    rt.tick(now=i + 1)
        for decl in master_program().tables():
            assert sorted(plain_rt.rows(decl.name)) == sorted(
                traced_rt.rows(decl.name)
            ), f"relation {decl.name} diverged under tracing"


class TestInvariants:
    def test_healthy_fs_has_no_violations(self):
        program = with_invariants(master_program(), boomfs_invariants_program())
        rt = OverlogRuntime(program, address="m")
        rt.install("file", [(0, -1, "", True)])
        rt.install("repfactor", [(2,)])
        rt.install("dn_timeout", [(3000,)])
        monitor = InvariantMonitor()
        monitor.attach(rt)
        rt.insert("request", (1, "c", "mkdir", "/a", None))
        for now in (0, 1, 2, 1001, 2001):
            rt.tick(now=now)
            while rt.has_pending_work:
                rt.tick(now=now)
        assert monitor.ok, monitor.violations

    def test_corrupted_metadata_detected(self):
        program = with_invariants(master_program(), boomfs_invariants_program())
        rt = OverlogRuntime(program, address="m")
        rt.install("file", [(0, -1, "", True)])
        rt.install("repfactor", [(2,)])
        rt.install("dn_timeout", [(3000,)])
        monitor = InvariantMonitor()
        monitor.attach(rt)
        # Inject an fqpath row with no backing file: iv1 must fire.
        rt.install("fqpath", [("/ghost", 999)])
        rt.tick(now=1001)
        assert ("orphan-fqpath", "/ghost") in monitor.violations

    def test_strict_monitor_raises(self):
        program = with_invariants(master_program(), boomfs_invariants_program())
        rt = OverlogRuntime(program, address="m")
        rt.install("file", [(0, -1, "", True)])
        rt.install("repfactor", [(2,)])
        rt.install("dn_timeout", [(3000,)])
        monitor = InvariantMonitor(strict=True)
        monitor.attach(rt)
        rt.install("fqpath", [("/ghost", 999)])
        with pytest.raises(AssertionError, match="orphan-fqpath"):
            rt.tick(now=1001)

    def test_live_cluster_stays_invariant_clean(self):
        # Run a real workload with invariants merged into the master.
        program = with_invariants(master_program(), boomfs_invariants_program())
        cluster = Cluster(latency=LatencyModel(1, 1))
        master = cluster.add(BoomFSMaster("master", replication=2))
        # swap in the instrumented program
        master._program = program
        cluster.crash("master")
        cluster.restart("master")
        monitor = InvariantMonitor()
        monitor.attach(master.runtime)
        for i in range(2):
            cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
        fs = cluster.add(BoomFSClient("client", masters=["master"]))
        cluster.run_for(700)
        fs.makedirs("/a/b")
        fs.write("/a/b/f", b"bytes")
        fs.mv("/a/b/f", "/a/g")
        fs.rm("/a/b")
        cluster.run_for(3000)
        assert monitor.ok, monitor.violations


class TestPaxosLocalInvariants:
    """The paxos_invariants pack judged on a bare runtime: history
    relations (decided_hist / promised_hist) accumulate across primary-
    key replacement, so regressions the PK would silently absorb still
    surface as invariant_violation rows."""

    def _runtime(self):
        from repro.monitoring import paxos_invariants_program
        from repro.paxos import paxos_program

        rt = OverlogRuntime(
            with_invariants(paxos_program(), paxos_invariants_program()),
            address="r1",
        )
        monitor = InvariantMonitor()
        monitor.attach(rt)
        return rt, monitor

    def _settle(self, rt, now):
        rt.tick(now=now)
        while rt.has_pending_work:
            rt.tick(now=now)

    def test_decided_conflict_across_pk_replacement(self):
        rt, monitor = self._runtime()
        rt.install("decided", [(1, "op-a")])
        self._settle(rt, 1)
        rt.install("decided", [(1, "op-b")])  # PK silently replaces
        self._settle(rt, 2)
        assert ("decided-conflict", 1) in monitor.violations

    def test_identical_redecision_is_silent(self):
        rt, monitor = self._runtime()
        rt.install("decided", [(1, "op-a")])
        self._settle(rt, 1)
        rt.install("decided", [(1, "op-a")])
        self._settle(rt, 2)
        assert monitor.ok, monitor.violations

    def test_ballot_regression(self):
        rt, monitor = self._runtime()
        rt.install("max_promised", [(0, 7)])
        self._settle(rt, 1)
        rt.install("max_promised", [(0, 3)])
        self._settle(rt, 2)
        assert ("ballot-regression", 3) in monitor.violations

    def test_ballot_ratchet_up_is_silent(self):
        rt, monitor = self._runtime()
        rt.install("max_promised", [(0, 3)])
        self._settle(rt, 1)
        rt.install("max_promised", [(0, 7)])
        self._settle(rt, 2)
        assert monitor.ok, monitor.violations

    def test_applied_ahead_of_decided_log(self):
        rt, monitor = self._runtime()
        # cursor says instance 3 is next, yet instance 2 was never
        # decided — the applied log ran ahead of consensus
        rt.install("applied", [(0, 3)])
        self._settle(rt, 1001)  # inv_tick timer mark
        assert ("applied-ahead", 2) in monitor.violations

    def test_applied_behind_decided_log_is_silent(self):
        rt, monitor = self._runtime()
        rt.install("decided", [(1, "op-a"), (2, "op-b")])
        rt.install("applied", [(0, 3)])
        self._settle(rt, 1001)
        assert monitor.ok, monitor.violations
