"""Model-based testing: BOOM-FS vs an in-memory reference filesystem.

Hypothesis drives random operation sequences against both the declarative
filesystem (full cluster: Overlog NameNode, DataNodes, client) and a
trivially-correct dict model; every response — success, failure code, and
payload — must match.  This is the strongest correctness statement in the
suite: 56 Overlog rules behave exactly like the obvious imperative
specification under arbitrary workloads.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode, FSError
from repro.sim import Cluster, LatencyModel

NAMES = ["a", "b", "c"]
SEGMENTS = st.lists(st.sampled_from(NAMES), min_size=1, max_size=3)
PAYLOADS = st.binary(min_size=0, max_size=64)


class FSModel:
    """The obvious reference implementation."""

    def __init__(self):
        self.dirs = {"/"}
        self.files: dict[str, bytes] = {}

    def parent(self, path):
        return path.rsplit("/", 1)[0] or "/"

    def exists(self, path):
        if path in self.dirs:
            return True
        if path in self.files:
            return False
        return None

    def mkdir(self, path):
        if path in self.dirs or path in self.files:
            return "exists"
        if self.parent(path) in self.files:
            return "notdir"
        if self.parent(path) not in self.dirs:
            return "noparent"
        self.dirs.add(path)
        return None

    def write(self, path, data):
        if path in self.dirs or path in self.files:
            return "exists"
        if self.parent(path) in self.files:
            return "notdir"
        if self.parent(path) not in self.dirs:
            return "noparent"
        self.files[path] = data
        return None

    def read(self, path):
        if path in self.files:
            return None, self.files[path]
        if path in self.dirs:
            return "isdir", None
        return "noent", None

    def ls(self, path):
        if path in self.files:
            return "notdir", None
        if path not in self.dirs:
            return "noent", None
        children = set()
        for p in self.dirs | set(self.files):
            if p != "/" and self.parent(p) == path:
                children.add(p.rsplit("/", 1)[1])
        return None, sorted(children)

    def rm(self, path):
        if path == "/":
            return "isroot"
        if path in self.files:
            del self.files[path]
            return None
        if path in self.dirs:
            prefix = path + "/"
            self.dirs = {d for d in self.dirs if d != path and not d.startswith(prefix)}
            self.files = {
                p: v for p, v in self.files.items() if not p.startswith(prefix)
            }
            return None
        return "noent"

    def mv(self, old, new):
        src = self.exists(old)
        if (
            src is None
            or old == "/"
            or self.exists(new) is not None
            or new == old
            or new.startswith(old + "/")
            or self.parent(new) not in self.dirs
        ):
            return "mvfail"
        if src is False:
            self.files[new] = self.files.pop(old)
            return None
        prefix = old + "/"
        moved_dirs = {d for d in self.dirs if d == old or d.startswith(prefix)}
        self.dirs -= moved_dirs
        self.dirs |= {new + d[len(old):] for d in moved_dirs}
        moved_files = {p for p in self.files if p.startswith(prefix)}
        for p in moved_files:
            self.files[new + p[len(old):]] = self.files.pop(p)
        return None


class BoomFSMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = Cluster(latency=LatencyModel(1, 1))
        self.cluster.add(BoomFSMaster("master", replication=2))
        for i in range(2):
            self.cluster.add(
                DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300)
            )
        self.fs = self.cluster.add(BoomFSClient("client", masters=["master"]))
        self.cluster.run_for(700)
        self.model = FSModel()

    def _path(self, segments):
        return "/" + "/".join(segments)

    def _attempt(self, fn):
        try:
            return None, fn()
        except FSError as exc:
            return exc.code, None

    @rule(segments=SEGMENTS)
    def mkdir(self, segments):
        path = self._path(segments)
        code, _ = self._attempt(lambda: self.fs.mkdir(path))
        assert code == self.model.mkdir(path), f"mkdir {path}"

    @rule(segments=SEGMENTS, data=PAYLOADS)
    def write(self, segments, data):
        path = self._path(segments)
        code, _ = self._attempt(lambda: self.fs.write(path, data))
        assert code == self.model.write(path, data), f"write {path}"

    @rule(segments=SEGMENTS)
    def read(self, segments):
        path = self._path(segments)
        code, got = self._attempt(lambda: self.fs.read(path))
        want_code, want = self.model.read(path)
        assert code == want_code, f"read {path}: {code} != {want_code}"
        if code is None:
            assert got == want, f"read {path} content"

    @rule(segments=SEGMENTS)
    def ls(self, segments):
        path = self._path(segments)
        code, got = self._attempt(lambda: self.fs.ls(path))
        want_code, want = self.model.ls(path)
        assert code == want_code, f"ls {path}: {code} != {want_code}"
        if code is None:
            assert got == want, f"ls {path}: {got} != {want}"

    @rule()
    def ls_root(self):
        _, want = self.model.ls("/")
        assert self.fs.ls("/") == want

    @rule(segments=SEGMENTS)
    def exists(self, segments):
        path = self._path(segments)
        assert self.fs.exists(path) == self.model.exists(path), f"exists {path}"

    @rule(segments=SEGMENTS)
    def rm(self, segments):
        path = self._path(segments)
        code, _ = self._attempt(lambda: self.fs.rm(path))
        assert code == self.model.rm(path), f"rm {path}"

    @rule(segments=SEGMENTS)
    def stat(self, segments):
        path = self._path(segments)
        code, got = self._attempt(lambda: self.fs.stat(path))
        state = self.model.exists(path)
        if state is None:
            assert code == "noent", f"stat {path}"
        elif state is True:
            assert code is None and got == (True, 0), f"stat {path}"
        else:
            assert code is None, f"stat {path}"
            assert got == (False, len(self.model.files[path])), f"stat {path}"

    @rule(old=SEGMENTS, new=SEGMENTS)
    def mv(self, old, new):
        old_p, new_p = self._path(old), self._path(new)
        code, _ = self._attempt(lambda: self.fs.mv(old_p, new_p))
        assert code == self.model.mv(old_p, new_p), f"mv {old_p} {new_p}"


TestBoomFSAgainstModel = BoomFSMachine.TestCase
TestBoomFSAgainstModel.settings = settings(
    max_examples=20, stateful_step_count=10, deadline=None
)


class BaselineFSMachine(BoomFSMachine):
    """Same machine against the imperative baseline NameNode: both
    implementations must satisfy the same model."""

    def __init__(self):
        RuleBasedStateMachine.__init__(self)
        from repro.hadoop import BaselineNameNode

        self.cluster = Cluster(latency=LatencyModel(1, 1))
        self.cluster.add(BaselineNameNode("master", replication=2))
        for i in range(2):
            self.cluster.add(
                DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300)
            )
        self.fs = self.cluster.add(BoomFSClient("client", masters=["master"]))
        self.cluster.run_for(700)
        self.model = FSModel()


TestBaselineAgainstModel = BaselineFSMachine.TestCase
TestBaselineAgainstModel.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
