"""Tests for data-locality scheduling (BOOM-MR's Hadoop-FIFO port) and
machine colocation in the network model."""


from repro.mapreduce import (
    JobRunner,
    JobSpec,
    build_mr_cluster,
    local_wordcount,
    make_input_files,
    wordcount_map,
    wordcount_reduce,
)
from repro.sim import LatencyModel, Network, Simulator


class TestColocation:
    def test_same_machine_skips_bandwidth(self):
        sim = Simulator()
        net = Network(sim, latency=LatencyModel(1, 0, kb_per_ms=1))
        net.colocate(["a", "b"])
        got = []
        net.register("b", lambda env: got.append(sim.now))
        net.register("c", lambda env: got.append(sim.now))
        payload = ("x" * 100_000,)  # ~100KB -> ~97ms on the wire
        net.send_row("a", "b", "data", payload)  # local
        net.send_row("a", "c", "data", payload)  # remote
        sim.run_until(1000)
        local_time, remote_time = got[0], got[1]
        assert local_time <= 2
        assert remote_time > 50
        assert net.stats.remote_bytes >= 100_000

    def test_separate_colocate_calls_are_distinct_machines(self):
        sim = Simulator()
        net = Network(sim)
        net.colocate(["a1", "a2"])
        net.colocate(["b1", "b2"])
        assert net.same_machine("a1", "a2")
        assert net.same_machine("b1", "b2")
        assert not net.same_machine("a1", "b1")

    def test_unregistered_addresses_not_colocated(self):
        sim = Simulator()
        net = Network(sim)
        assert not net.same_machine("x", "y")
        assert not net.same_machine("x", "x")  # unknown machines


def run_wordcount_locality(use_locality: bool, seed: int = 13):
    mr = build_mr_cluster(num_trackers=4, seed=seed)
    runner = JobRunner(mr)
    datasets = make_input_files(4000, 8, seed=seed)
    paths = runner.stage_inputs("/in", datasets)
    spec = JobSpec(0, paths, 2, wordcount_map, wordcount_reduce, "/out")
    remote_before = mr.cluster.network.stats.remote_bytes
    result = runner.run_job(spec, use_locality=use_locality)
    remote = mr.cluster.network.stats.remote_bytes - remote_before
    output = runner.fetch_output("/out")
    assert output == local_wordcount(datasets)
    return result, remote, mr


class TestLocalityScheduling:
    def test_locality_hints_computed(self):
        mr = build_mr_cluster(num_trackers=4, seed=13)
        runner = JobRunner(mr)
        paths = runner.stage_inputs("/in", make_input_files(500, 4, seed=13))
        spec = JobSpec(0, paths, 2, wordcount_map, wordcount_reduce)
        hints = runner.locality_hints(spec)
        assert set(hints) == {0, 1, 2, 3}
        for trackers in hints.values():
            assert all(t.startswith("tt") for t in trackers)

    def test_local_assignments_dominate(self):
        result, _, mr = run_wordcount_locality(use_locality=True)
        jt = mr.jobtracker
        local = 0
        total = 0
        task_locs = {
            (j, t): addr for j, t, addr in jt.runtime.rows("task_loc")
        }
        local_sets: dict[tuple, set] = {}
        for j, t, addr in jt.runtime.rows("task_loc"):
            local_sets.setdefault((j, t), set()).add(addr)
        for j, t, a, tracker, state, _ in jt.attempts(result.job_id):
            if t < 1_000_000 and a == 0:
                total += 1
                if tracker in local_sets.get((j, t), set()):
                    local += 1
        assert total == 8
        assert local >= total * 0.6, f"only {local}/{total} local"

    def test_locality_reduces_remote_bytes(self):
        _, remote_with, _ = run_wordcount_locality(use_locality=True)
        _, remote_without, _ = run_wordcount_locality(use_locality=False)
        assert remote_with < remote_without

    def test_output_identical_with_and_without_locality(self):
        r1, _, _ = run_wordcount_locality(use_locality=True)
        r2, _, _ = run_wordcount_locality(use_locality=False)
        # same tasks completed either way
        assert len(r1.map_times) == len(r2.map_times) == 8
