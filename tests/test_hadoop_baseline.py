"""Tests for the imperative baseline stack: protocol parity with the
declarative components on the same clients/DataNodes."""

import pytest

from repro.boomfs import BoomFSClient, DataNode, FSError
from repro.hadoop import BaselineNameNode
from repro.sim import Cluster, LatencyModel


def make_cluster(datanodes=3, replication=2, seed=0):
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 1))
    master = cluster.add(BaselineNameNode("master", replication=replication))
    for i in range(datanodes):
        cluster.add(DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300))
    fs = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(700)
    return cluster, master, fs


@pytest.fixture()
def baseline():
    return make_cluster()


class TestBaselineNameNode:
    def test_mkdir_ls_exists(self, baseline):
        _, master, fs = baseline
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.create("/a/f")
        assert fs.ls("/a") == ["b", "f"]
        assert fs.exists("/a/b") is True
        assert fs.exists("/a/f") is False
        assert fs.exists("/nope") is None

    def test_error_codes_match_declarative_master(self, baseline):
        _, _, fs = baseline
        with pytest.raises(FSError, match="noparent"):
            fs.mkdir("/x/y")
        fs.mkdir("/x")
        with pytest.raises(FSError, match="exists"):
            fs.mkdir("/x")
        with pytest.raises(FSError, match="noent"):
            fs.ls("/ghost")
        with pytest.raises(FSError, match="isroot"):
            fs.rm("/")
        fs.create("/f")
        with pytest.raises(FSError, match="notdir"):
            fs.ls("/f")

    def test_write_read_roundtrip(self, baseline):
        _, _, fs = baseline
        data = b"imperative bytes" * 64
        fs.write("/blob", data)
        assert fs.read("/blob") == data

    def test_rm_subtree(self, baseline):
        _, master, fs = baseline
        fs.makedirs("/a/b/c")
        fs.create("/a/b/c/f")
        fs.rm("/a")
        assert set(master.paths()) == {"/"}

    def test_mv(self, baseline):
        _, _, fs = baseline
        fs.mkdir("/src")
        fs.write("/src/f", b"data")
        fs.mkdir("/dst")
        fs.mv("/src/f", "/dst/g")
        assert fs.read("/dst/g") == b"data"
        with pytest.raises(FSError, match="mvfail"):
            fs.mv("/ghost", "/dst/h")

    def test_replication_and_rereplication(self):
        cluster, master, fs = make_cluster(datanodes=4, replication=3)
        fs.write("/f", b"keep" * 40)
        cluster.run_for(300)
        fid = master.resolve("/f")
        (cid,) = master.chunks_of(fid)
        locs = master.chunk_locations(cid)
        assert len(locs) == 3
        cluster.crash(locs[0])
        cluster.run_for(15_000)
        new_locs = master.chunk_locations(cid)
        assert len(new_locs) == 3
        assert locs[0] not in new_locs

    def test_gc_of_removed_file(self):
        cluster, master, fs = make_cluster()
        fs.write("/f", b"z" * 100)
        cluster.run_for(300)
        fs.rm("/f")
        cluster.run_for(8000)
        stored = sum(
            len(cluster.get(f"dn{i}").chunks) for i in range(3)
        )
        assert stored == 0

    def test_datanode_liveness(self):
        cluster, master, fs = make_cluster()
        cluster.crash("dn0")
        cluster.run_for(6000)
        assert master.live_datanodes() == ["dn1", "dn2"]

    def test_restart_loses_metadata(self):
        cluster, master, fs = make_cluster()
        fs.mkdir("/d")
        cluster.crash("master")
        cluster.restart("master")
        cluster.run_for(500)
        assert set(master.paths()) == {"/"}


class TestBehaviouralParity:
    """The same scripted workload must leave both NameNodes with the same
    visible namespace — the property E4 relies on."""

    SCRIPT = [
        ("mkdir", "/a"),
        ("mkdir", "/a/b"),
        ("create", "/a/b/f1"),
        ("create", "/a/f2"),
        ("mv", ("/a/b/f1", "/a/b/f3")),
        ("rm", "/a/f2"),
        ("mkdir", "/c"),
    ]

    def _apply(self, fs):
        for op, arg in self.SCRIPT:
            if op == "mv":
                fs.mv(*arg)
            else:
                getattr(fs, op)(arg)
        listing = {}
        for d in ("/", "/a", "/a/b", "/c"):
            listing[d] = fs.ls(d)
        return listing

    def test_same_namespace_after_same_script(self):
        from repro.boomfs import BoomFSMaster

        results = []
        for master_cls in (BoomFSMaster, BaselineNameNode):
            cluster = Cluster(latency=LatencyModel(1, 1))
            cluster.add(master_cls("master", replication=2))
            for i in range(2):
                cluster.add(
                    DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300)
                )
            fs = cluster.add(BoomFSClient("client", masters=["master"]))
            cluster.run_for(700)
            results.append(self._apply(fs))
        assert results[0] == results[1]
