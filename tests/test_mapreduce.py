"""Integration tests for BOOM-MR: the declarative JobTracker, TaskTrackers,
shuffle, speculation policies, and fault handling."""


from repro.mapreduce import (
    JobRunner,
    JobSpec,
    build_mr_cluster,
    local_grep,
    local_wordcount,
    make_grep_map,
    grep_reduce,
    make_input_files,
    run_wordcount,
    wordcount_map,
    wordcount_reduce,
)


class TestWordCount:
    def test_output_matches_local_reference(self):
        result, output, _ = run_wordcount(
            num_trackers=4, num_maps=6, num_reduces=3, words_per_file=800, seed=7
        )
        expected = local_wordcount(make_input_files(800, 6, seed=7))
        assert output == expected

    def test_all_tasks_complete(self):
        result, _, mr = run_wordcount(
            num_trackers=3, num_maps=5, num_reduces=2, words_per_file=500, seed=1
        )
        states = mr.jobtracker.task_states(result.job_id)
        assert len(states) == 7
        assert all(s == "done" for s in states.values())

    def test_task_timings_recorded(self):
        result, _, _ = run_wordcount(
            num_trackers=3, num_maps=5, num_reduces=2, words_per_file=500, seed=1
        )
        assert len(result.map_times) == 5
        assert len(result.reduce_times) == 2
        assert all(end >= start for start, end in result.map_times.values())
        # Reduces cannot finish before the last map (shuffle barrier).
        last_map = max(end for _, end in result.map_times.values())
        assert all(end >= last_map for _, end in result.reduce_times.values())

    def test_map_only_job(self):
        mr = build_mr_cluster(num_trackers=2, seed=2)
        runner = JobRunner(mr)
        paths = runner.stage_inputs("/in", make_input_files(300, 3, seed=2))
        spec = JobSpec(
            job_id=0,
            inputs=paths,
            num_reduces=0,
            map_func=wordcount_map,
            reduce_func=wordcount_reduce,
        )
        result = runner.run_job(spec)
        assert len(result.map_times) == 3
        assert result.reduce_times == {}

    def test_deterministic_given_seed(self):
        a = run_wordcount(num_trackers=3, num_maps=4, num_reduces=2,
                          words_per_file=400, seed=9)[0]
        b = run_wordcount(num_trackers=3, num_maps=4, num_reduces=2,
                          words_per_file=400, seed=9)[0]
        assert a.duration_ms == b.duration_ms
        assert a.map_completion_times() == b.map_completion_times()


class TestGrep:
    def test_grep_matches_local_reference(self):
        mr = build_mr_cluster(num_trackers=3, seed=4)
        runner = JobRunner(mr)
        datasets = make_input_files(600, 4, seed=4)
        paths = runner.stage_inputs("/in", datasets)
        spec = JobSpec(
            job_id=0,
            inputs=paths,
            num_reduces=2,
            map_func=make_grep_map("paxos"),
            reduce_func=grep_reduce,
            output_dir="/out",
        )
        runner.run_job(spec)
        output = runner.fetch_output("/out")
        assert output == local_grep(datasets, "paxos")
        assert output  # the corpus does contain 'paxos'


class TestMultipleJobs:
    def test_two_jobs_fifo_order(self):
        mr = build_mr_cluster(num_trackers=3, seed=5)
        runner = JobRunner(mr)
        paths1 = runner.stage_inputs("/in1", make_input_files(400, 3, seed=5))
        paths2 = runner.stage_inputs("/in2", make_input_files(400, 3, seed=6))
        spec1 = JobSpec(0, paths1, 2, wordcount_map, wordcount_reduce, "/out1")
        spec2 = JobSpec(0, paths2, 2, wordcount_map, wordcount_reduce, "/out2")
        r1 = runner.run_job(spec1)
        r2 = runner.run_job(spec2)
        assert runner.fetch_output("/out1") == local_wordcount(
            make_input_files(400, 3, seed=5)
        )
        assert runner.fetch_output("/out2") == local_wordcount(
            make_input_files(400, 3, seed=6)
        )
        assert r2.completed_ms > r1.completed_ms


class TestSpeculation:
    def _run(self, policy, seed=3):
        return run_wordcount(
            num_trackers=6,
            num_maps=12,
            num_reduces=4,
            words_per_file=2000,
            policy=policy,
            straggler_count=2,
            straggler_factor=8.0,
            seed=seed,
        )

    def test_late_beats_fifo_with_stragglers(self):
        fifo, _, _ = self._run("fifo")
        late, _, mr = self._run("late")
        assert late.duration_ms < fifo.duration_ms * 0.8
        assert len(mr.jobtracker.speculative_attempts(late.job_id)) >= 1

    def test_fifo_never_speculates(self):
        result, _, mr = self._run("fifo")
        assert mr.jobtracker.speculative_attempts(result.job_id) == []

    def test_speculation_does_not_change_output(self):
        _, out_fifo, _ = self._run("fifo")
        _, out_late, _ = self._run("late")
        _, out_hadoop, _ = self._run("hadoop")
        assert out_fifo == out_late == out_hadoop

    def test_at_most_one_backup_per_task(self):
        result, _, mr = self._run("late")
        per_task = {}
        for j, t, a, *_ in mr.jobtracker.attempts(result.job_id):
            per_task[(j, t)] = max(per_task.get((j, t), 0), a)
        assert all(a <= 1 for a in per_task.values())


class TestFaultTolerance:
    def test_tracker_crash_mid_job_reschedules(self):
        mr = build_mr_cluster(num_trackers=4, seed=8)
        runner = JobRunner(mr)
        datasets = make_input_files(3000, 8, seed=8)
        paths = runner.stage_inputs("/in", datasets)
        spec = JobSpec(0, paths, 3, wordcount_map, wordcount_reduce, "/out")
        job_id = mr.jobtracker.submit(spec)
        # Kill a tracker while maps are in flight.
        mr.cluster.sim.schedule(1000, lambda: mr.cluster.crash("tt0"))
        done = mr.cluster.run_until(
            lambda: mr.jobtracker.is_complete(job_id), max_time_ms=300_000
        )
        assert done, mr.jobtracker.task_states(job_id)
        assert runner.fetch_output("/out") == local_wordcount(datasets)

    def test_tracker_crash_after_map_completion_triggers_reexecution(self):
        # Crash a tracker after maps finish but before reduces fetch: the
        # fetch_failed path must re-execute the lost map outputs.
        mr = build_mr_cluster(num_trackers=3, seed=9)
        runner = JobRunner(mr)
        datasets = make_input_files(1500, 6, seed=9)
        paths = runner.stage_inputs("/in", datasets)
        spec = JobSpec(0, paths, 2, wordcount_map, wordcount_reduce, "/out")
        jt = mr.jobtracker
        job_id = jt.submit(spec)
        # Wait until every map is done, then kill a tracker that holds
        # map output.
        def maps_done():
            states = jt.task_states(job_id)
            map_states = [s for t, s in states.items() if t < 1_000_000]
            return bool(map_states) and all(s == "done" for s in map_states)

        assert mr.cluster.run_until(maps_done, max_time_ms=300_000)
        victim = next(
            t.address for t in mr.trackers if t.map_outputs
        )
        mr.cluster.crash(victim)
        done = mr.cluster.run_until(
            lambda: jt.is_complete(job_id), max_time_ms=300_000
        )
        assert done, jt.task_states(job_id)
        assert runner.fetch_output("/out") == local_wordcount(datasets)


class TestBaselineStack:
    def _factory(self, addr, policy, seed):
        from repro.hadoop import BaselineJobTracker

        return BaselineJobTracker(addr, policy="fifo")

    def test_baseline_jobtracker_produces_same_output(self):
        expected = local_wordcount(make_input_files(800, 6, seed=7))
        _, output, _ = run_wordcount(
            num_trackers=4, num_maps=6, num_reduces=3, words_per_file=800,
            seed=7, jobtracker_factory=self._factory,
        )
        assert output == expected

    def test_baseline_fs_produces_same_output(self):
        expected = local_wordcount(make_input_files(800, 6, seed=7))
        _, output, _ = run_wordcount(
            num_trackers=4, num_maps=6, num_reduces=3, words_per_file=800,
            seed=7, fs_kind="hadoop",
        )
        assert output == expected

    def test_full_baseline_stack(self):
        expected = local_wordcount(make_input_files(800, 6, seed=7))
        _, output, _ = run_wordcount(
            num_trackers=4, num_maps=6, num_reduces=3, words_per_file=800,
            seed=7, jobtracker_factory=self._factory, fs_kind="hadoop",
        )
        assert output == expected

    def test_baseline_hadoop_speculation(self):
        from repro.hadoop import BaselineJobTracker

        def spec_factory(addr, policy, seed):
            return BaselineJobTracker(addr, policy="hadoop")

        fifo, _, _ = run_wordcount(
            num_trackers=6, num_maps=12, num_reduces=4, words_per_file=2000,
            seed=3, straggler_count=2, straggler_factor=8.0,
            jobtracker_factory=self._factory,
        )
        spec, _, mr = run_wordcount(
            num_trackers=6, num_maps=12, num_reduces=4, words_per_file=2000,
            seed=3, straggler_count=2, straggler_factor=8.0,
            jobtracker_factory=spec_factory,
        )
        assert spec.duration_ms <= fifo.duration_ms
