"""Differential harness for the telemetry plane: the simulator and the
asyncio backend must converge the monitor node to identical state.

Every seed builds a small fleet of sensor nodes with deterministic
seeded metrics (a counter, a percentile sketch, a distinct sketch and a
gauge that may trip a threshold alert), publishes two explicit telemetry
rounds with pinned clocks (timer cadence differs between virtual and
real time, so rounds are driven from the test), and compares the final
monitor tables — raw samples, every rollup relation and the alarm set —
plus the multiset of alarm firings, exactly across backends.

The sketch aggregates make this non-trivial: rollups fold t-digest and
HLL payloads arriving in backend-dependent order, so equality here is
the order-invariance guarantee of ``percentile<>`` /
``count_distinct_approx<>`` end-to-end, not just of the sketch unit
tests.
"""

import random
from collections import Counter

import pytest

from repro.sim import Cluster, LatencyModel, Process
from repro.transport import AsyncCluster

SEEDS = range(20)

WORKERS = 4

#: Per-node threshold alert with a clearing twin: exercises alarm
#: derivation *and* retraction under both backends.
QUEUE_ALERTS = """
program queue_alerts;

qa1 alarm("deep-queue", Node, V) :-
        metric_sample(Node, "work.queue_depth", "gauge", V, _), V > 50;

qa2 delete alarm("deep-queue", Node, D) :-
        alarm("deep-queue", Node, D),
        metric_sample(Node, "work.queue_depth", "gauge", V, _), V <= 50;
"""


class SensorNode(Process):
    """A worker whose metrics are a pure function of (seed, round)."""

    def __init__(self, address, seed):
        super().__init__(address)
        self.seed = seed

    def observe_round(self, round_no):
        rng = random.Random(f"{self.seed}:{self.address}:{round_no}")
        ops = self.metrics.counter("work.ops")
        lat = self.metrics.percentile("work.latency_ms")
        keys = self.metrics.distinct("work.keys")
        for _ in range(rng.randint(20, 60)):
            ops.inc()
            lat.observe(rng.expovariate(1 / 20))
            keys.add(f"key-{rng.randint(0, 200)}")
        # Round 1 can spike past the alert threshold; round 2 drains the
        # queue on some nodes, so alarms both fire and clear.
        self.metrics.gauge("work.queue_depth").set(rng.randint(0, 100))


def _run(cluster, seed):
    workers = [
        cluster.add(SensorNode(f"w{i}", seed)) for i in range(WORKERS)
    ]
    monitor = cluster.enable_telemetry(
        interval_ms=None,
        include_transport=False,
        include_traces=False,
        extra_source=QUEUE_ALERTS,
    )
    expected = 4 * WORKERS  # counter + gauge + percentile + distinct each
    for round_no in (1, 2):
        for worker in workers:
            worker.observe_round(round_no)
            worker.publish_telemetry(clock=round_no)
        converged = cluster.run_until(
            lambda: len(monitor.samples()) == expected
            and all(
                clock == round_no for *_x, clock in monitor.samples()
            ),
            max_time_ms=20_000,
        )
        assert converged, f"monitor did not converge in round {round_no}"
    state = {
        "samples": monitor.samples(),
        "counters": monitor.rollup_counters(),
        "gauges": monitor.rollup_gauges(),
        "percentiles": monitor.rollup_percentiles(),
        "distincts": monitor.rollup_distincts(),
        "alarms": monitor.alarms(),
    }
    firings = Counter(row for _ms, row in monitor.alert_log)
    cluster.shutdown()
    return state, firings


@pytest.mark.parametrize("seed", SEEDS)
def test_monitor_state_backends_agree(seed):
    sim_state, sim_firings = _run(
        Cluster(seed=seed, latency=LatencyModel(1, 2)), seed
    )
    async_state, async_firings = _run(
        AsyncCluster(seed=seed, time_scale=10.0), seed
    )
    assert sim_state == async_state
    assert sim_firings == async_firings
    # sanity: the harness exercises real rollups, not empty tables
    assert sim_state["counters"]
    assert sim_state["percentiles"]
    assert sim_state["distincts"]


def test_some_seed_fires_and_clears_alarms():
    """At least one seed must exercise both alarm transitions, or the
    differential comparison proves nothing about retraction."""
    fired = cleared = False
    for seed in SEEDS:
        state, firings = _run(
            Cluster(seed=seed, latency=LatencyModel(1, 2)), seed
        )
        if firings:
            fired = True
        if sum(firings.values()) > len(state["alarms"]):
            cleared = True
        if fired and cleared:
            break
    assert fired and cleared
