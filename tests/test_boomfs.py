"""Integration tests for BOOM-FS: the declarative NameNode, DataNodes,
client, failure handling, garbage collection and re-replication."""

import pytest

from repro.boomfs import BoomFSClient, BoomFSMaster, DataNode, FSError
from repro.sim import Cluster, LatencyModel


def make_cluster(datanodes=3, replication=2, seed=0, loss_rate=0.0):
    cluster = Cluster(
        seed=seed, latency=LatencyModel(1, 1), loss_rate=loss_rate
    )
    master = cluster.add(BoomFSMaster("master", replication=replication))
    for i in range(datanodes):
        cluster.add(
            DataNode(f"dn{i}", masters=["master"], heartbeat_ms=300)
        )
    fs = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(700)  # let DataNodes register
    return cluster, master, fs


@pytest.fixture()
def fs_setup():
    return make_cluster()


class TestDirectoryOps:
    def test_mkdir_and_ls(self, fs_setup):
        _, master, fs = fs_setup
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.ls("/") == ["a"]
        assert fs.ls("/a") == ["b"]
        assert master.paths() == {"/": 0, "/a": 1, "/a/b": 2}

    def test_mkdir_missing_parent_fails(self, fs_setup):
        _, _, fs = fs_setup
        with pytest.raises(FSError, match="noparent"):
            fs.mkdir("/no/such/parent")

    def test_mkdir_duplicate_fails(self, fs_setup):
        _, _, fs = fs_setup
        fs.mkdir("/a")
        with pytest.raises(FSError, match="exists"):
            fs.mkdir("/a")

    def test_makedirs(self, fs_setup):
        _, _, fs = fs_setup
        fs.makedirs("/x/y/z")
        assert fs.ls("/x/y") == ["z"]

    def test_ls_nonexistent(self, fs_setup):
        _, _, fs = fs_setup
        with pytest.raises(FSError, match="noent"):
            fs.ls("/ghost")

    def test_ls_on_file_fails(self, fs_setup):
        _, _, fs = fs_setup
        fs.create("/f")
        with pytest.raises(FSError, match="notdir"):
            fs.ls("/f")

    def test_empty_dir_lists_empty(self, fs_setup):
        _, _, fs = fs_setup
        fs.mkdir("/empty")
        assert fs.ls("/empty") == []

    def test_exists(self, fs_setup):
        _, _, fs = fs_setup
        fs.mkdir("/d")
        fs.create("/d/f")
        assert fs.exists("/d") is True
        assert fs.exists("/d/f") is False
        assert fs.exists("/nope") is None

    def test_create_under_file_fails(self, fs_setup):
        _, _, fs = fs_setup
        fs.create("/f")
        with pytest.raises(FSError, match="notdir"):
            fs.create("/f/child")


class TestRemove:
    def test_rm_file(self, fs_setup):
        _, master, fs = fs_setup
        fs.create("/f")
        fs.rm("/f")
        assert fs.exists("/f") is None
        assert master.paths() == {"/": 0}

    def test_rm_missing_fails(self, fs_setup):
        _, _, fs = fs_setup
        with pytest.raises(FSError, match="noent"):
            fs.rm("/ghost")

    def test_rm_root_fails(self, fs_setup):
        _, _, fs = fs_setup
        with pytest.raises(FSError, match="isroot"):
            fs.rm("/")

    def test_rm_subtree(self, fs_setup):
        _, master, fs = fs_setup
        fs.makedirs("/a/b/c")
        fs.create("/a/b/c/f1")
        fs.create("/a/f2")
        fs.rm("/a")
        assert master.paths() == {"/": 0}
        assert master.files() == [(0, -1, "", True)]

    def test_rm_does_not_touch_siblings(self, fs_setup):
        _, _, fs = fs_setup
        fs.mkdir("/a")
        fs.mkdir("/ab")  # name-prefix sibling: must survive rm /a
        fs.create("/ab/f")
        fs.rm("/a")
        assert fs.ls("/") == ["ab"]
        assert fs.ls("/ab") == ["f"]


class TestRename:
    def test_mv_file(self, fs_setup):
        _, master, fs = fs_setup
        fs.create("/old")
        fs.mv("/old", "/new")
        assert fs.exists("/old") is None
        assert fs.exists("/new") is False

    def test_mv_directory_subtree(self, fs_setup):
        _, master, fs = fs_setup
        fs.makedirs("/a/b")
        fs.create("/a/b/f")
        fs.mkdir("/target")
        fs.mv("/a", "/target/a2")
        assert sorted(master.paths()) == [
            "/",
            "/target",
            "/target/a2",
            "/target/a2/b",
            "/target/a2/b/f",
        ]

    def test_mv_into_own_subtree_fails(self, fs_setup):
        _, _, fs = fs_setup
        fs.makedirs("/a/b")
        with pytest.raises(FSError, match="mvfail"):
            fs.mv("/a", "/a/b/c")

    def test_mv_to_existing_target_fails(self, fs_setup):
        _, _, fs = fs_setup
        fs.create("/x")
        fs.create("/y")
        with pytest.raises(FSError, match="mvfail"):
            fs.mv("/x", "/y")

    def test_mv_missing_source_fails(self, fs_setup):
        _, _, fs = fs_setup
        with pytest.raises(FSError, match="mvfail"):
            fs.mv("/ghost", "/elsewhere")

    def test_data_follows_rename(self, fs_setup):
        _, _, fs = fs_setup
        fs.write("/f", b"payload")
        fs.mv("/f", "/g")
        assert fs.read("/g") == b"payload"


class TestDataPath:
    def test_write_read_roundtrip(self, fs_setup):
        _, _, fs = fs_setup
        data = bytes(range(256)) * 40
        fs.write("/blob", data)
        assert fs.read("/blob") == data

    def test_multi_chunk_file(self):
        cluster, master, fs = make_cluster()
        fs.session.chunk_size = 1000
        data = b"0123456789" * 450  # 4500 bytes -> 5 chunks
        chunks = fs.write("/big", data)
        assert chunks == 5
        assert fs.read("/big") == data

    def test_empty_file(self, fs_setup):
        _, _, fs = fs_setup
        fs.write("/empty", b"")
        assert fs.read("/empty") == b""

    def test_replication_places_on_distinct_nodes(self, fs_setup):
        cluster, master, fs = fs_setup
        fs.write("/f", b"x" * 10)
        cluster.run_for(100)
        (cid,) = master.chunks_of(master.paths()["/f"])
        locs = master.chunk_locations(cid)
        assert len(locs) == 2  # replication factor
        assert len(set(locs)) == 2

    def test_read_missing_file_fails(self, fs_setup):
        _, _, fs = fs_setup
        with pytest.raises(FSError, match="noent"):
            fs.read("/ghost")

    def test_write_existing_path_fails(self, fs_setup):
        _, _, fs = fs_setup
        fs.write("/f", b"1")
        with pytest.raises(FSError, match="exists"):
            fs.write("/f", b"2")

    def test_read_survives_one_replica_crash(self, fs_setup):
        cluster, master, fs = fs_setup
        fs.write("/f", b"important" * 100)
        cluster.run_for(100)
        (cid,) = master.chunks_of(master.paths()["/f"])
        locs = master.chunk_locations(cid)
        cluster.crash(locs[0])
        assert fs.read("/f") == b"important" * 100


class TestDataNodeLiveness:
    def test_dead_datanode_expires(self):
        cluster, master, fs = make_cluster(datanodes=3)
        assert master.live_datanodes() == ["dn0", "dn1", "dn2"]
        cluster.crash("dn1")
        cluster.run_for(6000)
        assert master.live_datanodes() == ["dn0", "dn2"]
        # its hb_chunk rows are swept too
        assert all(addr != "dn1" for addr, _, _ in master.runtime.rows("hb_chunk"))

    def test_restarted_datanode_reregisters(self):
        cluster, master, fs = make_cluster(datanodes=2)
        cluster.crash("dn0")
        cluster.run_for(6000)
        assert master.live_datanodes() == ["dn1"]
        cluster.restart("dn0")
        cluster.run_for(1000)
        assert master.live_datanodes() == ["dn0", "dn1"]


class TestGarbageCollection:
    def test_removed_file_chunks_are_collected(self):
        cluster, master, fs = make_cluster(datanodes=3, replication=2)
        fs.write("/f", b"z" * 500)
        cluster.run_for(200)
        stored = sum(len(cluster.get(f"dn{i}").chunks) for i in range(3))
        assert stored == 2
        fs.rm("/f")
        cluster.run_for(8000)
        stored = sum(len(cluster.get(f"dn{i}").chunks) for i in range(3))
        assert stored == 0


class TestReReplication:
    def test_lost_replica_is_restored(self):
        cluster, master, fs = make_cluster(datanodes=4, replication=3)
        fs.write("/f", b"precious" * 50)
        cluster.run_for(200)
        (cid,) = master.chunks_of(master.paths()["/f"])
        locs = master.chunk_locations(cid)
        assert len(locs) == 3
        cluster.crash(locs[0])
        cluster.run_for(15_000)
        new_locs = master.chunk_locations(cid)
        assert len(new_locs) == 3
        assert locs[0] not in new_locs


class TestMessageLoss:
    def test_fs_survives_lossy_network(self):
        # 5% message loss; full chunk reports and RPC retries recover.
        cluster, master, fs = make_cluster(
            datanodes=3, replication=2, loss_rate=0.05, seed=11
        )
        fs.mkdir("/d")
        for i in range(5):
            fs.write(f"/d/f{i}", bytes([i]) * 200)
        cluster.run_for(3000)
        for i in range(5):
            assert fs.read(f"/d/f{i}") == bytes([i]) * 200


class TestMasterRestart:
    def test_cold_master_loses_metadata_but_datanodes_rereport(self):
        # Without Paxos (paper section 4), a NameNode restart loses all
        # metadata -- this is exactly the failure the availability
        # revision addresses.
        cluster, master, fs = make_cluster()
        fs.mkdir("/d")
        fs.write("/d/f", b"data")
        cluster.crash("master")
        cluster.restart("master")
        cluster.run_for(2000)
        assert master.paths() == {"/": 0}  # metadata gone
        assert master.live_datanodes() == ["dn0", "dn1", "dn2"]  # dns re-register
        # chunk inventory resurfaces via heartbeat full reports
        assert len(master.runtime.rows("hb_chunk")) > 0
