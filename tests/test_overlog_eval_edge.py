"""Edge-case tests for expression evaluation, catalog behaviour and the
evaluator's incremental machinery."""

import pytest

from repro.overlog import (
    CatalogError,
    EvaluationError,
    OverlogRuntime,
    TableDecl,
)
from repro.overlog.catalog import Table


def make(src, **kw):
    return OverlogRuntime("program t;\n" + src, **kw)


class TestExpressionEdges:
    def test_division_by_zero_wrapped(self):
        rt = make(
            """
            define(n, keys(0), {Int});
            define(out, keys(0), {Int});
            out(Y) :- n(X), Y := 10 / X;
            """
        )
        rt.insert("n", (0,))
        with pytest.raises((EvaluationError, ZeroDivisionError)):
            rt.tick()

    def test_string_comparison(self):
        rt = make(
            """
            define(s, keys(0), {Str});
            define(late_names, keys(0), {Str});
            late_names(X) :- s(X), X > "m";
            """
        )
        rt.insert_many("s", [("alpha",), ("zulu",)])
        rt.tick()
        assert rt.rows("late_names") == [("zulu",)]

    def test_boolean_short_circuit(self):
        # `X != 0 && 10 / X > 1` must not divide when X == 0.
        rt = make(
            """
            define(n, keys(0), {Int});
            define(ok, keys(0), {Int});
            ok(X) :- n(X), X != 0 && 10 / X > 1;
            """
        )
        rt.insert_many("n", [(0,), (2,), (100,)])
        rt.tick()
        assert sorted(rt.rows("ok")) == [(2,)]

    def test_nil_handling(self):
        rt = make(
            """
            define(v, keys(0), {Int, Any});
            define(missing, keys(0), {Int});
            missing(K) :- v(K, X), f_is_nil(X);
            """
        )
        rt.insert_many("v", [(1, None), (2, "x")])
        rt.tick()
        assert rt.rows("missing") == [(1,)]

    def test_negative_numbers(self):
        rt = make(
            """
            define(n, keys(0), {Int});
            define(out, keys(0, 1), {Int, Int});
            out(X, Y) :- n(X), Y := -X * 2;
            """
        )
        rt.insert("n", (5,))
        rt.tick()
        assert rt.rows("out") == [(5, -10)]

    def test_float_int_mixed_division(self):
        rt = make(
            """
            define(n, keys(0), {Int});
            define(out, keys(0, 1), {Int, Float});
            out(X, Y) :- n(X), Y := X / 2.0;
            """
        )
        rt.insert("n", (7,))
        rt.tick()
        assert rt.rows("out") == [(7, 3.5)]


class TestTableDirect:
    def decl(self, keys=(0,)):
        return TableDecl("t", tuple(keys), ("Int", "Str"))

    def test_lookup_key(self):
        table = Table(self.decl())
        table.insert((1, "a"))
        assert table.lookup_key((1,)) == (1, "a")
        assert table.lookup_key((9,)) is None

    def test_rows_matching_index(self):
        table = Table(self.decl())
        for i in range(10):
            table.insert((i, "x" if i % 2 else "y"))
        assert len(table.rows_matching(1, "x")) == 5
        assert table.rows_matching(1, "zzz") == []

    def test_index_maintained_across_updates(self):
        table = Table(self.decl())
        table.insert((1, "a"))
        assert table.rows_matching(1, "a") == [(1, "a")]
        table.insert((1, "b"))  # PK replace
        assert table.rows_matching(1, "a") == []
        assert table.rows_matching(1, "b") == [(1, "b")]
        table.delete((1, "b"))
        assert table.rows_matching(1, "b") == []

    def test_clear_resets_indexes(self):
        table = Table(self.decl())
        table.insert((1, "a"))
        table.rows_matching(1, "a")
        table.clear()
        assert table.rows_matching(1, "a") == []
        assert len(table) == 0

    def test_bad_key_spec_rejected(self):
        with pytest.raises(CatalogError):
            Table(TableDecl("t", (5,), ("Int",)))


class TestIncrementalMachinery:
    def test_derived_view_tracks_growth_across_steps(self):
        rt = make(
            """
            define(edge, keys(0, 1), {Int, Int});
            define(reach, keys(0, 1), {Int, Int});
            reach(X, Y) :- edge(X, Y);
            reach(X, Z) :- edge(X, Y), reach(Y, Z);
            """
        )
        for i in range(10):
            rt.insert("edge", (i, i + 1))
            rt.tick()
        assert len(rt.rows("reach")) == 55

    def test_deletion_triggers_negation_readers_next_step(self):
        rt = make(
            """
            define(base, keys(0), {Int});
            define(blocked, keys(0), {Int});
            define(out, keys(0), {Int});
            event(rm, 1);
            out(X) :- base(X), notin blocked(X);
            del delete blocked(X) :- rm(X), blocked(X);
            """
        )
        rt.install("base", [(1,)])
        rt.install("blocked", [(1,)])
        rt.tick()
        assert rt.rows("out") == []
        rt.insert("rm", (1,))
        rt.tick()  # deletion applies post-fixpoint
        rt.tick()  # full re-eval of the negation reader
        assert rt.rows("out") == [(1,)]

    def test_pk_displacement_triggers_negation_readers(self):
        rt = make(
            """
            define(reg, keys(0), {Int, Str});
            define(calm, keys(0), {Int});
            define(probe, keys(0), {Int});
            calm(X) :- probe(X), notin reg(0, "busy");
            """
        )
        rt.install("reg", [(0, "busy")])
        rt.install("probe", [(1,)])
        rt.tick()
        assert rt.rows("calm") == []
        # PK update 'busy' -> 'idle' removes the row the negation sees.
        rt.insert("reg", (0, "idle"))
        rt.tick()
        rt.tick()
        assert rt.rows("calm") == [(1,)]

    def test_no_rederivation_of_deleted_tuples_without_new_delta(self):
        # Authentic Overlog: a deleted derived tuple stays deleted until a
        # new delta re-fires the deriving rule.
        rt = make(
            """
            define(src, keys(0), {Int});
            define(view, keys(0), {Int});
            event(purge, 1);
            view(X) :- src(X);
            del delete view(X) :- purge(X), view(X);
            """
        )
        rt.insert("src", (1,))
        rt.tick()
        assert rt.rows("view") == [(1,)]
        rt.insert("purge", (1,))
        rt.tick()
        rt.tick()
        rt.tick()
        assert rt.rows("view") == []  # not resurrected
        rt.insert("src", (1,))  # duplicate: no delta, nothing changes
        rt.tick()
        assert rt.rows("view") == []


class TestRuntimeHelpers:
    def test_lookup_by_column(self):
        rt = make("define(t, keys(0), {Int, Str, Int});")
        rt.install("t", [(1, "a", 10), (2, "b", 10), (3, "a", 20)])
        assert sorted(rt.lookup("t", _1="a")) == [(1, "a", 10), (3, "a", 20)]
        assert rt.lookup("t", _1="a", _2=20) == [(3, "a", 20)]

    def test_extended_merges_programs(self):
        rt = make("define(a, keys(0), {Int});")
        extended = rt.extended(
            "program extra; define(b, keys(0), {Int}); b(X) :- a(X);"
        )
        extended.insert("a", (1,))
        extended.tick()
        assert extended.rows("b") == [(1,)]

    def test_conflicting_redeclaration_rejected(self):
        rt = make("define(a, keys(0), {Int});")
        with pytest.raises(CatalogError):
            rt.extended("program extra; define(a, keys(0), {Str});")
