"""Sketch accuracy and algebra: the guarantees the telemetry plane
leans on (docs/TELEMETRY.md).

Gates mirrored by benchmark A6: t-digest p99 within 1% *rank* error,
HLL within 2% relative error at 10^5 distinct items, and merge-order
invariance (exact for HLL register-max; canonical-fold-determinism for
the t-digest aggregate).
"""

import ast
import random
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import (
    HyperLogLog,
    TDigest,
    fold_count_distinct,
    fold_percentile,
    is_hll_payload,
    is_tdigest_payload,
)

# -- t-digest ------------------------------------------------------------------


def _rank_error(data, digest, q):
    """|empirical rank of the estimate - q| — the error a t-digest bounds."""
    est = digest.quantile(q)
    return abs(bisect_left(sorted(data), est) / len(data) - q)


@pytest.mark.parametrize("dist", ["uniform", "exponential", "lognormal"])
def test_tdigest_rank_error_within_one_percent(dist):
    rng = random.Random(42)
    n = 50_000
    data = {
        "uniform": lambda: rng.random() * 1000,
        "exponential": lambda: rng.expovariate(1 / 50),
        "lognormal": lambda: rng.lognormvariate(3, 1),
    }[dist]
    values = [data() for _ in range(n)]
    digest = TDigest()
    digest.extend(values)
    for q in (0.5, 0.9, 0.99, 0.999):
        assert _rank_error(values, digest, q) <= 0.01
    # Memory is bounded by the compression, not the input size.
    assert len(digest) <= 2 * digest.compression


def test_tdigest_exact_edges_and_small_inputs():
    digest = TDigest()
    with pytest.raises(ValueError):
        digest.quantile(0.5)
    digest.add(7)
    assert digest.quantile(0.0) == 7
    assert digest.quantile(0.5) == 7
    assert digest.quantile(1.0) == 7
    digest.add(3)
    assert digest.quantile(0.0) == 3
    assert digest.quantile(1.0) == 7
    assert digest.count == 2


def test_tdigest_merge_matches_direct_build():
    rng = random.Random(9)
    values = [rng.expovariate(1 / 20) for _ in range(20_000)]
    direct = TDigest()
    direct.extend(values)
    merged = TDigest()
    for lo in range(0, len(values), 4000):
        shard = TDigest()
        shard.extend(values[lo : lo + 4000])
        merged.merge(shard)
    assert merged.count == direct.count
    for q in (0.5, 0.99, 0.999):
        assert _rank_error(values, merged, q) <= 0.01


def test_tdigest_payload_round_trip_is_literal_safe():
    digest = TDigest()
    digest.extend(range(1000))
    payload = digest.to_payload()
    assert is_tdigest_payload(payload)
    # The envelope wire codec is repr/ast.literal_eval: the payload must
    # survive it bit-for-bit and stay hashable (an Overlog column value).
    assert ast.literal_eval(repr(payload)) == payload
    hash(payload)
    back = TDigest.from_payload(payload)
    assert back.count == digest.count
    assert back.quantile(0.99) == digest.quantile(0.99)


def test_fold_percentile_is_merge_order_invariant():
    rng = random.Random(3)
    shards = []
    for _ in range(6):
        d = TDigest()
        d.extend(rng.expovariate(1 / 10) for _ in range(2000))
        shards.append(d.to_payload())
    folded = fold_percentile(shards)
    for _ in range(5):
        rng.shuffle(shards)
        assert fold_percentile(shards) == folded


def test_fold_percentile_accepts_raw_numbers_and_rejects_junk():
    payload = fold_percentile([5, 1, 3, 2, 4])
    digest = TDigest.from_payload(payload)
    assert digest.count == 5
    assert digest.quantile(0.0) == 1
    assert digest.quantile(1.0) == 5
    with pytest.raises(TypeError):
        fold_percentile(["not-a-number"])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=500,
    )
)
def test_tdigest_quantiles_stay_within_range(values):
    digest = TDigest()
    digest.extend(values)
    lo, hi = min(values), max(values)
    for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
        assert lo <= digest.quantile(q) <= hi


# -- HyperLogLog ---------------------------------------------------------------


def test_hll_within_two_percent_at_1e5():
    hll = HyperLogLog()
    n = 100_000
    for i in range(n):
        hll.add(("user", i))
    assert abs(hll.estimate() - n) / n <= 0.02


def test_hll_small_sets_are_nearly_exact():
    hll = HyperLogLog()
    for i in range(100):
        hll.add(i)
        hll.add(i)  # duplicates must not inflate the estimate
    est = hll.estimate()
    assert abs(est - 100) <= 3


def test_hll_memory_sublinear():
    """Occupied registers saturate at m, regardless of distinct items."""
    hll = HyperLogLog(precision=12)
    for i in range(200_000):
        hll.add(i)
    assert len(hll) <= 4096


def test_hll_merge_is_exactly_order_invariant():
    rng = random.Random(11)
    shards = []
    for k in range(8):
        h = HyperLogLog()
        for i in range(k * 3000, (k + 1) * 3000):
            h.add(i)
        shards.append(h.to_payload())
    baseline = fold_count_distinct(shards)
    for _ in range(10):
        rng.shuffle(shards)
        assert fold_count_distinct(shards) == baseline
    assert abs(baseline - 24_000) / 24_000 <= 0.03


def test_hll_merge_equals_union():
    a, b, union = HyperLogLog(), HyperLogLog(), HyperLogLog()
    for i in range(5000):
        a.add(i)
        union.add(i)
    for i in range(2500, 7500):
        b.add(i)
        union.add(i)
    a.merge(b)
    assert a.estimate() == union.estimate()


def test_hll_payload_round_trip_sparse_and_dense():
    sparse = HyperLogLog()
    for i in range(10):
        sparse.add(i)
    payload = sparse.to_payload()
    assert is_hll_payload(payload) and payload[2] == "sparse"
    assert ast.literal_eval(repr(payload)) == payload
    assert HyperLogLog.from_payload(payload).estimate() == sparse.estimate()

    dense = HyperLogLog()
    for i in range(50_000):
        dense.add(i)
    payload = dense.to_payload()
    assert payload[2] == "dense"
    assert HyperLogLog.from_payload(payload).estimate() == dense.estimate()


def test_hll_precision_mismatch_rejected():
    with pytest.raises(ValueError):
        HyperLogLog(precision=10).merge(HyperLogLog(precision=12))


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=300))
def test_hll_small_cardinality_property(values):
    hll = HyperLogLog()
    hll.extend(values)
    # Linear-counting regime: small sets are essentially exact.
    assert abs(hll.estimate() - len(values)) <= max(3, 0.05 * len(values))


def test_fold_count_distinct_mixes_raw_and_payloads():
    shard = HyperLogLog()
    for i in range(1000):
        shard.add(("k", i))
    raws = [("k", i) for i in range(500, 1500)]
    est = fold_count_distinct([shard.to_payload(), *raws])
    assert abs(est - 1500) / 1500 <= 0.05
