"""Unit tests for the discrete-event simulator, network and cluster."""

import pytest

from repro.sim import (
    Cluster,
    FailureSchedule,
    LatencyModel,
    Network,
    OverlogProcess,
    Simulator,
)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run_until(100)
        assert order == ["a", "b", "c"]
        assert sim.now == 100

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda i=i: order.append(i))
        sim.run_until(10)
        assert order == [0, 1, 2, 3, 4]

    def test_cancel(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule(10, lambda: hits.append(1))
        handle.cancel()
        sim.run_until(20)
        assert hits == []

    def test_schedule_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: sim.schedule_at(0, lambda: None))
        with pytest.raises(ValueError):
            sim.run_until(10)

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, lambda: sim.schedule(5, lambda: hits.append(sim.now)))
        sim.run_until(100)
        assert hits == [15]

    def test_run_until_condition(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(i * 10, lambda i=i: hits.append(i))
        reached = sim.run_until_condition(lambda: len(hits) >= 3, max_time_ms=1000)
        assert reached
        assert len(hits) == 3

    def test_run_until_condition_timeout(self):
        sim = Simulator()
        reached = sim.run_until_condition(lambda: False, max_time_ms=50)
        assert not reached


class TestNetwork:
    def make(self, **kw):
        sim = Simulator()
        net = Network(sim, **kw)
        inbox = []
        net.register(
            "b",
            lambda env: inbox.extend(
                (sim.now, rel, row) for rel, row, _ in env.items()
            ),
        )
        return sim, net, inbox

    def test_delivery_with_latency(self):
        sim, net, inbox = self.make(latency=LatencyModel(base_ms=5, jitter_ms=0))
        net.send_row("a", "b", "ping", (1,))
        sim.run_until(10)
        assert inbox == [(5, "ping", (1,))]

    def test_per_link_fifo_under_jitter(self):
        sim, net, inbox = self.make(latency=LatencyModel(base_ms=1, jitter_ms=50))
        for i in range(20):
            net.send_row("a", "b", "seq", (i,))
        sim.run_until(1000)
        assert [row[0] for _, _, row in inbox] == list(range(20))

    def test_loss(self):
        sim, net, inbox = self.make(loss_rate=1.0)
        net.send_row("a", "b", "ping", (1,))
        sim.run_until(100)
        assert inbox == []
        assert net.stats.dropped_loss == 1

    def test_partition_blocks_and_heal_restores(self):
        sim, net, inbox = self.make(latency=LatencyModel(1, 0))
        net.partition(["a"], ["b"])
        net.send_row("a", "b", "ping", (1,))
        sim.run_until(10)
        assert inbox == []
        net.heal()
        net.send_row("a", "b", "ping", (2,))
        sim.run_until(20)
        assert [row for _, _, row in inbox] == [(2,)]

    def test_in_flight_message_lost_when_dest_unregisters(self):
        sim, net, inbox = self.make(latency=LatencyModel(base_ms=10, jitter_ms=0))
        net.send_row("a", "b", "ping", (1,))
        sim.schedule(5, lambda: net.unregister("b"))
        sim.run_until(20)
        assert inbox == []
        assert net.stats.dropped_dead == 1

    def test_envelope_batch_delivered_atomically(self):
        from repro.sim import Envelope

        sim, net, inbox = self.make(latency=LatencyModel(base_ms=3, jitter_ms=0))
        env = Envelope.make("a", "b", [("x", (1,)), ("y", (2,))])
        net.send(env)
        sim.run_until(10)
        assert inbox == [(3, "x", (1,)), (3, "y", (2,))]
        assert net.stats.envelopes_sent == 1
        assert net.stats.sent == 2
        assert net.stats.bytes_sent == env.size_bytes


ECHO_PROGRAM = """
program echo;
event(ping, 2);
event(pong, 2);
pong(@From, N) :- ping(From, N);
"""

COUNTER_PROGRAM = """
program counter;
event(pong, 2);
define(received, keys(0), {Int});
received(N) :- pong(_, N);
"""


class _CounterProcess(OverlogProcess):
    def __init__(self, address):
        super().__init__(address, COUNTER_PROGRAM)


class TestOverlogProcess:
    def test_request_response_between_nodes(self):
        cluster = Cluster(latency=LatencyModel(2, 0))
        server = OverlogProcess("server", ECHO_PROGRAM)
        client = _CounterProcess("client")
        cluster.add(server)
        cluster.add(client)
        client_runtime = client.runtime
        server.inject("ping", ("client", 42))
        # ping is local to the server; pong travels one hop.
        cluster.run_for(20)
        assert client_runtime.rows("received") == [(42,)]

    def test_timer_driven_program(self):
        cluster = Cluster()
        node = OverlogProcess(
            "n1",
            """
            program beats;
            timer(t, 100);
            define(fired, keys(0), {Int, Int});
            fired(N, T) :- t(N, T);
            """,
        )
        cluster.add(node)
        cluster.run_for(550)
        assert len(node.runtime.rows("fired")) == 5

    def test_crash_stops_processing(self):
        cluster = Cluster(latency=LatencyModel(1, 0))
        server = OverlogProcess("server", ECHO_PROGRAM)
        client = _CounterProcess("client")
        cluster.add(server)
        cluster.add(client)
        cluster.crash("server")
        server.inject("ping", ("client", 1))
        cluster.run_for(50)
        assert client.runtime.rows("received") == []

    def test_restart_loses_soft_state(self):
        cluster = Cluster()
        node = OverlogProcess(
            "n1",
            """
            program kv;
            define(store, keys(0), {Str, Int});
            event(put, 2);
            store(K, V) :- put(K, V);
            """,
        )
        cluster.add(node)
        node.inject("put", ("a", 1))
        cluster.run_for(10)
        assert node.runtime.rows("store") == [("a", 1)]
        cluster.crash("n1")
        cluster.restart("n1")
        cluster.run_for(10)
        assert node.runtime.rows("store") == []

    def test_messages_to_crashed_node_dropped(self):
        cluster = Cluster(latency=LatencyModel(5, 0))
        server = OverlogProcess("server", ECHO_PROGRAM)
        client = _CounterProcess("client")
        cluster.add(server)
        cluster.add(client)
        server.inject("ping", ("client", 7))
        cluster.crash_at(2, "client")  # pong lands at t>=5
        cluster.run_for(50)
        assert cluster.network.stats.dropped_dead >= 1


class TestFailureSchedule:
    def test_crash_and_restart_applied(self):
        cluster = Cluster()
        node = OverlogProcess("n1", "program p; define(x, keys(0), {Int});")
        cluster.add(node)
        FailureSchedule().crash(10, "n1", restart_after_ms=20).apply(cluster)
        cluster.run_for(15)
        assert not cluster.is_up("n1")
        cluster.run_for(20)
        assert cluster.is_up("n1")

    def test_partition_schedule(self):
        cluster = Cluster()
        for name in ("a", "b"):
            cluster.add(OverlogProcess(name, "program p; define(x, keys(0), {Int});"))
        FailureSchedule().partition(
            10, ("a",), ("b",), heal_after_ms=30
        ).apply(cluster)
        cluster.run_for(15)
        assert not cluster.network.can_reach("a", "b")
        cluster.run_for(30)
        assert cluster.network.can_reach("a", "b")


class TestDeterminism:
    def _run(self, seed):
        cluster = Cluster(seed=seed, latency=LatencyModel(1, 10))
        server = OverlogProcess("server", ECHO_PROGRAM)
        client = _CounterProcess("client")
        cluster.add(server)
        cluster.add(client)
        for i in range(20):
            cluster.sim.schedule_at(
                i * 3, lambda i=i: server.inject("ping", ("client", i))
            )
        cluster.run_for(500)
        return (
            sorted(client.runtime.rows("received")),
            cluster.network.stats.delivered,
            cluster.sim.events_processed,
        )

    def test_identical_runs(self):
        assert self._run(42) == self._run(42)

    def test_seed_changes_timing(self):
        # Same delivered set, but jitter differs => event counts may differ;
        # at minimum the runs must both complete.
        a = self._run(1)
        b = self._run(2)
        assert a[0] == b[0] == [(i,) for i in range(20)]
