"""Unit tests for the source-codegen evaluator tier.

The differential suite (tests/test_plan_equivalence.py) proves the
generated functions *behave* identically to the closure tier; these
tests pin down what the emitter actually generates — access-path choice
(pk-get / probe / scan), delta pre-grouping, negation and aggregate
shapes — plus the cache-invalidation and catalog regressions that ride
along with the tier:

* ``PlanCache.invalidate`` must flush generated source *and* the plan
  profiler's accumulated stats (a new program must never inherit
  same-named rules' timings or stale source text);
* ``Table.clear`` empties built single/composite indexes in place, so
  plan-cached index references stay correct across a clear-then-
  reinsert cycle without recounting ``index_builds``.
"""

from repro.overlog import OverlogRuntime, parse


def make_runtime(src: str, **kwargs) -> OverlogRuntime:
    return OverlogRuntime(parse("program t;\n" + src), address="n0", **kwargs)


JOIN_SRC = """
define(edge, keys(), {Int, Int});
define(path2, keys(), {Int, Int});
j1 path2(X, Z) :- edge(X, Y), edge(Y, Z);
"""

PK_SRC = """
define(fq, keys(0), {Str, Int});
event(req, 2);
define(hit, keys(), {Str, Int});
p1 hit(P, F) :- req(_, P), fq(P, F);
"""

NEG_SRC = """
define(a, keys(), {Int});
define(b, keys(), {Int});
define(only_a, keys(), {Int});
n1 only_a(X) :- a(X), notin b(X);
"""

AGG_SRC = """
define(item, keys(), {Int, Int});
define(per_group, keys(), {Int, Int});
g1 per_group(G, count<V>) :- item(G, V);
"""


class TestGeneratedSource:
    def test_join_rule_emits_plan_per_delta_position(self):
        rt = make_runtime(JOIN_SRC)
        src = rt.generated_source("j1")
        # One generated function per delta position of the join, plus the
        # full recompute, each annotated with its access path.
        assert "def _" in src
        assert "delta@0" in src and "delta@1" in src
        assert "edge: probe" in src or "edge: scan" in src

    def test_pk_lookup_recognized(self):
        rt = make_runtime(PK_SRC)
        src = rt.generated_source("p1")
        # fq has keys(0) and the join binds exactly that column: the
        # emitter must use the primary-key dict, not a scan or index.
        assert "pk-get [0]" in src
        assert "lookup_key" in src

    def test_delta_pregrouping_on_bound_join(self):
        rt = make_runtime(JOIN_SRC)
        src = rt.generated_source("j1")
        # Scanning edge while probing the delta on the bound column must
        # bucket the delta rows once in the function preamble.
        assert "delta grouped" in src

    def test_negation_compiles_to_membership_check(self):
        rt = make_runtime(NEG_SRC)
        src = rt.generated_source("n1")
        assert "notin b" in src

    def test_aggregate_emits_group_fold(self):
        rt = make_runtime(AGG_SRC)
        src = rt.generated_source("g1")
        assert "agg" in src
        # Single-spec aggregates carry the bare value, not a 1-tuple.
        assert "count" in rt.explain("g1")

    def test_lower_tiers_have_no_source(self):
        rt = make_runtime(JOIN_SRC, compile_mode="closure")
        assert "no generated source" in rt.generated_source()
        rt2 = make_runtime(JOIN_SRC, compile_mode="interpreter")
        assert "no generated source" in rt2.generated_source()

    def test_source_tier_is_the_default(self):
        rt = make_runtime(JOIN_SRC)
        assert rt.evaluator.compile_mode == "source"

    def test_generated_functions_actually_run(self):
        rt = make_runtime(JOIN_SRC)
        for row in [(1, 2), (2, 3), (3, 4)]:
            rt.insert("edge", row)
        rt.tick()
        assert sorted(rt.rows("path2")) == [(1, 3), (2, 4)]


class TestInvalidateFlushes:
    """Satellite: PlanCache.invalidate drops profiler stats + source."""

    def _warm(self):
        rt = make_runtime(JOIN_SRC, profile=True, profile_sample_every=1)
        for row in [(1, 2), (2, 3)]:
            rt.insert("edge", row)
        rt.tick()
        planner = rt.evaluator.planner
        profiler = rt.evaluator._profiler
        assert planner.generated, "expected cached generated source"
        assert profiler._stats, "expected profiler samples after a tick"
        return rt, planner, profiler

    def test_invalidate_flushes_source_and_profiler(self):
        _, planner, profiler = self._warm()
        planner.invalidate()
        assert planner.generated == {}
        assert planner.plans == []
        assert profiler._stats == {}

    def test_rule_swap_reaches_invalidate_then_recompiles(self):
        rt, planner, profiler = self._warm()
        stale = dict(planner.generated)
        rt.add_rule("j2 path2(X, Y) :- edge(X, Y);")
        # The swap flushed old stats and regenerated source for the new
        # rule set — including the rule added after initial compile.
        assert profiler._stats == {}
        assert any(rule == "j2" for rule, _tag in planner.generated)
        assert set(stale) <= set(planner.generated)
        rt.tick()
        assert (1, 2) in rt.rows("path2")


class TestClearThenReinsert:
    """Satellite: Table.clear keeps plan-cached index references valid."""

    def test_clear_empties_indexes_in_place_without_rebuild(self):
        rt = make_runtime(JOIN_SRC)
        table = rt.catalog.table("edge")
        for row in [(1, 2), (1, 3), (2, 3)]:
            table.insert(row)
        single = table.ensure_single_index(0)
        composite = table.ensure_index((0, 1))
        builds = table.index_builds
        table.clear()
        # Same dict objects, emptied in place; no rebuild counted.
        assert table.ensure_single_index(0) is single
        assert table.ensure_index((0, 1)) is composite
        assert not single and not composite
        assert table.index_builds == builds
        table.insert((5, 6))
        assert single[5] == {(5, 6)}
        assert composite[(5, 6)] == {(5, 6)}
        assert table.index_builds == builds

    def test_compiled_plan_correct_across_clear_reinsert(self):
        rt = make_runtime(JOIN_SRC)
        for row in [(1, 2), (2, 3)]:
            rt.insert("edge", row)
        rt.tick()
        assert sorted(rt.rows("path2")) == [(1, 3)]
        # Wipe the base table out from under the compiled plan's cached
        # index references, then drive fresh rows through the same plans.
        rt.catalog.table("edge").clear()
        rt.catalog.table("path2").clear()
        for row in [(7, 8), (8, 9)]:
            rt.insert("edge", row)
        rt.tick()
        assert sorted(rt.rows("path2")) == [(7, 9)]
        assert sorted(rt.rows("edge")) == [(7, 8), (8, 9)]
