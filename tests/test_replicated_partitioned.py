"""Composing the paper's two revisions: a namespace that is BOTH
hash-partitioned (scalability) AND Paxos-replicated per partition
(availability).  2 partitions x 3 replicas = 6 NameNodes, one rule set."""

import pytest

from repro.boomfs import DataNode
from repro.boomfs.partition import (
    PARTITION_DROPPED_RULES,
    PartitionedFSClient,
    partition_of,
)
from repro.paxos import ReplicatedMaster
from repro.sim import Cluster, LatencyModel

PARTITIONS = 2
REPLICAS = 3


def make_stack(seed=0):
    cluster = Cluster(seed=seed, latency=LatencyModel(1, 2))
    groups = []
    masters = []
    for p in range(PARTITIONS):
        group = [f"p{p}m{r}" for r in range(REPLICAS)]
        groups.append(group)
        for addr in group:
            masters.append(
                cluster.add(
                    ReplicatedMaster(
                        addr,
                        group,
                        replication=2,
                        id_scope=f"part{p}",
                        drop_rules=PARTITION_DROPPED_RULES,
                    )
                )
            )
    all_masters = [a for g in groups for a in g]
    for i in range(3):
        cluster.add(DataNode(f"dn{i}", masters=all_masters, heartbeat_ms=300))
    fs = cluster.add(
        PartitionedFSClient(
            "client",
            groups,
            op_timeout_ms=60_000,
            rpc_timeout_ms=800,
            encode_request=lambda master, row: ("client_op", (master, row)),
        )
    )
    # Wait for a leader in every partition.
    for p in range(PARTITIONS):
        group_masters = [m for m in masters if m.address.startswith(f"p{p}")]
        ok = cluster.run_until(
            lambda gm=group_masters: any(m.is_leader for m in gm),
            max_time_ms=30_000,
        )
        assert ok, f"no leader in partition {p}"
    cluster.run_for(500)
    return cluster, groups, masters, fs


@pytest.fixture(scope="module")
def stack():
    # Expensive to build: share one across the module's read-mostly tests.
    return make_stack()


class TestComposedStack:
    def test_basic_namespace_ops(self, stack):
        _, _, _, fs = stack
        fs.mkdir("/combo")
        for i in range(6):
            fs.write(f"/combo/f{i}", bytes([i]) * 40)
        assert fs.ls("/combo") == [f"f{i}" for i in range(6)]
        for i in range(6):
            assert fs.read(f"/combo/f{i}") == bytes([i]) * 40

    def test_directories_on_every_replica_of_every_partition(self, stack):
        _, _, masters, fs = stack
        fs.mkdir("/everywhere")
        cluster = stack[0]
        cluster.run_for(2000)  # let followers apply
        for m in masters:
            assert "/everywhere" in m.paths(), m.address

    def test_files_partitioned_with_replica_agreement(self, stack):
        cluster, groups, masters, fs = stack
        fs.mkdir("/d")
        fs.write("/d/target", b"content")
        cluster.run_for(2000)
        owner = partition_of("/d/target", PARTITIONS)
        for m in masters:
            has = "/d/target" in m.paths()
            belongs = m.address.startswith(f"p{owner}")
            assert has == belongs, m.address

    def test_chunk_ids_distinct_across_partitions(self, stack):
        cluster, groups, masters, fs = stack
        fs.mkdir("/ids")
        for i in range(6):
            fs.write(f"/ids/f{i}", b"z" * 10)
        cluster.run_for(1000)
        seen = set()
        for p in range(PARTITIONS):
            leader = next(
                m
                for m in masters
                if m.address.startswith(f"p{p}") and not m.crashed and m.is_leader
            )
            for cid, _, _ in leader.runtime.rows("fchunk"):
                assert cid not in seen, "cross-partition chunk id collision"
                seen.add(cid)


class TestComposedFailover:
    def test_survives_one_leader_per_partition(self):
        cluster, groups, masters, fs = make_stack(seed=7)
        fs.mkdir("/ha")
        fs.write("/ha/before", b"pre-crash")
        # Kill the current leader of each partition.
        for p in range(PARTITIONS):
            leader = next(
                m
                for m in masters
                if m.address.startswith(f"p{p}") and not m.crashed and m.is_leader
            )
            cluster.crash(leader.address)
        fs.write("/ha/after", b"post-crash")
        assert fs.read("/ha/before") == b"pre-crash"
        assert fs.read("/ha/after") == b"post-crash"
        assert sorted(fs.ls("/ha")) == ["after", "before"]
