"""Unit tests for the Overlog tokenizer."""

import pytest

from repro.overlog.errors import LexError
from repro.overlog.lexer import tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def values(src):
    return [t.value for t in tokenize(src)[:-1]]


class TestBasicTokens:
    def test_identifier(self):
        toks = tokenize("foo")
        assert toks[0].kind == "IDENT"
        assert toks[0].value == "foo"

    def test_variable_uppercase(self):
        assert tokenize("Foo")[0].kind == "VARIABLE"

    def test_underscore_is_variable(self):
        assert tokenize("_")[0].kind == "VARIABLE"

    def test_keyword(self):
        toks = tokenize("define notin delete")
        assert all(t.kind == "KEYWORD" for t in toks[:-1])

    def test_integer(self):
        tok = tokenize("42")[0]
        assert tok.kind == "NUMBER"
        assert tok.value == "42"

    def test_float(self):
        assert tokenize("3.25")[0].value == "3.25"

    def test_string(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind == "STRING"
        assert tok.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb"')[0].value == "a\nb"
        assert tokenize(r'"say \"hi\""')[0].value == 'say "hi"'

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestOperators:
    def test_rule_arrow(self):
        assert ":-" in values("a :- b")

    def test_assign_vs_arrow(self):
        assert values("X := 1") == ["X", ":=", "1"]

    def test_comparisons(self):
        assert values("< <= > >= == !=") == ["<", "<=", ">", ">=", "==", "!="]

    def test_at_sign(self):
        assert "@" in values("foo(@X)")

    def test_arithmetic(self):
        assert values("+ - * / %") == ["+", "-", "*", "/", "%"]


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never closed')


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].col == 3

    def test_bad_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a\n  $")
        assert exc.value.line == 2


class TestRealisticSnippets:
    def test_define(self):
        src = "define(file, keys(0, 1), {Int, Str});"
        assert kinds(src)[0] == "KEYWORD"

    def test_rule_with_everything(self):
        src = (
            'r1 response(@Client, Id, count<X>) :- request(@Me, Id, Client), '
            'notin dead(Client), X := f_now() + 10, X > 0;'
        )
        toks = tokenize(src)
        assert toks[-1].kind == "EOF"
        assert "notin" in [t.value for t in toks]
