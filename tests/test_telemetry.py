"""The telemetry plane (docs/TELEMETRY.md): metrics-as-tuples shipped to
a monitor node whose rollup and health logic is itself Overlog.

Covers the wire serializer (registry -> ``telemetry`` tuples), the new
sketch aggregates under both evaluator paths, the monitor's rollups, all
three stock alert packs firing *and* clearing, alarm provenance down to
the emitting node's telemetry tuple, the periodic export loop (including
re-arming across crash/restart), and the deterministic dashboard/JSONL
exports.
"""

import ast
import json

import pytest

from repro.boomfs import BoomFSMaster, DataNode
from repro.boomfs.client import FSSession
from repro.metrics import MetricsRegistry
from repro.overlog import EvaluationError, OverlogRuntime, parse
from repro.sim import Cluster, LatencyModel, Process
from repro.sketches import (
    HyperLogLog,
    TDigest,
    is_hll_payload,
    is_tdigest_payload,
)
from repro.telemetry import (
    BOOMFS_ALERTS,
    PAXOS_ALERTS,
    TRANSPORT_ALERTS,
    MonitorProcess,
    telemetry_rows,
    trace_latency_digest,
    trace_latency_rows,
)

# -- the wire serializer -------------------------------------------------------


class TestTelemetryRows:
    def test_counter_gauge_rows(self):
        reg = MetricsRegistry("n1")
        reg.counter("ops").inc(3)
        reg.gauge("depth").set(7)
        rows = telemetry_rows(reg, clock=42)
        assert ("n1", "ops", "counter", 3, 42) in rows
        assert ("n1", "depth", "gauge", 7, 42) in rows

    def test_node_override_and_default_scope(self):
        reg = MetricsRegistry("scope0")
        reg.counter("c").inc()
        assert telemetry_rows(reg)[0][0] == "scope0"
        assert telemetry_rows(reg, node="other")[0][0] == "other"

    def test_non_numeric_gauges_become_info(self):
        reg = MetricsRegistry("n1")
        reg.gauge("role").set("leader")
        reg.gauge("flag").set(True)
        rows = {(r[1], r[2], r[3]) for r in telemetry_rows(reg)}
        assert ("role", "info", "leader") in rows
        # bools ride as 0/1 gauges so they can sum cluster-wide
        assert ("flag", "gauge", 1) in rows

    def test_histogram_ships_tdigest_payload(self):
        reg = MetricsRegistry("n1")
        hist = reg.histogram("lat")
        for v in range(100):
            hist.observe(v)
        (row,) = [r for r in telemetry_rows(reg) if r[1] == "lat"]
        assert row[2] == "histogram"
        assert is_tdigest_payload(row[3])
        assert TDigest.from_payload(row[3]).count == 100

    def test_empty_sketches_skipped_but_distinct_always_ships(self):
        reg = MetricsRegistry("n1")
        reg.histogram("h")
        reg.percentile("p")
        reg.distinct("d")
        rows = telemetry_rows(reg)
        kinds = {r[1]: r[2] for r in rows}
        assert "h" not in kinds and "p" not in kinds
        assert kinds["d"] == "distinct"
        assert is_hll_payload(rows[0][3])

    def test_rows_survive_the_envelope_codec(self):
        # The transport wire format is repr/ast.literal_eval: every
        # telemetry row must round-trip as a Python literal.
        reg = MetricsRegistry("n1")
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3)
        reg.percentile("p").observe(4)
        reg.distinct("d").add("x")
        for row in telemetry_rows(reg, clock=1):
            assert ast.literal_eval(repr(row)) == row
            hash(row)

    def test_collector_gauges_refresh_on_export(self):
        # Lazy collectors only run inside snapshot(); the serializer must
        # trigger them so exports see current values.
        reg = MetricsRegistry("n1")
        state = {"n": 0}

        def collect(snap):
            reg.gauge("live").set(state["n"])
            snap["gauges"]["live"] = state["n"]

        reg.add_collector(collect)
        state["n"] = 9
        rows = telemetry_rows(reg)
        assert ("n1", "live", "gauge", 9, 0) in rows


class TestTraceLatencyFold:
    def test_latency_from_begin_to_last_event(self):
        cluster = Cluster(seed=0)
        tracer = cluster.tracer
        for i, span in enumerate((10, 30)):
            ctx = tracer.start_trace(f"req{i}", "client")
            tracer.events.append(
                {"kind": "recv", "trace": ctx.trace_id, "ms": span}
            )
        digest = trace_latency_digest(tracer)
        assert digest.count == 2
        assert digest.quantile(0.0) == 10
        assert digest.quantile(1.0) == 30
        (row,) = trace_latency_rows(tracer, clock=5)
        assert row[0] == "traces"
        assert row[1] == "request.latency_ms"
        assert row[2] == "percentile"

    def test_no_traces_no_rows(self):
        cluster = Cluster(seed=0)
        assert trace_latency_rows(cluster.tracer) == []


# -- the sketch aggregates under both evaluator paths -------------------------

AGG_SRC = """
program t;
define(obs, keys(0, 1), {Str, Int});
define(dig, keys(0), {Str, Any});
define(pct, keys(0), {Str, Float});
define(card, keys(0), {Str, Int});
a1 dig(M, percentile<V>) :- obs(M, V);
a2 pct(M, P) :- dig(M, D), P := f_quantile(D, 50);
a3 card(M, count_distinct_approx<V>) :- obs(M, V);
"""


class TestSketchAggregates:
    def _run(self, **kw):
        rt = OverlogRuntime(AGG_SRC, address="me", **kw)
        rt.install("obs", [("m", v) for v in range(1, 101)])
        rt.tick()
        return rt

    @pytest.mark.parametrize("compile_plans", [True, False])
    def test_percentile_aggregate(self, compile_plans):
        rt = self._run(compile_plans=compile_plans)
        (row,) = rt.rows("dig")
        assert is_tdigest_payload(row[1])
        assert TDigest.from_payload(row[1]).count == 100
        (pct,) = rt.rows("pct")
        assert abs(pct[1] - 50.5) <= 2.0

    @pytest.mark.parametrize("compile_plans", [True, False])
    def test_count_distinct_aggregate(self, compile_plans):
        rt = self._run(compile_plans=compile_plans)
        (card,) = rt.rows("card")
        assert abs(card[1] - 100) <= 5

    def test_compiled_matches_interpreted_exactly(self):
        compiled = self._run(compile_plans=True)
        interpreted = self._run(compile_plans=False)
        for rel in ("dig", "pct", "card"):
            assert sorted(compiled.rows(rel)) == sorted(interpreted.rows(rel))

    def test_aggregate_merges_shipped_payloads(self):
        # A percentile<> fold accepts pre-sketched payloads (what nodes
        # ship) and merges them, not just raw numbers.
        d1, d2 = TDigest(), TDigest()
        d1.extend(range(0, 50))
        d2.extend(range(50, 100))
        rt = OverlogRuntime(
            """
            program t;
            define(shard, keys(0), {Int, Any});
            define(total, keys(0), {Str, Any});
            a1 total("all", percentile<D>) :- shard(_, D);
            """,
            address="me",
        )
        rt.install("shard", [(1, d1.to_payload()), (2, d2.to_payload())])
        rt.tick()
        (row,) = rt.rows("total")
        merged = TDigest.from_payload(row[1])
        assert merged.count == 100

    def test_fold_rejects_junk(self):
        rt = OverlogRuntime(
            """
            program t;
            define(src, keys(0), {Int, Any});
            define(out, keys(0), {Str, Any});
            a1 out("x", percentile<D>) :- src(_, D);
            """,
            address="me",
        )
        rt.install("src", [(1, ("not", "a", "sketch"))])
        with pytest.raises(EvaluationError):
            rt.tick()


class TestSketchBuiltins:
    def _eval(self, expr_src, facts):
        rt = OverlogRuntime(
            """
            program t;
            define(inp, keys(0), {Int, Any});
            define(out, keys(0), {Int, Any});
            """
            + expr_src,
            address="me",
        )
        rt.install("inp", facts)
        rt.tick()
        return rt.rows("out")

    def test_f_quantile_and_count(self):
        d = TDigest()
        d.extend(range(1, 101))
        rows = self._eval(
            "r1 out(K, V) :- inp(K, D), V := f_quantile(D, 99);",
            [(1, d.to_payload())],
        )
        assert abs(rows[0][1] - 99) <= 2
        rows = self._eval(
            "r2 out(K, V) :- inp(K, D), V := f_sketch_count(D);",
            [(1, d.to_payload())],
        )
        assert rows == [(1, 100)]

    def test_f_distinct_estimate(self):
        h = HyperLogLog()
        h.extend(f"u{i}" for i in range(500))
        rows = self._eval(
            "r3 out(K, V) :- inp(K, D), V := f_distinct_estimate(D);",
            [(1, h.to_payload())],
        )
        assert abs(rows[0][1] - 500) <= 25

    def test_f_quantile_rejects_non_payload(self):
        with pytest.raises(EvaluationError):
            self._eval(
                "r4 out(K, V) :- inp(K, D), V := f_quantile(D, 50);",
                [(1, 42)],
            )


# -- the monitor node ----------------------------------------------------------


def _monitor_cluster(**monitor_kw):
    cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
    monitor = cluster.add(MonitorProcess("monitor", **monitor_kw))
    return cluster, monitor


def _feed(cluster, monitor, rows):
    for row in rows:
        monitor.inject("telemetry", row)
    cluster.run_for(50)


class TestMonitorRollups:
    def test_counters_and_gauges_sum_across_nodes(self):
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [
                ("n1", "ops", "counter", 5, 1),
                ("n2", "ops", "counter", 7, 1),
                ("n1", "depth", "gauge", 2.0, 1),
                ("n2", "depth", "gauge", 3.5, 1),
            ],
        )
        assert monitor.rollup_counters() == {"ops": 12}
        assert monitor.rollup_gauges() == {"depth": 5.5}

    def test_latest_sample_wins_per_node_metric(self):
        cluster, monitor = _monitor_cluster()
        _feed(cluster, monitor, [("n1", "ops", "counter", 5, 1)])
        _feed(cluster, monitor, [("n1", "ops", "counter", 9, 2)])
        assert monitor.rollup_counters() == {"ops": 9}
        (sample,) = monitor.samples()
        assert sample == ("n1", "ops", "counter", 9, 2)

    def test_percentile_rollup_merges_node_digests(self):
        d1, d2 = TDigest(), TDigest()
        d1.extend(range(0, 500))
        d2.extend(range(500, 1000))
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [
                ("n1", "lat", "percentile", d1.to_payload(), 1),
                ("n2", "lat", "percentile", d2.to_payload(), 1),
            ],
        )
        (stats,) = monitor.rollup_percentiles().values()
        count, p50, p99, p999 = stats
        assert count == 1000
        assert abs(p50 - 500) <= 15
        assert abs(p99 - 990) <= 15

    def test_histogram_kind_joins_the_same_rollup(self):
        reg = MetricsRegistry("n1")
        hist = reg.histogram("lat")
        for v in range(100):
            hist.observe(v)
        cluster, monitor = _monitor_cluster()
        _feed(cluster, monitor, telemetry_rows(reg, clock=1))
        assert "lat" in monitor.rollup_percentiles()

    def test_distinct_rollup_unions(self):
        h1, h2 = HyperLogLog(), HyperLogLog()
        h1.extend(f"k{i}" for i in range(600))      # 0..599
        h2.extend(f"k{i}" for i in range(400, 1000))  # overlap 400..599
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [
                ("n1", "users", "distinct", h1.to_payload(), 1),
                ("n2", "users", "distinct", h2.to_payload(), 1),
            ],
        )
        estimate = monitor.rollup_distincts()["users"]
        assert abs(estimate - 1000) <= 50  # union, not sum (1200)

    def test_info_kind_is_stored_but_not_rolled_up(self):
        cluster, monitor = _monitor_cluster()
        _feed(cluster, monitor, [("n1", "role", "info", "leader", 1)])
        assert ("n1", "role", "info", "leader", 1) in monitor.samples()
        assert monitor.rollup_gauges() == {}


class TestAlertPacks:
    def test_packs_parse_standalone(self):
        # Each pack is a self-contained Overlog source string (with its
        # own `program` header) so deployments can merge any subset.
        for pack in (BOOMFS_ALERTS, TRANSPORT_ALERTS, PAXOS_ALERTS):
            program = parse(pack)
            assert program.rules

    def test_under_replicated_fires_and_clears(self):
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [("master", "fs.chunks.under_replicated", "gauge", 3, 1)],
        )
        assert monitor.alarms() == [("under-replicated", "master", 3)]
        assert monitor.alert_log  # firing was journalled
        _feed(
            cluster,
            monitor,
            [("master", "fs.chunks.under_replicated", "gauge", 0, 2)],
        )
        assert monitor.alarms() == []

    def test_paxos_no_leader_fires_and_clears(self):
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [
                ("r1", "paxos.is_leader", "gauge", 0, 1),
                ("r2", "paxos.is_leader", "gauge", 0, 1),
            ],
        )
        assert ("paxos-no-leader", "cluster", 0) in monitor.alarms()
        _feed(cluster, monitor, [("r1", "paxos.is_leader", "gauge", 1, 2)])
        assert monitor.alarms() == []

    def test_stalled_link_alarm(self):
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [
                ("transport", "transport.stalled_link.n1->n2", "counter", 2, 1),
                ("transport", "transport.envelopes", "counter", 50, 1),
            ],
        )
        (alarm,) = monitor.alarms()
        assert alarm[0] == "stalled-link"
        assert alarm[1] == "transport.stalled_link.n1->n2"

    def test_custom_extra_source_alert(self):
        cluster, monitor = _monitor_cluster(
            alert_packs=(),
            extra_source="""
            program custom_alerts;
            x1 alarm("hot", Node, V) :-
                metric_sample(Node, "temp", "gauge", V, _), V > 90;
            """,
        )
        _feed(cluster, monitor, [("n1", "temp", "gauge", 95, 1)])
        assert monitor.alarms() == [("hot", "n1", 95)]


class TestAlarmProvenance:
    def test_why_reaches_the_telemetry_input(self):
        cluster, monitor = _monitor_cluster()
        row = ("master", "fs.chunks.under_replicated", "gauge", 2, 7)
        _feed(cluster, monitor, [row])
        text = monitor.why_alarm(("under-replicated", "master", 2))
        # alarm <- alert rule <- metric_sample <- m1 <- telemetry EDB
        assert "alarm(" in text
        assert "metric_sample(" in text
        assert "telemetry(" in text
        assert repr(7) in text  # the emitting clock survives the walk

    def test_cluster_why_resolves_alarms(self):
        cluster, monitor = _monitor_cluster()
        _feed(
            cluster,
            monitor,
            [("master", "fs.chunks.under_replicated", "gauge", 1, 1)],
        )
        text = cluster.why("monitor", "alarm", ("under-replicated", "master", 1))
        assert "telemetry(" in text


# -- end-to-end on a live cluster ------------------------------------------------


def _mkdir_some(cluster, master_addr="master", n=3):
    class Driver(Process):
        def __init__(self):
            super().__init__("client")
            self.session = None
            self.done = 0

        def start(self):
            self.session = FSSession(self, [master_addr])
            for i in range(n):
                self.session.mkdir(f"/d{i}", lambda ok, p, r: None)
                self.done += 1

        def handle_message(self, relation, row):
            self.session.on_message(relation, row)

    return cluster.add(Driver())


class TestClusterTelemetry:
    def test_periodic_export_reaches_the_monitor(self):
        cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
        cluster.add(BoomFSMaster("master", replication=1))
        cluster.add(DataNode("dn1", ["master"]))
        _mkdir_some(cluster)
        monitor = cluster.enable_telemetry(interval_ms=500)
        cluster.run_for(3000)
        nodes = {node for node, *_ in monitor.samples()}
        assert "master" in nodes
        assert "dn1" in nodes
        assert "transport" in nodes  # cluster-scope registry injected
        assert any(
            m.startswith("fs.requests.") for m in monitor.rollup_counters()
        )

    def test_under_replication_alarm_fires_on_a_real_master(self):
        # replication=3 with one DataNode: every chunk under-replicated.
        cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
        cluster.add(BoomFSMaster("master", replication=3))
        cluster.add(DataNode("dn1", ["master"]))
        monitor = cluster.enable_telemetry(interval_ms=500)

        class Writer(Process):
            def __init__(self):
                super().__init__("client")
                self.done = False

            def start(self):
                self.session = FSSession(self, ["master"])
                # write allocates a chunk; with one DN it stays under the
                # replication factor of 3 forever.
                self.session.write(
                    "/f", b"data", lambda *a: setattr(self, "done", True)
                )

            def handle_message(self, relation, row):
                self.session.on_message(relation, row)

        writer = cluster.add(Writer())
        assert cluster.run_until(lambda: writer.done, max_time_ms=5000)
        cluster.run_for(2000)  # let exports + heartbeats settle
        assert any(
            name == "under-replicated" for name, *_ in monitor.alarms()
        )
        # and the operator can ask why
        alarm = next(
            a for a in monitor.alarms() if a[0] == "under-replicated"
        )
        assert "telemetry(" in cluster.why("monitor", "alarm", alarm)

    def test_export_loop_rearms_after_crash_restart(self):
        cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
        worker = cluster.add(BoomFSMaster("master", replication=1))
        monitor = cluster.enable_telemetry(interval_ms=200)
        cluster.run_for(500)
        assert any(node == "master" for node, *_ in monitor.samples())
        cluster.crash("master")
        cluster.run_for(500)
        high_water = max(
            clock for node, *_rest, clock in monitor.samples()
            if node == "master"
        )
        cluster.restart("master")
        cluster.run_for(1000)
        latest = max(
            clock for node, *_rest, clock in monitor.samples()
            if node == "master"
        )
        assert latest > high_water  # exports resumed after restart

    def test_explicit_publish_without_timers(self):
        cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
        worker = cluster.add(BoomFSMaster("master", replication=1))
        monitor = cluster.enable_telemetry(
            interval_ms=None, include_transport=False, include_traces=False
        )
        cluster.run_for(200)
        assert monitor.samples() == []  # no timers armed
        sent = worker.publish_telemetry(clock=1)
        assert sent > 0
        cluster.run_for(200)
        assert any(node == "master" for node, *_ in monitor.samples())

    def test_dashboard_and_jsonl(self, tmp_path):
        cluster = Cluster(seed=0, latency=LatencyModel(1, 2))
        cluster.add(BoomFSMaster("master", replication=3))
        monitor = cluster.enable_telemetry(interval_ms=None)
        cluster.get("master").publish_telemetry(clock=1)
        cluster.run_for(100)
        dash = cluster.telemetry_dashboard()
        assert "== telemetry @" in dash
        assert "cluster counters:" in dash
        assert dash == cluster.telemetry_dashboard()  # deterministic
        out = tmp_path / "telemetry.jsonl"
        cluster.export_telemetry_jsonl(out)
        lines = out.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert {"rollup_counter", "sample"} <= {r["record"] for r in records}
        for line, record in zip(lines, records):
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_disabled_surface(self, tmp_path):
        cluster = Cluster(seed=0)
        assert "telemetry disabled" in cluster.telemetry_dashboard()
        assert cluster.monitor is None
        with pytest.raises(RuntimeError):
            cluster.export_telemetry_jsonl(tmp_path / "x.jsonl")

    def test_monitor_survives_when_existing_member(self):
        cluster = Cluster(seed=0)
        mine = cluster.add(MonitorProcess("monitor", alert_packs=()))
        got = cluster.enable_telemetry(monitor="monitor")
        assert got is mine  # reused, not recreated
