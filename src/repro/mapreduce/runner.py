"""Cluster builder and synchronous job runner.

``build_mr_cluster`` assembles the full analytics stack the paper
evaluates — a filesystem (BOOM-FS by default), DataNodes, a JobTracker
(declarative BOOM-MR by default) and TaskTrackers — on one simulator.
``JobRunner`` stages inputs into the FS, submits jobs, drives the
simulator to completion and collects results.

Both the JobTracker and FS components are swappable, which is how the E3
benchmark runs all four stack combinations (Hadoop-style/BOOM-MR ×
HDFS-style/BOOM-FS) on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..boomfs import BoomFSClient, BoomFSMaster, DataNode
from ..sim import Cluster, LatencyModel
from .jobtracker import JobTracker
from .tasktracker import TaskTracker
from .types import JobResult, JobSpec, is_reduce_task
from .workloads import make_input_files


@dataclass
class MRCluster:
    """Handles to every component of a built cluster."""

    cluster: Cluster
    jobtracker: Any
    trackers: list[TaskTracker]
    fs_client: BoomFSClient
    fs_masters: list[str]
    datanodes: list[DataNode] = field(default_factory=list)
    # dn address -> colocated tracker address (locality hints)
    dn_to_tracker: dict[str, str] = field(default_factory=dict)


def build_mr_cluster(
    num_trackers: int = 8,
    policy: str = "fifo",
    replication: int = 2,
    straggler_count: int = 0,
    straggler_factor: float = 6.0,
    map_slots: int = 2,
    reduce_slots: int = 2,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    jobtracker_factory: Any = None,
    fs_kind: str = "boomfs",
    warmup_ms: int = 900,
    jt_kwargs: Optional[dict] = None,
) -> MRCluster:
    """Build a co-located FS + MapReduce cluster.

    ``straggler_count`` trackers (the last ones) run ``straggler_factor``
    times slower — the LATE experiment's fault injection.
    ``jobtracker_factory(address, policy, seed)`` may substitute the
    imperative baseline JobTracker; ``fs_kind`` may be "hadoop" for the
    baseline filesystem.
    """
    cluster = Cluster(
        seed=seed, latency=latency or LatencyModel(1, 2, kb_per_ms=2000)
    )

    if fs_kind == "boomfs":
        cluster.add(BoomFSMaster("master", replication=replication))
    elif fs_kind == "hadoop":
        from ..hadoop.hdfs import BaselineNameNode

        cluster.add(BaselineNameNode("master", replication=replication))
    else:
        raise ValueError(f"unknown fs_kind {fs_kind!r}")
    fs_masters = ["master"]

    datanodes = [
        cluster.add(DataNode(f"dn{i}", masters=fs_masters, heartbeat_ms=400))
        for i in range(num_trackers)
    ]

    if jobtracker_factory is None:
        jobtracker = cluster.add(
            JobTracker("jobtracker", policy=policy, seed=seed, **(jt_kwargs or {}))
        )
    else:
        jobtracker = cluster.add(jobtracker_factory("jobtracker", policy, seed))

    trackers = []
    for i in range(num_trackers):
        slow = i >= num_trackers - straggler_count
        trackers.append(
            cluster.add(
                TaskTracker(
                    f"tt{i}",
                    jobtracker="jobtracker",
                    fs_masters=fs_masters,
                    map_slots=map_slots,
                    reduce_slots=reduce_slots,
                    speed_factor=straggler_factor if slow else 1.0,
                    local_datanode=f"dn{i}",
                )
            )
        )
        # DataNode i and TaskTracker i share a machine (Hadoop deployment
        # convention): transfers between them bypass the wire.
        cluster.network.colocate([f"dn{i}", f"tt{i}"])

    fs_client = cluster.add(BoomFSClient("fs-client", masters=fs_masters))
    cluster.run_for(warmup_ms)  # DataNodes register, trackers heartbeat
    return MRCluster(
        cluster=cluster,
        jobtracker=jobtracker,
        trackers=trackers,
        fs_client=fs_client,
        fs_masters=fs_masters,
        datanodes=datanodes,
        dn_to_tracker={f"dn{i}": f"tt{i}" for i in range(num_trackers)},
    )


class JobRunner:
    """Stages data, submits jobs and harvests results synchronously."""

    def __init__(self, mr: MRCluster):
        self.mr = mr

    def stage_inputs(self, input_dir: str, datasets: list[bytes]) -> list[str]:
        fs = self.mr.fs_client
        fs.makedirs(input_dir)
        paths = []
        for i, data in enumerate(datasets):
            path = f"{input_dir}/part{i:04d}"
            fs.write(path, data)
            paths.append(path)
        return paths

    def locality_hints(self, spec: JobSpec) -> dict[int, list[str]]:
        """Map task -> trackers colocated with a replica of its input's
        first chunk (what Hadoop's JobClient computes from block reports)."""
        hints: dict[int, list[str]] = {}
        if not self.mr.dn_to_tracker:
            return hints
        for task_id, path in enumerate(spec.inputs):
            try:
                locs = self.mr.fs_client.chunk_locations(path)
            except Exception:
                continue
            trackers = [
                self.mr.dn_to_tracker[dn]
                for dn in locs
                if dn in self.mr.dn_to_tracker
            ]
            if trackers:
                hints[task_id] = trackers
        return hints

    def run_job(
        self,
        spec: JobSpec,
        timeout_ms: int = 600_000,
        use_locality: bool = True,
    ) -> JobResult:
        if spec.output_dir is not None:
            if self.mr.fs_client.exists(spec.output_dir) is None:
                self.mr.fs_client.makedirs(spec.output_dir)
        jt = self.mr.jobtracker
        cluster = self.mr.cluster
        hints = self.locality_hints(spec) if use_locality else {}
        job_id = jt.submit(spec, locality=hints)
        submitted = cluster.now
        done = cluster.run_until(
            lambda: jt.is_complete(job_id),
            max_time_ms=cluster.now + timeout_ms,
        )
        if not done:
            raise TimeoutError(
                f"job {job_id} incomplete after {timeout_ms}ms: "
                f"{jt.task_states(job_id)}"
            )
        result = JobResult(
            job_id=job_id,
            submitted_ms=submitted,
            completed_ms=jt.completions[job_id],
        )
        for (j, t), end in jt.task_completions.items():
            if j != job_id:
                continue
            start = jt.task_launches.get((j, t), submitted)
            if is_reduce_task(t):
                result.reduce_times[t] = (start, end)
            else:
                result.map_times[t] = (start, end)
        return result

    def fetch_output(self, output_dir: str) -> dict[str, int]:
        """Read back reduce outputs (``key\\tvalue`` lines) from the FS."""
        fs = self.mr.fs_client
        merged: dict[str, int] = {}
        for name in fs.ls(output_dir):
            data = fs.read(f"{output_dir}/{name}")
            for line in data.decode().splitlines():
                if not line:
                    continue
                key, value = line.rsplit("\t", 1)
                merged[key] = int(value)
        return merged


def run_wordcount(
    num_trackers: int = 6,
    num_maps: int = 12,
    num_reduces: int = 4,
    words_per_file: int = 3000,
    policy: str = "fifo",
    straggler_count: int = 0,
    straggler_factor: float = 6.0,
    seed: int = 0,
    write_output: bool = True,
    **cluster_kw: Any,
) -> tuple[JobResult, dict[str, int], MRCluster]:
    """End-to-end wordcount: build cluster, stage corpus, run, verify-ready."""
    from .workloads import wordcount_map, wordcount_reduce

    mr = build_mr_cluster(
        num_trackers=num_trackers,
        policy=policy,
        straggler_count=straggler_count,
        straggler_factor=straggler_factor,
        seed=seed,
        **cluster_kw,
    )
    runner = JobRunner(mr)
    datasets = make_input_files(words_per_file, num_maps, seed=seed)
    paths = runner.stage_inputs("/in", datasets)
    spec = JobSpec(
        job_id=0,
        inputs=paths,
        num_reduces=num_reduces,
        map_func=wordcount_map,
        reduce_func=wordcount_reduce,
        output_dir="/out" if write_output else None,
    )
    result = runner.run_job(spec)
    output = runner.fetch_output("/out") if write_output else {}
    return result, output, mr
