"""BOOM-MR TaskTracker: the imperative worker.

Mechanism only — slots, task execution, shuffle serving — mirroring the
paper's split where all *policy* sits in the JobTracker's Overlog rules.

Execution model: a map task reads its input file from BOOM-FS (costing
simulated transfer time), then "computes" for
``overhead + bytes/throughput * speed_factor`` milliseconds of virtual
time; the real Python map function runs at completion so outputs are
genuine.  ``speed_factor`` > 1 makes this node a straggler — the knob the
LATE experiments turn.  Reduce tasks ask the JobTracker where each map's
output lives (the ``winner`` relation), fetch their partition from every
map's tracker, compute, and optionally write ``part-NNNNN`` files back to
the filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..boomfs.client import FSSession
from ..overlog.functions import stable_hash
from ..sim.network import Address
from ..sim.node import Process
from ..sim.simulator import EventHandle
from .types import JobSpec, partition_for, reduce_index


@dataclass
class _Attempt:
    job_id: int
    task_id: int
    attempt: int
    kind: str  # "map" | "reduce"
    started_ms: int
    compute_start_ms: Optional[int] = None
    duration_ms: Optional[int] = None
    done_handle: Optional[EventHandle] = None
    killed: bool = False
    # reduce-side state
    pending_fetches: set = field(default_factory=set)
    collected: dict = field(default_factory=dict)
    fetch_deadline: Optional[EventHandle] = None

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.job_id, self.task_id, self.attempt)

    def progress(self, now: int) -> float:
        if self.duration_ms is None or self.compute_start_ms is None:
            return 0.02
        if self.duration_ms <= 0:
            return 0.98
        frac = (now - self.compute_start_ms) / self.duration_ms
        return max(0.02, min(0.98, frac))


class TaskTracker(Process):
    def __init__(
        self,
        address: Address,
        jobtracker: Address = "jobtracker",
        fs_masters: Optional[list[Address]] = None,
        map_slots: int = 2,
        reduce_slots: int = 2,
        speed_factor: float = 1.0,
        heartbeat_ms: int = 400,
        map_overhead_ms: int = 150,
        reduce_overhead_ms: int = 150,
        map_bytes_per_ms: int = 100,
        reduce_bytes_per_ms: int = 150,
        fetch_timeout_ms: int = 1500,
        encode_fs_request: Any = None,
        local_datanode: Optional[Address] = None,
    ):
        super().__init__(address)
        self.jobtracker = jobtracker
        self.local_datanode = local_datanode
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.speed_factor = speed_factor
        self.heartbeat_ms = heartbeat_ms
        self.map_overhead_ms = map_overhead_ms
        self.reduce_overhead_ms = reduce_overhead_ms
        self.map_bytes_per_ms = map_bytes_per_ms
        self.reduce_bytes_per_ms = reduce_bytes_per_ms
        self.fetch_timeout_ms = fetch_timeout_ms
        self.fs: Optional[FSSession] = None
        if fs_masters:
            preferred = (
                frozenset({local_datanode}) if local_datanode else frozenset()
            )
            self.fs = FSSession(
                self,
                list(fs_masters),
                encode_request=encode_fs_request,
                preferred_nodes=preferred,
            )
        self.specs: dict[int, JobSpec] = {}
        self.running: dict[tuple[int, int, int], _Attempt] = {}
        self.map_outputs: dict[tuple[int, int], list[list]] = {}
        self._awaiting_spec: dict[int, list[tuple]] = {}
        self.tasks_executed = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        # Stagger first heartbeats so trackers don't all hit the
        # JobTracker in the same timestep (Hadoop serialized heartbeats).
        offset = 1 + stable_hash(self.address) % self.heartbeat_ms
        self.after(offset, self._heartbeat)

    def reset_for_restart(self) -> None:
        self.specs = {}
        self.running = {}
        self.map_outputs = {}
        self._awaiting_spec = {}

    # -- slots ----------------------------------------------------------------

    def _free_slots(self) -> tuple[int, int]:
        maps = sum(1 for a in self.running.values() if a.kind == "map")
        reds = sum(1 for a in self.running.values() if a.kind == "reduce")
        return self.map_slots - maps, self.reduce_slots - reds

    # -- heartbeat ---------------------------------------------------------------

    def _heartbeat(self) -> None:
        if self.crashed:
            return
        free_m, free_r = self._free_slots()
        self.send(self.jobtracker, "tt_hb", (self.address, free_m, free_r))
        for a in self.running.values():
            self.send(
                self.jobtracker,
                "prog",
                (self.address, a.job_id, a.task_id, a.attempt, a.progress(self.now)),
            )
        self.after(self.heartbeat_ms, self._heartbeat)

    # -- messages -------------------------------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        if self.fs is not None and self.fs.handles(relation):
            self.fs.on_message(relation, row)
        elif relation == "launch":
            _, job_id, task_id, attempt, kind = row
            self._launch(job_id, task_id, attempt, kind)
        elif relation == "kill":
            _, job_id, task_id, attempt = row
            self._kill((job_id, task_id, attempt))
        elif relation == "job_spec":
            job_id, spec = row
            self.specs[job_id] = spec
            for pending in self._awaiting_spec.pop(job_id, []):
                self._launch(*pending)
        elif relation == "map_locs":
            job_id, locs = row
            self._on_map_locs(job_id, locs)
        elif relation == "fetch_map_out":
            job_id, map_t, r_index, reply_to = row
            out = self.map_outputs.get((job_id, map_t))
            records = tuple(out[r_index]) if out is not None else None
            self.send(reply_to, "map_out_data", (job_id, map_t, r_index, records))
        elif relation == "map_out_data":
            self._on_map_out_data(*row)

    # -- launch ------------------------------------------------------------------------

    def _launch(self, job_id: int, task_id: int, attempt: int, kind: str) -> None:
        spec = self.specs.get(job_id)
        if spec is None:
            self._awaiting_spec.setdefault(job_id, []).append(
                (job_id, task_id, attempt, kind)
            )
            self.send(self.jobtracker, "get_job_spec", (job_id, self.address))
            return
        state = _Attempt(job_id, task_id, attempt, kind, started_ms=self.now)
        self.running[state.key] = state
        if kind == "map":
            self._start_map(state, spec)
        else:
            self._start_reduce(state, spec)

    def _kill(self, key: tuple[int, int, int]) -> None:
        state = self.running.pop(key, None)
        if state is not None:
            state.killed = True
            if state.done_handle is not None:
                state.done_handle.cancel()
            if state.fetch_deadline is not None:
                state.fetch_deadline.cancel()

    def _finish(self, state: _Attempt) -> None:
        if state.killed or state.key not in self.running:
            return
        del self.running[state.key]
        self.tasks_executed += 1
        self.send(
            self.jobtracker,
            "task_done",
            (self.address, state.job_id, state.task_id, state.attempt),
        )

    # -- map execution ---------------------------------------------------------------------

    def _start_map(self, state: _Attempt, spec: JobSpec) -> None:
        path = spec.inputs[state.task_id]
        if self.fs is None:
            raise RuntimeError("map task needs a filesystem session")

        def on_read(ok: bool, data: Any, _retried: bool) -> None:
            if state.killed:
                return
            if not ok:
                # Input temporarily unreadable (e.g. NameNode failing
                # over): retry until the kill/los e path cleans us up.
                self.after(500, lambda: self.fs.read(path, on_read))
                return
            state.compute_start_ms = self.now
            state.duration_ms = int(
                self.map_overhead_ms
                + len(data) / self.map_bytes_per_ms * self.speed_factor
            )
            state.done_handle = self.after(
                state.duration_ms, lambda: self._complete_map(state, spec, data)
            )

        self.fs.read(path, on_read)

    def _complete_map(self, state: _Attempt, spec: JobSpec, data: bytes) -> None:
        if state.killed:
            return
        if spec.num_reduces > 0:
            partitions: list[list] = [[] for _ in range(spec.num_reduces)]
            for lineno, line in enumerate(data.decode("utf-8", "replace").splitlines()):
                for key, value in spec.map_func(lineno, line):
                    partitions[partition_for(key, spec.num_reduces)].append(
                        (key, value)
                    )
            self.map_outputs[(state.job_id, state.task_id)] = partitions
        self._finish(state)

    # -- reduce execution -------------------------------------------------------------------

    def _start_reduce(self, state: _Attempt, spec: JobSpec) -> None:
        self._request_locs(state)

    def _request_locs(self, state: _Attempt) -> None:
        if state.killed:
            return
        self.send(self.jobtracker, "get_map_locs", (state.job_id, self.address))

    def _on_map_locs(self, job_id: int, locs: tuple) -> None:
        spec = self.specs.get(job_id)
        if spec is None:
            return
        waiting = [
            a
            for a in self.running.values()
            if a.kind == "reduce" and a.job_id == job_id and a.duration_ms is None
            and not a.pending_fetches
        ]
        for state in waiting:
            if len(locs) < spec.num_maps:
                # Some map output is (re-)executing; poll again shortly.
                self.after(500, lambda s=state: self._request_locs(s))
                continue
            state.collected = {}
            state.pending_fetches = {t for t, _ in locs}
            r_index = reduce_index(state.task_id)
            for map_t, addr in locs:
                self.send(
                    addr,
                    "fetch_map_out",
                    (job_id, map_t, r_index, self.address),
                )
            state.fetch_deadline = self.after(
                self.fetch_timeout_ms, lambda s=state: self._fetch_timed_out(s)
            )

    def _fetch_timed_out(self, state: _Attempt) -> None:
        if state.killed or not state.pending_fetches:
            return
        # Report every straggling map as failed and start over.
        for map_t in state.pending_fetches:
            self.send(
                self.jobtracker, "fetch_failed", (self.address, state.job_id, map_t)
            )
        state.pending_fetches = set()
        state.collected = {}
        self.after(500, lambda: self._request_locs(state))

    def _on_map_out_data(
        self, job_id: int, map_t: int, r_index: int, records: Optional[tuple]
    ) -> None:
        for state in list(self.running.values()):
            if (
                state.kind != "reduce"
                or state.job_id != job_id
                or reduce_index(state.task_id) != r_index
                or map_t not in state.pending_fetches
            ):
                continue
            if records is None:
                # That tracker lost the output (restart): trigger map
                # re-execution and retry.
                self.send(
                    self.jobtracker, "fetch_failed", (self.address, job_id, map_t)
                )
                state.pending_fetches = set()
                state.collected = {}
                if state.fetch_deadline is not None:
                    state.fetch_deadline.cancel()
                self.after(500, lambda s=state: self._request_locs(s))
                return
            state.collected[map_t] = records
            state.pending_fetches.discard(map_t)
            if not state.pending_fetches:
                if state.fetch_deadline is not None:
                    state.fetch_deadline.cancel()
                self._begin_reduce_compute(state)

    def _begin_reduce_compute(self, state: _Attempt) -> None:
        spec = self.specs[state.job_id]
        shuffled = sum(
            len(str(k)) + 8 for recs in state.collected.values() for k, _ in recs
        )
        state.compute_start_ms = self.now
        state.duration_ms = int(
            self.reduce_overhead_ms
            + shuffled / self.reduce_bytes_per_ms * self.speed_factor
        )
        state.done_handle = self.after(
            state.duration_ms, lambda: self._complete_reduce(state, spec)
        )

    def _complete_reduce(self, state: _Attempt, spec: JobSpec) -> None:
        if state.killed:
            return
        groups: dict[str, list] = {}
        for records in state.collected.values():
            for key, value in records:
                groups.setdefault(key, []).append(value)
        output: list[tuple] = []
        for key in sorted(groups):
            output.extend(spec.reduce_func(key, groups[key]))
        if spec.output_dir is None or self.fs is None:
            self._finish(state)
            return
        path = f"{spec.output_dir}/part-{reduce_index(state.task_id):05d}"
        data = "\n".join(f"{k}\t{v}" for k, v in output).encode()

        def on_write(ok: bool, payload: Any, retried: bool) -> None:
            # A speculative twin may have written the identical file first.
            if ok or payload == "exists":
                self._finish(state)
            elif payload == "noparent":
                # Create the output directory (first reducer to get here
                # wins; "exists" from the others is fine) and retry.
                self.fs.mkdir(
                    spec.output_dir,
                    lambda *_: self.after(
                        100, lambda: self.fs.write(path, data, on_write)
                    ),
                )
            else:
                self.after(500, lambda: self.fs.write(path, data, on_write))

        self.fs.write(path, data, on_write)
