"""BOOM-MR: MapReduce with a declarative (Overlog) JobTracker.

Scheduling policy — FIFO task assignment, Hadoop-style speculation, or
the LATE policy — is a set of Overlog rules (``scheduler_programs/``);
TaskTrackers are imperative mechanism.  ``runner.build_mr_cluster`` wires
the full analytics stack (FS + MR) on one simulator, and both the
JobTracker and the filesystem can be swapped for the imperative baseline
(:mod:`repro.hadoop`) to reproduce the paper's stack-comparison CDFs.
"""

from .jobtracker import JobTracker, scheduler_program, scheduler_source
from .runner import JobRunner, MRCluster, build_mr_cluster, run_wordcount
from .tasktracker import TaskTracker
from .types import (
    REDUCE_BASE,
    JobResult,
    JobSpec,
    is_reduce_task,
    partition_for,
    reduce_index,
)
from .workloads import (
    grep_reduce,
    local_grep,
    local_wordcount,
    make_grep_map,
    make_input_files,
    wordcount_map,
    wordcount_reduce,
    zipf_corpus,
)

__all__ = [
    "JobRunner",
    "JobResult",
    "JobSpec",
    "JobTracker",
    "MRCluster",
    "REDUCE_BASE",
    "TaskTracker",
    "build_mr_cluster",
    "grep_reduce",
    "is_reduce_task",
    "local_grep",
    "local_wordcount",
    "make_grep_map",
    "make_input_files",
    "partition_for",
    "reduce_index",
    "run_wordcount",
    "scheduler_program",
    "scheduler_source",
    "wordcount_map",
    "wordcount_reduce",
    "zipf_corpus",
]
