"""BOOM-MR JobTracker: Overlog scheduling policy + thin imperative glue.

The glue does only what the paper's Java glue did: feed job submissions
into the relations, ship job specs to TaskTrackers, answer map-output
location queries (from the ``winner`` relation), and surface job
completion to the runner.  Which task runs where — including speculation —
is decided entirely by the merged Overlog policy.
"""

from __future__ import annotations

import itertools
from importlib import resources
from typing import Optional

from ..overlog import Program, parse
from ..sim.node import OverlogProcess
from .types import JobSpec

POLICIES = ("fifo", "hadoop", "late")

_SOURCES: dict[str, str] = {}


def scheduler_source(name: str) -> str:
    if name not in _SOURCES:
        _SOURCES[name] = (
            resources.files("repro.mapreduce")
            .joinpath(f"scheduler_programs/{name}.olg")
            .read_text()
        )
    return _SOURCES[name]


def scheduler_program(policy: str = "fifo") -> Program:
    """The JobTracker program for a policy: FIFO core plus, optionally,
    one of the speculative-execution rule modules."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; pick one of {POLICIES}")
    program = parse(scheduler_source("boom_mr"))
    if policy == "hadoop":
        program = program.merged(parse(scheduler_source("spec_hadoop")))
    elif policy == "late":
        program = program.merged(parse(scheduler_source("spec_late")))
    return program


class JobTracker(OverlogProcess):
    """The BOOM-MR master.

    Parameters
    ----------
    policy: "fifo" (no speculation), "hadoop", or "late".
    spec_min_runtime_ms / spec_lag / slow_node_ratio: speculation knobs
        (installed into spec_conf / late_conf).
    """

    def __init__(
        self,
        address: str = "jobtracker",
        policy: str = "fifo",
        tt_timeout_ms: int = 3000,
        spec_min_runtime_ms: int = 1500,
        spec_lag: float = 0.2,
        slow_node_ratio: float = 0.5,
        seed: int = 0,
    ):
        self.policy = policy
        self.tt_timeout_ms = tt_timeout_ms
        self.spec_min_runtime_ms = spec_min_runtime_ms
        self.spec_lag = spec_lag
        self.slow_node_ratio = slow_node_ratio
        self._job_ids = itertools.count(1)
        self.specs: dict[int, JobSpec] = {}
        self.completions: dict[int, int] = {}  # job id -> finish ms
        self.submissions: dict[int, int] = {}  # job id -> submit ms
        self.task_launches: dict[tuple[int, int], int] = {}
        self.task_completions: dict[tuple[int, int], int] = {}
        super().__init__(address, scheduler_program(policy), seed=seed)

    def bootstrap(self) -> None:
        rt = self.runtime
        rt.install("tt_timeout", [(0, self.tt_timeout_ms)])
        if self.policy == "hadoop":
            rt.install(
                "spec_conf", [(0, self.spec_min_runtime_ms, self.spec_lag)]
            )
        elif self.policy == "late":
            rt.install(
                "late_conf",
                [(0, self.spec_min_runtime_ms, self.slow_node_ratio)],
            )
        self.runtime.watch("job_complete", self._on_job_complete)
        self.runtime.watch("do_assign", self._on_assign)
        self.runtime.watch("task_done", self._on_task_done)

    def _on_job_complete(self, row: tuple) -> None:
        job_id, finish_ms = row
        if job_id not in self.completions:
            self.metrics.counter("mr.jobs_completed").inc()
        self.completions.setdefault(job_id, finish_ms)

    def _on_assign(self, row: tuple) -> None:
        _, job_id, task_id, _ = row
        self.metrics.counter("mr.task_assignments").inc()
        self.task_launches.setdefault((job_id, task_id), self.now)

    def _on_task_done(self, row: tuple) -> None:
        _, job_id, task_id, _ = row
        self.metrics.counter("mr.tasks_completed").inc()
        self.task_completions.setdefault((job_id, task_id), self.now)

    # -- job submission ---------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        locality: Optional[dict[int, list[str]]] = None,
    ) -> int:
        """Register a job; returns its id.  Trackers known at submit time
        receive the spec (the runner starts trackers before submitting).

        ``locality`` maps a map task id to TaskTracker addresses whose
        machine holds that task's input (installed as ``task_loc`` rows;
        the scheduling rules prefer local assignments).
        """
        job_id = spec.job_id if spec.job_id else next(self._job_ids)
        spec.job_id = job_id
        self.specs[job_id] = spec
        self.submissions[job_id] = self.now
        self.metrics.counter("mr.jobs_submitted").inc()
        rt = self.runtime
        rt.insert("job", (job_id, spec.num_maps, spec.num_reduces, self.now))
        for task_id, tracker_addrs in (locality or {}).items():
            for addr in tracker_addrs:
                rt.insert("task_loc", (job_id, task_id, addr))
        rt.insert("job_state", (job_id, "running"))
        for t in spec.map_task_ids():
            rt.insert("task", (job_id, t, "map"))
            rt.insert("task_state", (job_id, t, "pending"))
        for t in spec.reduce_task_ids():
            rt.insert("task", (job_id, t, "reduce"))
            rt.insert("task_state", (job_id, t, "pending"))
        self._schedule_step()
        for addr, _ in self.runtime.rows("tracker"):
            self.send(addr, "job_spec", (job_id, spec))
        return job_id

    def is_complete(self, job_id: int) -> bool:
        return job_id in self.completions

    # -- imperative message handling ----------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        if relation == "get_map_locs":
            job_id, reply_to = row
            locs = tuple(
                (t, addr)
                for j, t, addr in self.runtime.rows("winner")
                if j == job_id
            )
            self.send(reply_to, "map_locs", (job_id, locs))
        elif relation == "get_job_spec":
            job_id, reply_to = row
            spec = self.specs.get(job_id)
            if spec is not None:
                self.send(reply_to, "job_spec", (job_id, spec))
        else:
            super().handle_message(relation, row)

    # -- inspection ------------------------------------------------------------------

    def task_states(self, job_id: int) -> dict[int, str]:
        return {
            t: state
            for j, t, state in self.runtime.rows("task_state")
            if j == job_id
        }

    def attempts(self, job_id: int) -> list[tuple]:
        return [r for r in self.runtime.rows("attempt") if r[0] == job_id]

    def speculative_attempts(self, job_id: int) -> list[tuple]:
        return [r for r in self.attempts(job_id) if r[2] > 0]

    def live_trackers(self) -> list[str]:
        return sorted(addr for addr, _ in self.runtime.rows("tracker"))
