"""Shared MapReduce types.

A job is specified exactly as in Hadoop's programming model: a map
function over input records, a reduce function over grouped intermediate
keys, M input files (one map task each), and R reduce partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..overlog.functions import stable_hash

# Reduce task ids live in a disjoint range from map task ids.
REDUCE_BASE = 1_000_000

MapFunc = Callable[[int, str], Iterable[tuple[str, int]]]
ReduceFunc = Callable[[str, list], Iterable[tuple[str, int]]]


@dataclass
class JobSpec:
    """Everything a TaskTracker needs to execute one job's tasks."""

    job_id: int
    inputs: list[str]  # one FS path per map task
    num_reduces: int
    map_func: MapFunc
    reduce_func: ReduceFunc
    output_dir: Optional[str] = None  # reduce output written to FS when set

    @property
    def num_maps(self) -> int:
        return len(self.inputs)

    def map_task_ids(self) -> list[int]:
        return list(range(self.num_maps))

    def reduce_task_ids(self) -> list[int]:
        return [REDUCE_BASE + r for r in range(self.num_reduces)]


def partition_for(key: str, num_reduces: int) -> int:
    """Deterministic key -> reduce-partition assignment."""
    return stable_hash(key) % num_reduces


def is_reduce_task(task_id: int) -> bool:
    return task_id >= REDUCE_BASE


def reduce_index(task_id: int) -> int:
    return task_id - REDUCE_BASE


@dataclass
class JobResult:
    """Filled in by the runner when a job completes."""

    job_id: int
    submitted_ms: int
    completed_ms: int
    map_times: dict[int, tuple[int, int]] = field(default_factory=dict)
    reduce_times: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def duration_ms(self) -> int:
        return self.completed_ms - self.submitted_ms

    def map_completion_times(self) -> list[int]:
        """Per-map-task completion offsets from job submit (for CDFs)."""
        return sorted(end - self.submitted_ms for _, end in self.map_times.values())

    def reduce_completion_times(self) -> list[int]:
        return sorted(
            end - self.submitted_ms for _, end in self.reduce_times.values()
        )
