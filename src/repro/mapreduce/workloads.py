"""Workloads: map/reduce functions and synthetic corpora.

The paper's experiments run wordcount and grep over a crawl stored in
(BOOM-)FS.  We generate a Zipf-distributed synthetic corpus with a seeded
RNG — same skewed key distribution, fully reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable

# A small closed vocabulary keeps outputs assertable while the Zipf draw
# preserves realistic skew (a few very hot words, a long tail).
_VOCABULARY = [
    "the", "of", "and", "to", "data", "cloud", "query", "log", "rule",
    "table", "node", "chunk", "path", "join", "lattice", "fact", "tuple",
    "event", "clock", "quorum", "ballot", "paxos", "shuffle", "reduce",
    "map", "task", "tracker", "master", "datalog", "overlog", "bloom",
    "analytics", "declarative", "fixpoint", "stratum", "timestep",
]


def zipf_corpus(
    words: int, seed: int = 0, exponent: float = 1.2, words_per_line: int = 10
) -> bytes:
    """Generate ``words`` Zipf-distributed words as newline-separated text."""
    rng = random.Random(seed)
    n = len(_VOCABULARY)
    weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(weights)
    weights = [w / total for w in weights]
    lines = []
    line: list[str] = []
    for _ in range(words):
        line.append(rng.choices(_VOCABULARY, weights)[0])
        if len(line) >= words_per_line:
            lines.append(" ".join(line))
            line = []
    if line:
        lines.append(" ".join(line))
    return "\n".join(lines).encode()


def make_input_files(words_per_file: int, num_files: int, seed: int = 0):
    """One corpus chunk per map task."""
    return [
        zipf_corpus(words_per_file, seed=seed * 1000 + i) for i in range(num_files)
    ]


# -- wordcount ---------------------------------------------------------------


def wordcount_map(_lineno: int, line: str) -> Iterable[tuple[str, int]]:
    for word in line.split():
        yield word, 1


def wordcount_reduce(key: str, values: list) -> Iterable[tuple[str, int]]:
    yield key, sum(values)


def local_wordcount(datasets: list[bytes]) -> dict[str, int]:
    """Single-node reference implementation (ground truth for tests)."""
    counts: dict[str, int] = {}
    for data in datasets:
        for line in data.decode().splitlines():
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
    return counts


# -- grep --------------------------------------------------------------------


def make_grep_map(pattern: str):
    import re

    compiled = re.compile(pattern)

    def grep_map(_lineno: int, line: str) -> Iterable[tuple[str, int]]:
        if compiled.search(line):
            yield line, 1

    return grep_map


def grep_reduce(key: str, values: list) -> Iterable[tuple[str, int]]:
    yield key, sum(values)


def local_grep(datasets: list[bytes], pattern: str) -> dict[str, int]:
    import re

    compiled = re.compile(pattern)
    counts: dict[str, int] = {}
    for data in datasets:
        for line in data.decode().splitlines():
            if compiled.search(line):
                counts[line] = counts.get(line, 0) + 1
    return counts


# -- distributed sort (terasort-shaped) ---------------------------------------


def sort_map(lineno: int, line: str) -> Iterable[tuple[str, int]]:
    """Identity map keyed by the record itself; the shuffle's hash
    partitioning plus each reducer's in-partition sort yields a total
    order *within* partitions (classic MapReduce sort without a sampled
    range partitioner)."""
    if line:
        yield line, 1


def sort_reduce(key: str, values: list) -> Iterable[tuple[str, int]]:
    yield key, sum(values)  # duplicates preserved as counts


def random_records(count: int, seed: int = 0, width: int = 12) -> bytes:
    """Fixed-width random records, one per line (sort input)."""
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "\n".join(
        "".join(rng.choice(alphabet) for _ in range(width))
        for _ in range(count)
    ).encode()


def local_sort(datasets: list[bytes]) -> list[str]:
    records = []
    for data in datasets:
        records.extend(l for l in data.decode().splitlines() if l)
    return sorted(set(records))
