"""Why-provenance for the Overlog runtime (docs/PROVENANCE.md).

The package has three parts, all off by default:

* :mod:`ledger` — a ring-buffered derivation ledger the compiled
  evaluator appends to as head tuples are produced (rule id, stratum,
  pass, joined body tuples, trace context),
* :mod:`why` — ``why()`` derivation-DAG reconstruction and ``why_not()``
  rule replay, plus :class:`ClusterProvenance` for cross-node stitching,
* :mod:`profiler` — a sampled per-plan profiler emitting hot-rules
  reports through :mod:`repro.metrics.export`.
"""

from .ledger import Derivation, DerivationLedger
from .profiler import PlanProfiler
from .why import (
    UNKNOWN,
    ClusterProvenance,
    render_why,
    render_why_not,
    why_dag,
    why_not,
)

__all__ = [
    "Derivation",
    "DerivationLedger",
    "PlanProfiler",
    "UNKNOWN",
    "ClusterProvenance",
    "why_dag",
    "why_not",
    "render_why",
    "render_why_not",
]
