"""``why()`` and ``why_not()`` — the provenance debugger's two queries.

``why_dag`` reconstructs the derivation DAG of a tuple from the
:class:`~repro.provenance.ledger.DerivationLedger`: each derivation entry
links a head tuple to the body tuples its join matched, recursively, down
to EDB leaves (bootstrap ``install`` facts, external inbox inserts, timer
firings).  Cross-node edges are stitched two ways:

* **ledger-to-ledger** — an ``input`` entry at node B matches a ``send``
  entry for the same tuple (with ``dest == B``) in another registered
  node's ledger, and reconstruction continues at the sender; or
* **trace-based** — when the sender keeps no ledger (imperative clients
  like :class:`repro.boomfs.client.BoomFSClient`), the input entry's
  trace context is resolved through the PR 1 tracer to name the origin
  node and trace.

``why_not`` answers the complementary question: for every installed rule
that could derive the missing tuple, it unifies the head with the (maybe
partially :data:`UNKNOWN`) tuple and replays the rule body *in rule
order* against the current tables with the AST-walking interpreter
primitives, reporting the first body atom / predicate that empties the
binding set.  The interpreter path is used deliberately: the compiled
matchers freeze bind-vs-check decisions against an *empty* initial
environment, so they would mishandle head-seeded bindings.

Both queries are read-only over the ledger and tables — with one caveat
for ``why_not``: replaying a body evaluates its assignments and
conditions, so stateful builtins (``f_newid()`` etc.) are invoked and
advance their counters.  See docs/PROVENANCE.md.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from ..overlog.ast import AggSpec, Assign, Atom, Cond, Const, NotIn, Var
from ..overlog.errors import EvaluationError
from ..overlog.eval import eval_expr, match_atom
from .ledger import DerivationLedger

# Maximum alternative derivations of one tuple shown per DAG node.
MAX_ALTERNATIVES = 3
# Maximum blocking rows reported for a failing ``notin``.
MAX_BLOCKERS = 3


class _Unknown:
    """Placeholder for an unknown column in a ``why_not`` query tuple
    (e.g. an id the user cannot predict)."""

    def __repr__(self) -> str:
        return "?"


UNKNOWN = _Unknown()


def _row_repr(row: Iterable[Any]) -> str:
    return "(" + ", ".join(repr(v) for v in row) + ")"


# ---------------------------------------------------------------------------
# why(): derivation DAG reconstruction
# ---------------------------------------------------------------------------


def why_dag(
    ledger: DerivationLedger,
    relation: str,
    row: Iterable[Any],
    ledgers: Optional[dict[str, DerivationLedger]] = None,
    tracer: Any = None,
    max_depth: int = 64,
) -> dict:
    """Reconstruct the derivation DAG of ``(relation, row)``.

    ``ledgers`` maps node name -> ledger for cross-node stitching (the
    starting ledger need not be included); ``tracer`` enables trace-based
    origin resolution for senders without ledgers.  The result is a
    JSON-friendly dict tree; repeated subtrees collapse to ``ref`` nodes
    and cycles (possible through ``@next``) are cut the same way.
    """
    all_ledgers: dict[str, DerivationLedger] = {str(ledger.node): ledger}
    if ledgers:
        for name, led in ledgers.items():
            all_ledgers[str(name)] = led
    done: set = set()

    def build(node: str, rel: str, r: tuple, depth: int, path: frozenset) -> dict:
        key = (node, rel, r)
        out: dict = {"node": node, "relation": rel, "row": list(r)}
        if key in path or key in done:
            out["status"] = "ref"  # shown elsewhere in the DAG
            return out
        if depth > max_depth:
            out["status"] = "depth-limit"
            return out
        led = all_ledgers.get(node)
        entries = led.derivations_of(rel, r) if led is not None else []
        if not entries:
            out["status"] = "unknown"
            out["note"] = (
                "no recorded derivation (EDB fact predating the ledger, "
                "or evicted from the ring)"
            )
            return out
        done.add(key)
        path = path | {key}
        # Prefer live entries; newest first; cap alternatives.
        entries = sorted(
            entries, key=lambda e: (e.retracted is not None, -e.seq)
        )
        shown = entries[:MAX_ALTERNATIVES]
        out["status"] = (
            "retracted"
            if all(e.retracted is not None for e in entries)
            else "derived"
        )
        if len(entries) > len(shown):
            out["alternatives_elided"] = len(entries) - len(shown)
        rendered = []
        for entry in shown:
            d = entry.to_dict()
            d["body"] = [
                build(node, brel, brow, depth + 1, path)
                for brel, brow in entry.body
            ]
            if entry.kind == "input":
                origin = _stitch_origin(
                    all_ledgers, tracer, node, entry, depth, path, build
                )
                if origin is not None:
                    d["origin"] = origin
            rendered.append(d)
        out["derivations"] = rendered
        return out

    start = str(ledger.node)
    return build(start, relation, tuple(row), 0, frozenset())


def _stitch_origin(
    ledgers: dict[str, DerivationLedger],
    tracer: Any,
    node: str,
    entry,
    depth: int,
    path: frozenset,
    build,
) -> Optional[dict]:
    """Resolve where an ``input`` entry came from: the sender's ledger
    if it keeps one, else the tracer's span parentage."""
    candidates = []
    for name, led in ledgers.items():
        if name == node:
            continue
        for send in led.sends_of(entry.rel, entry.row):
            if str(send.dest) == node:
                candidates.append((name, send))
    if candidates:
        # The latest send not after the receipt; falls back to the
        # latest send overall (clock skew cannot happen — one virtual
        # clock — but a re-send may race the ring).
        eligible = [
            c for c in candidates if c[1].now_ms <= entry.now_ms
        ] or candidates
        sender, send = max(eligible, key=lambda c: (c[1].now_ms, c[1].seq))
        return {
            "via": "ledger",
            "node": sender,
            "rule": send.rule,
            "step": send.step,
            "body": [
                build(sender, brel, brow, depth + 1, path)
                for brel, brow in send.body
            ],
        }
    if tracer is not None and entry.ctx:
        ref = entry.ctx[0]
        origin_node = tracer.origin_node(ref)
        if origin_node is not None:
            return {
                "via": "trace",
                "node": origin_node,
                "trace": ref.trace_id,
                "span": ref.span_id,
            }
    return None


def dag_nodes(dag: dict) -> set[str]:
    """Every node name appearing in a ``why_dag`` result (including
    trace-resolved origins) — the provenance analogue of
    ``Tracer.nodes_crossed``."""
    nodes: set[str] = set()

    def walk(d: dict) -> None:
        if "node" in d:
            nodes.add(d["node"])
        for entry in d.get("derivations", ()):
            for child in entry.get("body", ()):
                walk(child)
            origin = entry.get("origin")
            if origin:
                nodes.add(origin["node"])
                for child in origin.get("body", ()):
                    walk(child)

    walk(dag)
    return nodes


def render_why(dag: dict) -> str:
    """ASCII tree rendering of a ``why_dag`` result."""
    lines: list[str] = []

    def tuple_label(d: dict) -> str:
        return f"{d['relation']}{_row_repr(d['row'])}"

    def emit(d: dict, depth: int) -> None:
        pad = "  " * depth
        status = d.get("status")
        if status == "ref":
            lines.append(f"{pad}+- {tuple_label(d)} (shown above)")
            return
        if status == "depth-limit":
            lines.append(f"{pad}+- {tuple_label(d)} ... (depth limit)")
            return
        if status == "unknown":
            lines.append(f"{pad}+- {tuple_label(d)} [no ledger entry]")
            return
        mark = " [RETRACTED]" if status == "retracted" else ""
        lines.append(f"{pad}+- {tuple_label(d)}{mark}")
        for entry in d.get("derivations", ()):
            emit_entry(entry, depth + 1)
        elided = d.get("alternatives_elided")
        if elided:
            lines.append(
                f"{pad}   (+{elided} more derivation(s) elided)"
            )

    def emit_entry(entry: dict, depth: int) -> None:
        pad = "  " * depth
        kind = entry["kind"]
        tomb = entry.get("retracted")
        tomb_s = (
            f" [RETRACTED step {tomb['step']}: {tomb['reason']}]"
            if tomb
            else ""
        )
        if kind == "rule":
            head = (
                f"rule {entry['rule']} @ step {entry['step']} "
                f"(stratum {entry['stratum']}, pass {entry['pass']})"
            )
        elif kind == "next":
            head = f"rule {entry['rule']} @next, deferred at step {entry['step']}"
        elif kind == "install":
            head = f"EDB install @ step {entry['step']}"
        elif kind == "timer":
            head = f"timer firing @ step {entry['step']}"
        elif kind == "input":
            head = f"external input @ step {entry['step']}"
        else:
            head = f"{kind} @ step {entry['step']}"
        lines.append(f"{pad}<= {head}{tomb_s}")
        for child in entry.get("body", ()):
            emit(child, depth + 1)
        origin = entry.get("origin")
        if origin is not None:
            opad = "  " * (depth + 1)
            if origin["via"] == "ledger":
                lines.append(
                    f"{opad}<- sent by {origin['node']} "
                    f"(rule {origin['rule']} @ step {origin['step']})"
                )
                for child in origin.get("body", ()):
                    emit(child, depth + 2)
            else:
                lines.append(
                    f"{opad}<- origin {origin['node']} "
                    f"(trace {origin['trace']} span {origin['span']})"
                )

    header = f"why {dag['node']}:{tuple_label(dag)}?"
    emit(dag, 0)
    return header + "\n" + "\n".join(lines)


def why_json(dag: dict) -> str:
    return json.dumps(dag, indent=2, sort_keys=True, default=repr)


# ---------------------------------------------------------------------------
# why_not(): rule replay against current tables
# ---------------------------------------------------------------------------


def why_not(evaluator, relation: str, row: Iterable[Any]) -> dict:
    """Explain why ``(relation, row)`` is not derivable right now.

    ``row`` values may be :data:`UNKNOWN` for columns the caller cannot
    predict.  Each candidate rule (same head relation) is replayed:
    unify the head against the tuple, then run the body in rule order
    over the current tables; the first element that empties the binding
    set is the reported failure.
    """
    row = tuple(row)
    catalog = evaluator.catalog
    report: dict = {
        "relation": relation,
        "row": [repr(v) if isinstance(v, _Unknown) else v for v in row],
        "candidates": [],
    }
    if catalog.is_materialized(relation):
        matching = [
            r
            for r in catalog.table(relation).scan()
            if _row_matches(r, row)
        ]
        report["present"] = bool(matching)
        if matching:
            report["matching_rows"] = [list(r) for r in matching[:5]]
    else:
        report["present"] = False
        report["note"] = (
            f"{relation} is an event relation: tuples exist only inside "
            "a timestep"
        )
    for rule in evaluator.rules:
        if rule.head.name != relation:
            continue
        report["candidates"].append(_replay_rule(evaluator, rule, row))
    if not report["candidates"]:
        report["note"] = f"no installed rule derives {relation}"
    return report


def _row_matches(actual: tuple, pattern: tuple) -> bool:
    if len(actual) != len(pattern):
        return False
    return all(
        isinstance(p, _Unknown) or a == p for a, p in zip(actual, pattern)
    )


def _replay_rule(evaluator, rule, row: tuple) -> dict:
    result: dict = {
        "rule": rule.name,
        "text": str(rule),
        "deferred": rule.deferred,
        "delete": rule.delete,
    }
    if rule.delete:
        result["status"] = "delete-rule"
        result["note"] = "delete rules retract tuples, they cannot derive one"
        return result
    head = rule.head
    if len(head.args) != len(row):
        result["status"] = "head-mismatch"
        result["failed_at"] = {
            "element": str(head),
            "detail": f"arity {len(head.args)} != query arity {len(row)}",
        }
        return result

    # Head unification: bind head variables from the known query columns;
    # constants must match; computed head expressions (and aggregate
    # specs) are checked after the body binds their inputs.
    env: dict = {}
    post_checks: list[tuple[int, Any, Any]] = []
    for col, (arg, value) in enumerate(zip(head.args, row)):
        if isinstance(value, _Unknown):
            continue
        if isinstance(arg, Var):
            if arg.is_wildcard:
                continue
            if arg.name in env:
                if env[arg.name] != value:
                    result["status"] = "head-mismatch"
                    result["failed_at"] = {
                        "element": str(head),
                        "detail": (
                            f"column {col}: {arg.name} already bound to "
                            f"{env[arg.name]!r}, query wants {value!r}"
                        ),
                    }
                    return result
            else:
                env[arg.name] = value
        elif isinstance(arg, Const):
            if arg.value != value:
                result["status"] = "head-mismatch"
                result["failed_at"] = {
                    "element": str(head),
                    "detail": (
                        f"column {col}: constant {arg.value!r} != "
                        f"query value {value!r}"
                    ),
                }
                return result
        elif isinstance(arg, AggSpec):
            # Aggregate outputs cannot be inverted; treat as unknown.
            continue
        else:
            post_checks.append((col, arg, value))

    envs = [env]
    trace: list[dict] = []
    functions = evaluator.functions
    for elem in rule.body:
        step_info: dict = {"element": str(elem), "survivors": 0}
        try:
            if isinstance(elem, Atom):
                step_info["kind"] = "atom"
                rows = list(evaluator._rows(elem.name))
                step_info["relation"] = elem.name
                step_info["relation_size"] = len(rows)
                new_envs = []
                for e in envs:
                    for r in rows:
                        matched = match_atom(elem, r, e, functions)
                        if matched is not None:
                            new_envs.append(matched)
                envs = new_envs
                if not envs and not evaluator.catalog.is_materialized(
                    elem.name
                ):
                    step_info["note"] = (
                        f"{elem.name} is an event relation — empty "
                        "between timesteps"
                    )
            elif isinstance(elem, NotIn):
                step_info["kind"] = "notin"
                step_info["relation"] = elem.atom.name
                rows = list(evaluator._rows(elem.atom.name))
                kept = []
                blockers: list = []
                for e in envs:
                    blocked = False
                    for r in rows:
                        if match_atom(elem.atom, r, e, functions) is not None:
                            blocked = True
                            if len(blockers) < MAX_BLOCKERS:
                                blockers.append(list(r))
                            break
                    if not blocked:
                        kept.append(e)
                envs = kept
                if blockers:
                    step_info["blockers"] = blockers
            elif isinstance(elem, Assign):
                step_info["kind"] = "assign"
                new_envs = []
                for e in envs:
                    value = eval_expr(elem.expr, e, functions)
                    if elem.var.name in e:
                        if e[elem.var.name] == value:
                            new_envs.append(e)
                    else:
                        extended = dict(e)
                        extended[elem.var.name] = value
                        new_envs.append(extended)
                envs = new_envs
            elif isinstance(elem, Cond):
                step_info["kind"] = "cond"
                envs = [e for e in envs if eval_expr(elem.expr, e, functions)]
            else:  # pragma: no cover - parser prevents this
                raise EvaluationError(f"unknown body element {elem!r}")
        except EvaluationError as exc:
            step_info["error"] = str(exc)
            envs = []
        step_info["survivors"] = len(envs)
        trace.append(step_info)
        if not envs:
            result["status"] = "fails"
            result["failed_at"] = step_info
            result["trace"] = trace
            return result

    # Body satisfiable: check computed head columns against the query.
    for col, arg, value in post_checks:
        surviving = []
        for e in envs:
            try:
                if eval_expr(arg, e, functions) == value:
                    surviving.append(e)
            except EvaluationError:
                pass
        envs = surviving
        if not envs:
            result["status"] = "fails"
            result["failed_at"] = {
                "kind": "head-expr",
                "element": str(arg),
                "detail": (
                    f"no body binding makes head column {col} equal "
                    f"{value!r}"
                ),
            }
            result["trace"] = trace
            return result

    result["status"] = "derivable"
    result["trace"] = trace
    result["bindings"] = len(envs)
    if rule.deferred:
        result["note"] = "@next rule: would insert at the next timestep"
    elif rule.head.loc is not None:
        result["note"] = (
            "head has a location specifier: the tuple may route to "
            "another node"
        )
    elif rule.is_aggregate:
        result["note"] = (
            "aggregate rule: derivability checked for the group, not "
            "the folded value"
        )
    return result


def render_why_not(report: dict) -> str:
    lines = [
        f"why not {report['relation']}"
        f"({', '.join(map(str, report['row']))})?"
    ]
    if report.get("present"):
        lines.append(
            "  tuple IS present; matching rows: "
            + ", ".join(map(str, report.get("matching_rows", [])))
        )
    if "note" in report:
        lines.append(f"  note: {report['note']}")
    for cand in report["candidates"]:
        status = cand["status"]
        if status == "derivable":
            line = (
                f"  rule {cand['rule']}: DERIVABLE now "
                f"({cand['bindings']} binding(s))"
            )
            if "note" in cand:
                line += f" — {cand['note']}"
            lines.append(line)
        elif status == "head-mismatch":
            lines.append(
                f"  rule {cand['rule']}: head mismatch — "
                f"{cand['failed_at']['detail']}"
            )
        elif status == "delete-rule":
            lines.append(f"  rule {cand['rule']}: (delete rule, skipped)")
        else:
            fail = cand["failed_at"]
            detail = fail.get("detail")
            if detail is None:
                bits = []
                if "relation_size" in fail:
                    bits.append(f"{fail['relation_size']} row(s) in relation")
                if "blockers" in fail:
                    bits.append(f"blocked by {fail['blockers']}")
                if "note" in fail:
                    bits.append(fail["note"])
                if "error" in fail:
                    bits.append(fail["error"])
                detail = "; ".join(bits) if bits else "0 bindings survive"
            lines.append(
                f"  rule {cand['rule']}: fails at {fail['element']} — "
                f"{detail}"
            )
            for step in cand.get("trace", ()):
                lines.append(
                    f"      after {step['element']}: "
                    f"{step['survivors']} binding(s)"
                )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Cross-node registry
# ---------------------------------------------------------------------------


class ClusterProvenance:
    """Registry of per-node derivation ledgers plus the cluster tracer,
    so ``why()`` stitches derivations across simulated nodes."""

    def __init__(self, tracer: Any = None):
        self.tracer = tracer
        self.ledgers: dict[str, DerivationLedger] = {}

    def register(self, node: Any, ledger: DerivationLedger) -> None:
        """(Re-)register a node's ledger — called on start and restart."""
        self.ledgers[str(node)] = ledger

    def ledger_for(self, node: Any) -> Optional[DerivationLedger]:
        return self.ledgers.get(str(node))

    def why(
        self,
        node: Any,
        relation: str,
        row: Iterable[Any],
        fmt: str = "text",
        max_depth: int = 64,
    ):
        ledger = self.ledgers.get(str(node))
        if ledger is None:
            msg = f"(no provenance ledger registered for node {node!r})"
            return msg if fmt == "text" else {"error": msg}
        dag = why_dag(
            ledger,
            relation,
            row,
            ledgers=self.ledgers,
            tracer=self.tracer,
            max_depth=max_depth,
        )
        return render_why(dag) if fmt == "text" else dag
