"""The derivation ledger: ring-buffered why-provenance records.

Every head tuple the (compiled) evaluator produces while provenance is
enabled appends one record here: which rule fired, in which stratum and
semi-naive pass of which timestep, the body tuples the join matched, and
the trace context the step ran under (so cross-node provenance can be
stitched through :mod:`repro.metrics.trace`).

Tuples that *enter* the node rather than being derived — inbox inserts,
timer firings, bootstrap installs — get entries too (kind ``input`` /
``timer`` / ``install``), which is how ``why()`` recognises EDB leaves
and remote origins.

The buffer is a fixed-capacity ring: old entries are evicted FIFO (the
``dropped`` counter records how many), so memory stays bounded on
long-running nodes at the cost of provenance horizon.  Retraction does
not delete entries — deleted or displaced tuples have their live entries
*tombstoned* (``retracted`` set to the reason and step), so a ``why()``
on a stale reading reports "this was derived, then retracted at step N"
instead of dangling.

Recording is the evaluator's per-derivation hot path and must stay
within the A1 overhead budget (<10% enabled vs disabled), so the ring
stores each record as a plain list (one ``BUILD_LIST`` beats a dozen
slot stores) and the witness environments are stored as-is, with body
reconstruction deferred to first read through the evaluator-installed
``resolver``.  Readers get :class:`Derivation` views, thin attribute
wrappers over the raw record.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

Row = tuple

# Entry kinds.
RULE = "rule"          # head tuple derived by a (non-deferred) rule
NEXT = "next"          # head tuple deferred to the next step by @next
SEND = "send"          # head tuple shipped to another node (dest set)
INPUT = "input"        # arrived through the inbox (network / client)
TIMER = "timer"        # timer firing
INSTALL = "install"    # bootstrap install() outside any timestep

# Default ring capacity: enough for every scenario in the repo while
# keeping a ledger under a few MB per node.
DEFAULT_CAPACITY = 65_536

# Raw record field offsets.
_SEQ = 0
_KIND = 1
_RULE = 2
_STRATUM = 3
_PASS = 4
_REL = 5
_ROW = 6
_BODY = 7
_CTX = 8
_STEP = 9
_NOW = 10
_DEST = 11
_RETRACTED = 12
# While set, _BODY holds the raw witness (the final body environment(s)
# the head was projected from) and this slot holds the deriving Rule;
# the ledger's resolver turns the pair into body tuples on first read.
_WRULE = 13


class Derivation:
    """Read-only view over one raw provenance record.  ``body`` is the
    tuple of ``(relation, row)`` pairs the rule body joined (empty for
    external kinds); ``ctx`` is the trace context of the step that
    produced it; ``retracted`` is None while the tuple is live, else
    ``(reason, step)``."""

    __slots__ = ("_raw", "_resolve")

    def __init__(self, raw: list, resolve=None):
        self._raw = raw
        self._resolve = resolve

    @property
    def seq(self) -> int:
        return self._raw[_SEQ]

    @property
    def kind(self) -> str:
        return self._raw[_KIND]

    @property
    def rule(self) -> Optional[str]:
        return self._raw[_RULE]

    @property
    def stratum(self) -> int:
        return self._raw[_STRATUM]

    @property
    def passno(self) -> int:
        return self._raw[_PASS]

    @property
    def rel(self) -> str:
        return self._raw[_REL]

    @property
    def row(self) -> Row:
        return self._raw[_ROW]

    @property
    def body(self) -> tuple:
        """The joined body tuples, reconstructing (and caching) them if
        recording deferred the work to first read."""
        raw = self._raw
        wrule = raw[_WRULE]
        if wrule is not None:
            raw[_BODY] = self._resolve(wrule, raw[_BODY])
            raw[_WRULE] = None
        return raw[_BODY]

    @property
    def ctx(self) -> tuple:
        return self._raw[_CTX]

    @property
    def step(self) -> int:
        return self._raw[_STEP]

    @property
    def now_ms(self) -> int:
        return self._raw[_NOW]

    @property
    def dest(self) -> Any:
        return self._raw[_DEST]

    @property
    def retracted(self) -> Optional[tuple[str, int]]:
        return self._raw[_RETRACTED]

    def to_dict(self) -> dict:
        d = {
            "seq": self.seq,
            "kind": self.kind,
            "rule": self.rule,
            "stratum": self.stratum,
            "pass": self.passno,
            "relation": self.rel,
            "row": list(self.row),
            "body": [[rel, list(row)] for rel, row in self.body],
            "step": self.step,
            "now_ms": self.now_ms,
        }
        if self.ctx:
            d["trace"] = [str(ref) for ref in self.ctx]
        if self.dest is not None:
            d["dest"] = self.dest
        if self.retracted is not None:
            d["retracted"] = {
                "reason": self.retracted[0],
                "step": self.retracted[1],
            }
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tomb = f" RETRACTED{self.retracted}" if self.retracted else ""
        return (
            f"<Derivation #{self.seq} {self.kind} {self.rel}{self.row!r} "
            f"rule={self.rule} step={self.step}{tomb}>"
        )


class DerivationLedger:
    """Fixed-capacity ring of provenance records with a ``(relation,
    row) -> records`` index for ``why()`` lookups and a separate index
    of send entries for cross-node stitching."""

    def __init__(self, node: Any = "local", capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("ledger capacity must be >= 1")
        self.node = node
        self.capacity = capacity
        # Witness resolver, set by Evaluator.attach_ledger: maps a
        # (rule, witness-env(s)) pair to the reconstructed body tuples.
        self.resolver = None
        self._ring: list[list] = []
        self._head = 0  # next eviction slot once the ring is full
        self._seq = 0
        self.dropped = 0
        self._by_tuple: dict[tuple[str, Row], list[list]] = {}
        self._sends: dict[tuple[str, Row], list[list]] = {}
        # Records appended since the indexes were last brought up to
        # date; drained by _sync() on the first lookup/retraction.
        self._pending: list[list] = []
        # Per-step stamps, set by begin_step before the evaluator runs.
        self._step = 0
        self._now_ms = 0
        self._ctx: tuple = ()

    def __len__(self) -> int:
        return len(self._ring)

    # -- stamping ------------------------------------------------------------

    def begin_step(self, step: int, now_ms: int, ctx: tuple) -> None:
        """Stamp the step number, clock and trace context every entry
        recorded until the next ``begin_step`` carries."""
        self._step = step
        self._now_ms = now_ms
        self._ctx = ctx

    # -- recording (hot path) ------------------------------------------------

    def record(
        self,
        kind: str,
        rule: Optional[str],
        stratum: int,
        passno: int,
        rel: str,
        row: Row,
        body: Any,
        dest: Any = None,
        witness_rule: Any = None,
    ) -> list:
        """Record one derivation under the current step stamps.

        When ``witness_rule`` is given, ``body`` is the raw witness (the
        final body environment(s)) and reconstruction into body tuples is
        deferred until the entry is first read.
        """
        self._seq = seq = self._seq + 1
        rec = [
            seq, kind, rule, stratum, passno, rel, row, body,
            self._ctx, self._step, self._now_ms, dest, None, witness_rule,
        ]
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(rec)
        else:
            self._sync()  # the evictee must be indexed to be unlinked
            old = ring[self._head]
            ring[self._head] = rec
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1
            self._evict(old)
        self._pending.append(rec)
        return rec

    def _sync(self) -> None:
        """Fold records appended since the last lookup into the
        ``(relation, row)`` indexes (amortizes index upkeep off the
        recording hot path)."""
        pending = self._pending
        if not pending:
            return
        by_tuple = self._by_tuple
        sends = self._sends
        for rec in pending:
            index = sends if rec[_KIND] == SEND else by_tuple
            key = (rec[_REL], rec[_ROW])
            bucket = index.get(key)
            if bucket is None:
                index[key] = [rec]
            else:
                bucket.append(rec)
        pending.clear()

    def record_external(
        self, kind: str, rel: str, row: Row, ctx: tuple = ()
    ) -> None:
        """Record a tuple that entered from outside the fixpoint (inbox
        insert, timer firing, bootstrap install)."""
        rec = self.record(kind, None, -1, 0, rel, row, (), None)
        if ctx:
            rec[_CTX] = tuple(ctx)

    def _evict(self, rec: list) -> None:
        index = self._sends if rec[_KIND] == SEND else self._by_tuple
        key = (rec[_REL], rec[_ROW])
        bucket = index.get(key)
        if bucket is not None:
            try:
                bucket.remove(rec)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not bucket:
                del index[key]

    def find_row(
        self, rel: str, cols: tuple, vals: tuple, arity: int
    ) -> Optional[Row]:
        """Newest recorded row of ``rel`` agreeing with the given exact
        columns — the lazy witness resolver's last-resort probe for event
        tuples that vanished with their timestep (or rows deleted since;
        see docs/PROVENANCE.md).  Send records are skipped: an outbound
        tuple is addressed to another node and never existed in local
        tables (a self-send re-enters as an ``input`` entry anyway)."""
        best: Optional[Row] = None
        best_seq = -1
        for rec in self._ring:
            if rec[_REL] != rel or rec[_SEQ] <= best_seq or rec[_KIND] == SEND:
                continue
            row = rec[_ROW]
            if len(row) != arity:
                continue
            for c, v in zip(cols, vals):
                if row[c] != v:
                    break
            else:
                best = row
                best_seq = rec[_SEQ]
        return best

    def retract(self, rel: str, row: Row, reason: str) -> int:
        """Tombstone every live entry for ``(rel, row)``; returns how
        many were tombstoned."""
        self._sync()
        bucket = self._by_tuple.get((rel, tuple(row)))
        if not bucket:
            return 0
        n = 0
        mark = (reason, self._step)
        for rec in bucket:
            if rec[_RETRACTED] is None:
                rec[_RETRACTED] = mark
                n += 1
        return n

    # -- lookups -------------------------------------------------------------

    def derivations_of(
        self, rel: str, row: Iterable[Any], live_only: bool = False
    ) -> list[Derivation]:
        """All recorded derivations of ``(rel, row)``, oldest first."""
        self._sync()
        bucket = self._by_tuple.get((rel, tuple(row)), [])
        resolve = self.resolver
        if live_only:
            return [
                Derivation(r, resolve)
                for r in bucket
                if r[_RETRACTED] is None
            ]
        return [Derivation(r, resolve) for r in bucket]

    def sends_of(self, rel: str, row: Iterable[Any]) -> list[Derivation]:
        """All send entries for ``(rel, row)``, oldest first."""
        self._sync()
        resolve = self.resolver
        return [
            Derivation(r, resolve)
            for r in self._sends.get((rel, tuple(row)), [])
        ]

    def entries(self) -> list[Derivation]:
        """Every live-in-ring entry in sequence order (test/debug aid)."""
        resolve = self.resolver
        return [
            Derivation(r, resolve)
            for r in sorted(self._ring, key=lambda r: r[_SEQ])
        ]

    def stats(self) -> dict:
        return {
            "node": str(self.node),
            "entries": len(self._ring),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "recorded": self._seq,
        }
