"""Sampled per-plan profiler for the compiled evaluator.

Times each step (index probe, scan, matcher, negation check, assignment,
condition) of a compiled join plan — but only on sampled executions
(every ``sample_every``-th execution of each ``(rule, delta-position)``
plan, always including the first), so the un-sampled hot path pays one
dict lookup and counter increment per plan execution.

Sampled timings are scaled by the observed sampling ratio into
*estimated* totals; the hot-rules report (rendered through
:mod:`repro.metrics.export`) ranks rules by estimated time and breaks
each down per plan and per step, cross-referencing ``explain()`` output
by rule id and step index.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Optional

DEFAULT_SAMPLE_EVERY = 32


class _StepStat:
    __slots__ = ("describe", "runs", "time_ns", "envs_out")

    def __init__(self, describe: str):
        self.describe = describe
        self.runs = 0
        self.time_ns = 0
        self.envs_out = 0


class _PlanStat:
    """Stats for one (rule, delta-position) plan."""

    __slots__ = ("rule", "tag", "execs", "sampled", "time_ns", "steps", "rows_out")

    def __init__(self, rule: str, tag: str):
        self.rule = rule
        self.tag = tag
        self.execs = 0       # total executions (sampled or not)
        self.sampled = 0     # executions actually timed
        self.time_ns = 0     # total sampled plan time
        self.steps: list[_StepStat] = []
        self.rows_out = 0    # head tuples from sampled executions

    def step_stat(self, index: int, step: Any) -> _StepStat:
        steps = self.steps
        while len(steps) <= index:
            steps.append(None)
        ss = steps[index]
        if ss is None:
            # describe() renders text — only pay for it once per step.
            ss = steps[index] = _StepStat(step.describe())
        return ss


def _tag(delta_pos: Any) -> str:
    if delta_pos is None:
        return "full"
    if delta_pos == "agg":
        return "agg"
    return f"delta@{delta_pos}"


class PlanProfiler:
    """Decides which plan executions to time, and accumulates results.

    The evaluator calls :meth:`should_sample` on every plan execution;
    when it returns True, the execution is routed through
    :meth:`run_plan` / :meth:`run_agg_plan`, which produce exactly the
    same results as the plan's own ``execute``/``execute_tracked`` while
    timing each step.
    """

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self._stats: dict[tuple[str, str], _PlanStat] = {}

    def invalidate(self) -> None:
        """Drop every accumulated (rule, plan-tag) stat.

        Called by ``PlanCache.invalidate`` on a rule-set swap: stats are
        keyed by rule *name*, so letting them survive would attribute a
        new program's timings to same-named rules of the old one.  (A
        recompile of the *same* rules also lands here — plan ``_prof``
        slots are cleared with the plans, and the next execution re-links
        fresh stats.)"""
        self._stats = {}

    # -- sampling decision (hot path) ---------------------------------------

    def link(self, plan: Any) -> _PlanStat:
        """Find-or-create the stat for ``plan`` and cache it on the plan
        itself (``plan._prof``), so the evaluator's inlined sampling
        decision is one attribute load, an increment and a modulo.
        Stats are *keyed* by (rule, tag) in ``_stats``; a rule-set swap
        flushes them through :meth:`invalidate` (via
        ``PlanCache.invalidate``) so a new program never inherits
        same-named rules' timings."""
        key = (plan.rule.name, _tag(plan.delta_pos))
        stat = self._stats.get(key)
        if stat is None:
            stat = _PlanStat(*key)
            self._stats[key] = stat
        plan._prof = stat
        return stat

    def should_sample(self, plan: Any) -> bool:
        """Count one execution of ``plan``; True when it must be timed
        (the 1st, (1+N)th, (1+2N)th... execution of each plan).  The
        evaluator inlines this logic; kept as the reference entry point
        for tests and external callers."""
        stat = plan._prof
        if stat is None:
            stat = self.link(plan)
        n = stat.execs
        stat.execs = n + 1
        return n % self.sample_every == 0

    # -- timed execution -----------------------------------------------------

    def _run_steps(self, stat: _PlanStat, steps, ev, delta_rows, exclude):
        envs: list = [{}]
        for index, step in enumerate(steps):
            if not envs:
                break
            t0 = perf_counter_ns()
            envs = step.run(ev, envs, delta_rows, exclude)
            dt = perf_counter_ns() - t0
            ss = stat.step_stat(index, step)
            ss.runs += 1
            ss.time_ns += dt
            ss.envs_out += len(envs)
        return envs

    def run_plan(self, plan, ev, delta_rows, exclude, tracked: bool) -> list:
        """Execute ``plan`` with per-step timing; same results as the
        plan's untimed path."""
        stat = plan._prof
        t_plan = perf_counter_ns()
        envs = self._run_steps(stat, plan.steps, ev, delta_rows, exclude)
        if not envs:
            out = []
        else:
            name = plan.head_name
            fns = plan.head_fns
            if tracked:
                out = [
                    (name, tuple(fn(env) for fn in fns), env)
                    for env in envs
                ]
            else:
                out = [
                    (name, tuple(fn(env) for fn in fns)) for env in envs
                ]
        stat.time_ns += perf_counter_ns() - t_plan
        stat.sampled += 1
        stat.rows_out += len(out)
        return out

    def run_agg_plan(self, plan, ev, tracked: bool) -> list:
        """Execute an AggregatePlan, timing its body plan's steps (the
        grouping fold itself is timed as part of the plan total)."""
        stat = plan._prof
        t0 = perf_counter_ns()
        envs = self._run_steps(stat, plan.body.steps, ev, (), None)
        out = _agg_fold(plan, envs, tracked)
        stat.time_ns += perf_counter_ns() - t0
        stat.sampled += 1
        stat.rows_out += len(out)
        return out

    # -- reporting -----------------------------------------------------------

    def hot_rules(self, top: Optional[int] = None) -> dict:
        """Estimated per-rule cost, scaled from sampled executions."""
        by_rule: dict[str, dict] = {}
        for stat in self._stats.values():
            scale = (stat.execs / stat.sampled) if stat.sampled else 0.0
            est_ns = stat.time_ns * scale
            entry = by_rule.setdefault(
                stat.rule,
                {"rule": stat.rule, "est_ms": 0.0, "execs": 0,
                 "sampled": 0, "plans": []},
            )
            entry["est_ms"] += est_ns / 1e6
            entry["execs"] += stat.execs
            entry["sampled"] += stat.sampled
            entry["plans"].append({
                "tag": stat.tag,
                "execs": stat.execs,
                "sampled": stat.sampled,
                "est_ms": est_ns / 1e6,
                "rows_out": stat.rows_out,
                "steps": [
                    {
                        "step": i,
                        "describe": ss.describe,
                        "runs": ss.runs,
                        "time_ms": ss.time_ns / 1e6,
                        "envs_out": ss.envs_out,
                    }
                    for i, ss in enumerate(stat.steps)
                    if ss is not None
                ],
            })
        rules = sorted(
            by_rule.values(), key=lambda r: r["est_ms"], reverse=True
        )
        if top is not None:
            rules = rules[:top]
        for entry in rules:
            entry["est_ms"] = round(entry["est_ms"], 3)
            entry["plans"].sort(key=lambda p: p["est_ms"], reverse=True)
            for p in entry["plans"]:
                p["est_ms"] = round(p["est_ms"], 3)
                for s in p["steps"]:
                    s["time_ms"] = round(s["time_ms"], 3)
        return {"sample_every": self.sample_every, "rules": rules}


def _agg_fold(plan, envs: list, tracked: bool) -> list:
    """The grouping/fold half of AggregatePlan.execute(_tracked), applied
    to pre-computed body environments."""
    from ..overlog.plan import aggregate

    group_fns = plan.group_fns
    agg_specs = plan.agg_specs
    groups: dict = {}
    witnesses: dict = {}
    for env in envs:
        key = tuple(fn(env) for _, fn in group_fns)
        values = tuple(
            None if fn is None else fn(env) for _, _, fn in agg_specs
        )
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [values]
            if tracked:
                witnesses[key] = [env]
        elif tracked:
            bucket.append(values)
            witnesses[key].append(env)
        else:
            bucket.append(values)
    out: list = []
    for key, value_rows in groups.items():
        row: list = [None] * plan.arity
        for slot, (i, _fn) in enumerate(group_fns):
            row[i] = key[slot]
        for slot, (i, func, fn) in enumerate(agg_specs):
            if fn is None:
                row[i] = len(value_rows)
            else:
                row[i] = aggregate(func, [vr[slot] for vr in value_rows])
        if tracked:
            out.append((plan.head_name, tuple(row), tuple(witnesses[key])))
        else:
            out.append((plan.head_name, tuple(row)))
    return out
