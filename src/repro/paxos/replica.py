"""Paxos replica process.

:class:`PaxosReplica` hosts the pure consensus program (for protocol unit
tests and the Paxos microbenchmark); :mod:`repro.paxos.replicated_master`
builds on it to replicate the whole BOOM-FS NameNode.

Durability: real Paxos requires acceptor state to survive crashes.  The
simulator's crash/restart wipes volatile state, so the replica persists its
acceptor and learner tables (``max_promised``, ``acc``, ``decided``) to a
"disk" dict owned by the Python object, and reinstalls them on restart.
The applied cursor deliberately restarts at 1: the state machine is rebuilt
by replaying the decided log, which is exactly the recovery story the
declarative design buys.
"""

from __future__ import annotations

from importlib import resources
from typing import Any, Optional

from ..overlog import Program, parse
from ..sim.node import OverlogProcess

_PAXOS_SOURCE: Optional[str] = None


def paxos_program_source() -> str:
    global _PAXOS_SOURCE
    if _PAXOS_SOURCE is None:
        _PAXOS_SOURCE = (
            resources.files("repro.paxos")
            .joinpath("programs/paxos.olg")
            .read_text()
        )
    return _PAXOS_SOURCE


def paxos_program() -> Program:
    return parse(paxos_program_source())


class PaxosReplica(OverlogProcess):
    """One replica of a Paxos group.

    Parameters
    ----------
    address: this replica's network address.
    group: addresses of *all* replicas (including this one), in a fixed
        order shared by every member — the index in this list staggers
        election timeouts and disambiguates ballots.
    base_election_timeout_ms / election_stagger_ms:
        follower i suspects the leader after base + i * stagger of silence.
    """

    def __init__(
        self,
        address: str,
        group: list[str],
        program: Program | str | None = None,
        base_election_timeout_ms: int = 1000,
        election_stagger_ms: int = 400,
        seed: int = 0,
        extra_functions: Optional[dict] = None,
        provenance: bool = False,
        profile: bool = False,
    ):
        if address not in group:
            raise ValueError(f"{address} not in its own group {group}")
        self.group = list(group)
        self.base_election_timeout_ms = base_election_timeout_ms
        self.election_stagger_ms = election_stagger_ms
        self._disk: dict[str, list[tuple]] = {}
        self._localseq = 0

        functions = dict(extra_functions or {})
        functions["f_localseq"] = self._next_localseq
        super().__init__(
            address,
            program if program is not None else paxos_program(),
            seed=seed,
            extra_functions=functions,
            provenance=provenance,
            profile=profile,
        )

    def _next_localseq(self) -> int:
        self._localseq += 1
        return self._localseq

    # -- bootstrap -----------------------------------------------------------

    def bootstrap(self) -> None:
        index = self.group.index(self.address)
        rt = self.runtime
        rt.install("members", [(m,) for m in self.group])
        rt.install("nmembers", [(0, len(self.group))])
        rt.install("quorum", [(0, len(self.group) // 2 + 1)])
        rt.install("me", [(0, self.address)])
        rt.install("my_index", [(0, index)])
        rt.install(
            "election_timeout",
            [(0, self.base_election_timeout_ms + index * self.election_stagger_ms)],
        )
        rt.install("role", [(0, "follower")])
        rt.install("curr_ballot", [(0, 0)])
        rt.install("next_inst", [(0, 1)])
        rt.install("applied", [(0, 1)])
        rt.install("leader_seen", [(0, 0)])
        # Durable acceptor/learner state, if any survived a crash.
        rt.install("max_promised", self._disk.get("max_promised", [(0, 0)]))
        rt.install("acc", self._disk.get("acc", []))
        rt.install("decided", self._disk.get("decided", []))
        metrics = self.metrics
        rt.watch("decided", lambda row: metrics.counter("paxos.decided").inc())
        rt.watch(
            "role", lambda row: metrics.counter("paxos.role_changes").inc()
        )
        # Leader liveness for the telemetry plane: 1 on the leader, 0
        # elsewhere; the monitor's PAXOS_ALERTS pack alarms when the
        # cluster-wide sum of reported samples is zero (no live leader).
        leader_gauge = metrics.gauge("paxos.is_leader")
        leader_gauge.set(0)
        rt.watch(
            "role",
            lambda row: leader_gauge.set(1 if row[1] == "leader" else 0),
        )

    def on_crash(self) -> None:
        # Persist acceptor and learner state ("fsync on crash" is a
        # simulator convenience; the tables are tiny).
        self._disk = {
            "max_promised": self.runtime.rows("max_promised"),
            "acc": self.runtime.rows("acc"),
            "decided": self.runtime.rows("decided"),
        }
        super().on_crash()

    def state_export_rows(self, clock: int) -> list[tuple]:
        """Cluster-invariant export: promise/applied cursor plus the
        decided log (see repro.monitoring.global_invariants)."""
        from ..monitoring.global_invariants import paxos_state_rows

        return paxos_state_rows(self.runtime, str(self.address), clock)

    # -- inspection -----------------------------------------------------------

    @property
    def role(self) -> str:
        rows = self.runtime.rows("role")
        return rows[0][1] if rows else "unknown"

    @property
    def is_leader(self) -> bool:
        return self.role == "leader"

    def decided_log(self) -> dict[int, Any]:
        return {inst: value for inst, value in self.runtime.rows("decided")}

    def applied_through(self) -> int:
        rows = self.runtime.rows("applied")
        return rows[0][1] - 1 if rows else 0

    def submit(self, value: Any) -> None:
        """Inject a client operation at this replica (it forwards to the
        leader if it is not the leader itself)."""
        self.inject("client_op", (self.address, value))

    # -- provenance debugging (docs/PROVENANCE.md) ---------------------------

    def why_decided(self, inst: int, fmt: str = "text"):
        """Derivation DAG of the ``decided`` entry for instance ``inst``
        — *why did this slot decide this value?* — stitched across the
        group's ledgers when attached, so the quorum of ``accepted``
        messages resolves back to the acceptors that sent them.
        Requires ``provenance=True``."""
        value = self.decided_log().get(inst)
        if value is None:
            from ..provenance.why import UNKNOWN

            return self.runtime.why_not("decided", (inst, UNKNOWN), fmt=fmt)
        if self.cluster is not None:
            return self.cluster.provenance.why(
                self.address, "decided", (inst, value), fmt=fmt
            )
        return self.runtime.why("decided", (inst, value), fmt=fmt)
