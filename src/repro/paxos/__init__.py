"""Overlog Paxos and the Paxos-replicated BOOM-FS NameNode.

The consensus protocol itself lives in ``programs/paxos.olg`` — MultiPaxos
with failure-driven leader election, continuous phase-1 recovery, accept
retransmission and follower catch-up, all as Overlog rules.  Python code
here only bootstraps configuration, persists acceptor state across
simulated crashes, and glues decided log entries into the BOOM-FS program.
"""

from .replica import PaxosReplica, paxos_program, paxos_program_source
from .replicated_master import (
    ReplicatedFSClient,
    ReplicatedMaster,
    replicated_master_program,
)

__all__ = [
    "PaxosReplica",
    "ReplicatedFSClient",
    "ReplicatedMaster",
    "paxos_program",
    "paxos_program_source",
    "replicated_master_program",
]
