"""Paxos-replicated BOOM-FS NameNode (the paper's availability revision).

The paper's point: because both Paxos and the NameNode are Overlog
programs over relations, "replicating the NameNode" is just loading both
programs into the same runtime and adding a two-rule bridge that feeds
decided log entries into the FS program's ``request`` event.  This module
does literally that.

Determinism contract: every replica applies the same client operations in
the same log order, and all identifier generation in the FS program flows
through ``f_newid()``/``f_idscope()``, which advance identically under
replay.  Soft state (DataNode liveness, chunk locations) is *not*
replicated — DataNodes heartbeat to every replica, exactly as HDFS block
reports rebuild a restarted NameNode.
"""

from __future__ import annotations

from typing import Optional

from ..boomfs.chunks import DEFAULT_CHUNK_SIZE
from ..boomfs.client import BoomFSClient
from ..boomfs.master import ROOT_FILE_ID, master_program
from ..overlog import parse
from ..sim.network import Address
from .replica import PaxosReplica, paxos_program

# The bridge: decided operations re-enter the FS program as `request`
# events.  Values travel through Paxos as packed 5-tuples.
_GLUE_SOURCE = """
program fs_glue;
u1 request(Rid, Client, Op, Path, Arg) :-
        fs_op(V),
        Rid := f_nth(V, 0), Client := f_nth(V, 1), Op := f_nth(V, 2),
        Path := f_nth(V, 3), Arg := f_nth(V, 4);
"""


def replicated_master_program(drop_rules: tuple[str, ...] = ()):
    """paxos ∪ fs_glue ∪ boomfs_master, as one Overlog program."""
    return (
        paxos_program()
        .merged(parse(_GLUE_SOURCE))
        .merged(master_program(drop_rules))
    )


class ReplicatedMaster(PaxosReplica):
    """One replica of a Paxos-replicated NameNode group."""

    def __init__(
        self,
        address: str,
        group: list[str],
        replication: int = 3,
        dn_timeout_ms: int = 3000,
        id_scope: Optional[str] = None,
        base_election_timeout_ms: int = 1000,
        election_stagger_ms: int = 400,
        drop_rules: tuple[str, ...] = (),
        seed: int = 0,
    ):
        self.replication = replication
        self.dn_timeout_ms = dn_timeout_ms
        # All replicas must share one id scope (default: the group name).
        scope = id_scope if id_scope is not None else "+".join(sorted(group))
        self.id_scope = scope
        # Sharded-and-replicated deployments flip this so exports carry
        # fs_owner claims (replicas of one group share a scope, so they
        # never trip shard-disjointness against each other).
        self.export_ownership = False
        super().__init__(
            address,
            group,
            program=replicated_master_program(drop_rules),
            base_election_timeout_ms=base_election_timeout_ms,
            election_stagger_ms=election_stagger_ms,
            seed=seed,
            extra_functions={"f_idscope": lambda: scope},
        )

    def bootstrap(self) -> None:
        super().bootstrap()  # paxos config + durable acceptor state
        rt = self.runtime
        rt.install("file", [(ROOT_FILE_ID, -1, "", True)])
        rt.install("repfactor", [(self.replication,)])
        rt.install("dn_timeout", [(self.dn_timeout_ms,)])

    def state_export_rows(self, clock: int) -> list[tuple]:
        """Both halves of the replicated NameNode export: the Paxos
        cursor/log (from PaxosReplica) plus the FS chunk state."""
        from ..monitoring.global_invariants import boomfs_state_rows

        rows = super().state_export_rows(clock)
        rows.extend(
            boomfs_state_rows(
                self.runtime,
                str(self.address),
                clock,
                ownership_scope=(
                    self.id_scope if self.export_ownership else None
                ),
            )
        )
        return rows

    # -- inspection (mirrors BoomFSMaster) ------------------------------------

    def paths(self) -> dict[str, int]:
        return {path: fid for path, fid in self.runtime.rows("fqpath")}

    def files(self) -> list[tuple]:
        return self.runtime.rows("file")

    def live_datanodes(self) -> list[str]:
        return sorted(addr for addr, _ in self.runtime.rows("datanode"))

    def chunks_of(self, file_id: int) -> list[str]:
        rows = [r for r in self.runtime.rows("fchunk") if r[1] == file_id]
        return [cid for cid, _, _ in sorted(rows, key=lambda r: r[2])]

    def chunk_locations(self, chunk_id: str) -> list[str]:
        return sorted(
            addr
            for addr, cid, _ in self.runtime.rows("hb_chunk")
            if cid == chunk_id
        )


class ReplicatedFSClient(BoomFSClient):
    """Synchronous client for a Paxos-replicated NameNode group.

    Operations are packed into ``client_op`` values; whichever replica
    receives one forwards it to the current leader, which sequences it
    through the log.  Every replica applies the op and responds; the first
    response wins, later duplicates are ignored.  RPC timeouts rotate
    through the replica list, so the client rides out leader failures.
    """

    def __init__(
        self,
        address: Address,
        replicas: list[Address],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        op_timeout_ms: int = 60_000,
        rpc_timeout_ms: int = 800,
    ):
        super().__init__(
            address,
            masters=list(replicas),
            chunk_size=chunk_size,
            op_timeout_ms=op_timeout_ms,
            rpc_timeout_ms=rpc_timeout_ms,
            encode_request=lambda master, row: ("client_op", (master, row)),
        )
