"""BOOM-FS: an HDFS-workalike with a declarative (Overlog) metadata plane.

The NameNode state machine — path resolution, directory operations, chunk
allocation/placement, DataNode liveness, garbage collection and
re-replication — is an Overlog program (``programs/boomfs_master.olg``)
executed by :mod:`repro.overlog`.  DataNodes and clients are imperative,
exactly as in the paper.

Typical setup::

    from repro.sim import Cluster
    from repro.boomfs import BoomFSMaster, DataNode, BoomFSClient

    cluster = Cluster()
    cluster.add(BoomFSMaster("master", replication=2))
    for i in range(3):
        cluster.add(DataNode(f"dn{i}", masters=["master"]))
    fs = cluster.add(BoomFSClient("client", masters=["master"]))
    cluster.run_for(1000)          # let DataNodes register
    fs.mkdir("/data")
    fs.write("/data/hello", b"hello, declarative world")
    assert fs.read("/data/hello") == b"hello, declarative world"
"""

from .chunks import DEFAULT_CHUNK_SIZE, assemble_chunks, split_chunks
from .client import BoomFSClient, FSError, FSSession, FSTimeout
from .datanode import DataNode
from .master import BoomFSMaster, master_program, master_program_source
from .shell import FSShell, ShellError

__all__ = [
    "BoomFSClient",
    "BoomFSMaster",
    "DEFAULT_CHUNK_SIZE",
    "DataNode",
    "FSError",
    "FSSession",
    "FSShell",
    "FSTimeout",
    "ShellError",
    "assemble_chunks",
    "master_program",
    "master_program_source",
    "split_chunks",
]
