"""BOOM-FS client library.

Two layers:

* :class:`FSSession` — asynchronous, callback-based.  It can be embedded
  in any simulated :class:`~repro.sim.node.Process` (the MapReduce
  TaskTracker embeds one to read its input chunks) and implements RPC
  retry/failover across a list of master replicas.
* :class:`BoomFSClient` — a synchronous facade for tests, examples and
  benchmarks.  Each call drives the simulator until its response arrives,
  so client code reads like ordinary blocking filesystem code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim.network import Address
from ..sim.node import Process
from ..sim.simulator import EventHandle
from .chunks import DEFAULT_CHUNK_SIZE, assemble_chunks, split_chunks


class FSError(Exception):
    """A filesystem operation failed; ``code`` is the master's error tag."""

    def __init__(self, code: str, op: str = "", path: str = ""):
        super().__init__(f"{op} {path}: {code}".strip())
        self.code = code
        self.op = op
        self.path = path


class FSTimeout(FSError):
    """No response arrived within the deadline (master unreachable)."""

    def __init__(self, op: str = "", path: str = ""):
        super().__init__("timeout", op, path)


Callback = Callable[[bool, Any, bool], None]  # (ok, payload, retried)

# Errors that signal an earlier, response-lost attempt already succeeded.
IDEMPOTENT_ERRORS = {"mkdir": "exists", "create": "exists", "rm": "noent"}


@dataclass
class _PendingRpc:
    op: str
    path: str
    arg: Any
    callback: Callback
    timeout_handle: Optional[EventHandle] = None
    retries: int = 0


class FSSession:
    """Asynchronous BOOM-FS protocol driver bound to a host process."""

    RELATIONS = frozenset({"response", "chunk_ack", "chunk_data"})

    def __init__(
        self,
        host: Process,
        masters: list[Address],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        rpc_timeout_ms: int = 400,
        max_retries: int = 12,
        rid_counter: Optional[itertools.count] = None,
        encode_request: Optional[
            Callable[[Address, tuple], tuple[str, tuple]]
        ] = None,
        preferred_nodes: Optional[frozenset] = None,
    ):
        if not masters:
            raise ValueError("need at least one master address")
        # DataNodes fetched from first when holding a wanted chunk (data
        # locality: a TaskTracker prefers its machine-local DataNode).
        self.preferred_nodes = preferred_nodes or frozenset()
        self.host = host
        self.masters = list(masters)
        self.chunk_size = chunk_size
        self.rpc_timeout_ms = rpc_timeout_ms
        self.max_retries = max_retries
        self._leader = 0
        # Sessions sharing one host must share the counter so request ids
        # stay unique per client address (see PartitionedFSClient).
        self._rids = rid_counter if rid_counter is not None else itertools.count(1)
        self._encode_request = encode_request
        self._pending: dict[int, _PendingRpc] = {}
        self._ack_waiters: dict[int, tuple[set, Callable[[], None], EventHandle]] = {}
        self._data_waiters: dict[int, Callable[[Optional[bytes]], None]] = {}

    # -- message plumbing -----------------------------------------------------

    def handles(self, relation: str) -> bool:
        return relation in self.RELATIONS

    def on_message(self, relation: str, row: tuple) -> None:
        if relation == "response":
            _, rid, ok, payload = row
            pending = self._pending.pop(rid, None)
            if pending is None:
                return  # late duplicate after a retry already completed
            if pending.timeout_handle is not None:
                pending.timeout_handle.cancel()
            pending.callback(ok, payload, pending.retries > 0)
        elif relation == "chunk_ack":
            rid, _, addr = row
            waiter = self._ack_waiters.get(rid)
            if waiter is None:
                return
            needed, done, timeout = waiter
            needed.discard(addr)
            if not needed:
                del self._ack_waiters[rid]
                timeout.cancel()
                done()
        elif relation == "chunk_data":
            rid, _, data = row
            handler = self._data_waiters.pop(rid, None)
            if handler is not None:
                handler(data)

    # -- RPC with master failover -------------------------------------------------

    def rpc(self, op: str, path: str, arg: Any, callback: Callback) -> int:
        rid = next(self._rids)
        pending = _PendingRpc(op=op, path=path, arg=arg, callback=callback)
        self._pending[rid] = pending
        self._transmit(rid)
        return rid

    def _transmit(self, rid: int) -> None:
        pending = self._pending.get(rid)
        if pending is None:
            return
        master = self.masters[self._leader % len(self.masters)]
        row = (rid, self.host.address, pending.op, pending.path, pending.arg)
        if self._encode_request is not None:
            relation, row = self._encode_request(master, row)
        else:
            relation = "request"
        self.host.send(master, relation, row)
        pending.timeout_handle = self.host.after(
            self.rpc_timeout_ms, lambda: self._on_rpc_timeout(rid)
        )

    def _on_rpc_timeout(self, rid: int) -> None:
        pending = self._pending.get(rid)
        if pending is None:
            return
        pending.retries += 1
        if pending.retries > self.max_retries:
            del self._pending[rid]
            pending.callback(False, "timeout", True)
            return
        # Assume the current master is down; rotate and resend.
        self._leader = (self._leader + 1) % len(self.masters)
        self._transmit(rid)

    # -- metadata operations ---------------------------------------------------------

    def mkdir(self, path: str, cb: Callback) -> None:
        self.rpc("mkdir", path, None, cb)

    def create(self, path: str, cb: Callback) -> None:
        self.rpc("create", path, None, cb)

    def exists(self, path: str, cb: Callback) -> None:
        self.rpc("exists", path, None, cb)

    def ls(self, path: str, cb: Callback) -> None:
        self.rpc("ls", path, None, cb)

    def rm(self, path: str, cb: Callback) -> None:
        self.rpc("rm", path, None, cb)

    def mv(self, old: str, new: str, cb: Callback) -> None:
        self.rpc("mv", old, new, cb)

    def stat(self, path: str, cb: Callback) -> None:
        self.rpc("stat", path, None, cb)

    # -- data path: write ----------------------------------------------------------------

    def write(self, path: str, data: bytes, cb: Callback) -> None:
        """Create ``path`` and store its data (single-writer, no overwrite)."""
        chunks = split_chunks(data, self.chunk_size)

        def after_create(ok: bool, payload: Any, retried: bool) -> None:
            if not ok and not (retried and payload == "exists"):
                cb(False, payload, retried)
                return
            self._write_chunks(path, chunks, 0, cb)

        self.create(path, after_create)

    def _write_chunks(
        self, path: str, chunks: list[bytes], index: int, cb: Callback
    ) -> None:
        if index >= len(chunks):
            cb(True, len(chunks), False)
            return

        def after_addchunk(ok: bool, payload: Any, retried: bool) -> None:
            if not ok:
                cb(False, payload, retried)
                return
            cid, addrs = payload[0], list(payload[1])
            if not addrs:
                cb(False, "nodatanodes", retried)
                return
            self._store_to_datanodes(
                cid,
                chunks[index],
                addrs,
                on_done=lambda: self._write_chunks(path, chunks, index + 1, cb),
                on_fail=lambda: cb(False, "storetimeout", retried),
            )

        self.rpc("addchunk", path, None, after_addchunk)

    def _store_to_datanodes(
        self,
        cid: str,
        data: bytes,
        addrs: list[Address],
        on_done: Callable[[], None],
        on_fail: Callable[[], None],
    ) -> None:
        rid = next(self._rids)
        needed = set(addrs)
        # Budget grows with chunk size: bulk transfers take simulated time.
        budget = self.rpc_timeout_ms + len(data) // 1024
        attempts = 0

        def transmit() -> None:
            nonlocal attempts
            attempts += 1
            waiter = self._ack_waiters.get(rid)
            if waiter is None:
                return
            remaining = waiter[0]
            # Sorted iteration: set order is hash-order, which would leak
            # PYTHONHASHSEED into the send sequence (and the trace log).
            for addr in sorted(remaining):
                self.host.send(
                    addr, "store_chunk", (cid, data, self.host.address, rid)
                )
            handle = self.host.after(budget, timed_out)
            self._ack_waiters[rid] = (remaining, on_done, handle)

        def timed_out() -> None:
            if rid not in self._ack_waiters:
                return
            if attempts >= self.max_retries:
                del self._ack_waiters[rid]
                on_fail()
            else:
                # Retransmit to replicas that have not acked (store is
                # idempotent: same chunk id, same bytes).
                transmit()

        placeholder = self.host.after(budget, timed_out)
        self._ack_waiters[rid] = (needed, on_done, placeholder)
        placeholder.cancel()
        transmit()

    # -- data path: read --------------------------------------------------------------------

    def read(self, path: str, cb: Callback) -> None:
        """Fetch all chunks of ``path`` and reassemble its contents."""

        def after_getchunks(ok: bool, payload: Any, retried: bool) -> None:
            if not ok:
                cb(False, payload, retried)
                return
            chunk_ids = [cid for _, cid in payload]  # already (idx, cid) sorted
            self._read_chunks(path, chunk_ids, [], cb)

        self.rpc("getchunks", path, None, after_getchunks)

    def _read_chunks(
        self, path: str, remaining: list[str], collected: list[bytes], cb: Callback
    ) -> None:
        if not remaining:
            cb(True, assemble_chunks(collected), False)
            return
        cid = remaining[0]

        def after_locs(ok: bool, payload: Any, retried: bool) -> None:
            if not ok:
                cb(False, payload, retried)
                return
            addrs = sorted(
                payload, key=lambda a: (a not in self.preferred_nodes, a)
            )
            self._fetch_from(
                cid,
                addrs,
                on_data=lambda data: (
                    collected.append(data),
                    self._read_chunks(path, remaining[1:], collected, cb),
                ),
                on_fail=lambda: cb(False, "chunklost", retried),
            )

        self.rpc("chunklocs", "", cid, after_locs)

    def _fetch_from(
        self,
        cid: str,
        addrs: list[Address],
        on_data: Callable[[bytes], None],
        on_fail: Callable[[], None],
    ) -> None:
        if not addrs:
            on_fail()
            return
        rid = next(self._rids)
        settled = False

        def on_chunk_data(data: Optional[bytes]) -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            handle.cancel()
            if data is None:
                self._fetch_from(cid, addrs[1:], on_data, on_fail)
            else:
                on_data(data)

        def timed_out() -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            self._data_waiters.pop(rid, None)
            self._fetch_from(cid, addrs[1:], on_data, on_fail)

        self._data_waiters[rid] = on_chunk_data
        handle = self.host.after(self.rpc_timeout_ms, timed_out)
        self.host.send(addrs[0], "fetch_chunk", (rid, cid, self.host.address))


class BoomFSClient(Process):
    """Synchronous BOOM-FS client for tests, examples and benchmarks.

    Must be added to the cluster like any process; every call drives the
    simulator until the operation settles, then returns or raises
    :class:`FSError`.
    """

    def __init__(
        self,
        address: Address,
        masters: list[Address] | str = "master",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        op_timeout_ms: int = 60_000,
        rpc_timeout_ms: int = 400,
        encode_request: Optional[
            Callable[[Address, tuple], tuple[str, tuple]]
        ] = None,
    ):
        super().__init__(address)
        if isinstance(masters, str):
            masters = [masters]
        self.session = FSSession(
            self,
            masters,
            chunk_size=chunk_size,
            rpc_timeout_ms=rpc_timeout_ms,
            encode_request=encode_request,
        )
        self.op_timeout_ms = op_timeout_ms
        self._pending_trace: Any = None

    def handle_message(self, relation: str, row: tuple) -> None:
        if self.session.handles(relation):
            self.session.on_message(relation, row)

    # -- tracing -------------------------------------------------------------

    def start_trace(self, name: str):
        """Begin a causal trace; the *next* operation runs under it.

        Returns the root :class:`~repro.metrics.trace.SpanRef`, usable with
        ``cluster.tracer.span_tree`` / ``render_tree`` afterwards.
        """
        assert self.cluster is not None, "client must be added to a cluster"
        ref = self.cluster.tracer.start_trace(name, node=str(self.address))
        self._pending_trace = ref
        return ref

    # -- sync driver -------------------------------------------------------------

    def _call(self, op: str, path: str, start: Callable[[Callback], None]) -> Any:
        assert self.cluster is not None, "client must be added to a cluster"
        box: list[tuple[bool, Any, bool]] = []
        done = lambda ok, payload, retried: box.append((ok, payload, retried))
        ref, self._pending_trace = self._pending_trace, None
        if ref is not None:
            with self.cluster.tracer.activate((ref,)):
                start(done)
        else:
            start(done)
        self.cluster.run_until(
            lambda: bool(box), max_time_ms=self.cluster.now + self.op_timeout_ms
        )
        if not box:
            raise FSTimeout(op, path)
        ok, payload, retried = box[0]
        if ok:
            return payload
        if retried and IDEMPOTENT_ERRORS.get(op) == payload:
            # The lost first attempt already took effect.
            return None
        raise FSError(str(payload), op, path)

    # -- public API -----------------------------------------------------------------

    def mkdir(self, path: str) -> Any:
        """Create a directory; parent must exist."""
        return self._call("mkdir", path, lambda cb: self.session.mkdir(path, cb))

    def makedirs(self, path: str) -> None:
        """Create a directory and any missing ancestors (like mkdir -p)."""
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if self.exists(current) is None:
                self.mkdir(current)

    def create(self, path: str) -> Any:
        """Create an empty file; parent directory must exist."""
        return self._call("create", path, lambda cb: self.session.create(path, cb))

    def exists(self, path: str) -> Optional[bool]:
        """None if absent, else True for a directory, False for a file."""
        try:
            return self._call(
                "exists", path, lambda cb: self.session.exists(path, cb)
            )
        except FSError as exc:
            if exc.code == "noent":
                return None
            raise

    def ls(self, path: str) -> list[str]:
        """Sorted child names of a directory."""
        return list(self._call("ls", path, lambda cb: self.session.ls(path, cb)))

    def rm(self, path: str) -> None:
        """Remove a file or directory subtree."""
        self._call("rm", path, lambda cb: self.session.rm(path, cb))

    def mv(self, old: str, new: str) -> None:
        """Rename/move ``old`` to ``new`` (new parent must exist)."""
        self._call("mv", old, lambda cb: self.session.mv(old, new, cb))

    def stat(self, path: str) -> tuple[bool, int]:
        """(is_dir, size_bytes) for a path; raises FSError("noent") if
        absent.  Size may briefly be reported as "pending" right after a
        write, before any DataNode's chunk report lands; this call retries
        internally until the size is known."""
        while True:
            try:
                payload = self._call(
                    "stat", path, lambda cb: self.session.stat(path, cb)
                )
                return bool(payload[0]), int(payload[1])
            except FSError as exc:
                if exc.code != "pending":
                    raise
                assert self.cluster is not None
                self.cluster.run_for(100)

    def write(self, path: str, data: bytes) -> int:
        """Create ``path`` with ``data``; returns the chunk count."""
        result = self._call(
            "write", path, lambda cb: self.session.write(path, data, cb)
        )
        return 0 if result is None else int(result)

    def read(self, path: str) -> bytes:
        """Read and reassemble a file's contents."""
        return self._call("read", path, lambda cb: self.session.read(path, cb))

    def chunk_locations(self, path: str) -> list[str]:
        """DataNode addresses holding the file's *first* chunk (the
        locality hint MapReduce uses to place map tasks)."""
        chunks = self._call(
            "getchunks", path, lambda cb: self.session.rpc(
                "getchunks", path, None, cb
            )
        )
        if not chunks:
            return []
        first_cid = chunks[0][1]
        return list(
            self._call(
                "chunklocs",
                path,
                lambda cb: self.session.rpc("chunklocs", "", first_cid, cb),
            )
        )
