"""A ``hadoop fs``-style shell over any BOOM-FS client.

Scriptable (each command returns its output as a string), so it doubles
as a human-readable integration surface and a test fixture::

    shell = FSShell(fs_client)
    print(shell.execute("mkdir /data"))
    print(shell.execute("put /data/x hello-world"))
    print(shell.execute("tree /"))

Commands: ls, mkdir, mkdirs, put, cat, rm, mv, stat, exists, tree, help.
"""

from __future__ import annotations

import shlex
from typing import Callable

from .client import FSError


class ShellError(Exception):
    pass


class FSShell:
    """Wraps any synchronous client (BoomFSClient, PartitionedFSClient,
    ReplicatedFSClient) with a command-line-style interface."""

    def __init__(self, fs):
        self.fs = fs
        self._commands: dict[str, tuple[Callable[..., str], str]] = {
            "ls": (self._ls, "ls <dir> -- list directory"),
            "mkdir": (self._mkdir, "mkdir <dir> -- create directory"),
            "mkdirs": (self._mkdirs, "mkdirs <dir> -- create with ancestors"),
            "put": (self._put, "put <path> <text> -- write a file"),
            "cat": (self._cat, "cat <path> -- print file contents"),
            "rm": (self._rm, "rm <path> -- remove file or subtree"),
            "mv": (self._mv, "mv <old> <new> -- rename/move"),
            "stat": (self._stat, "stat <path> -- type and size"),
            "exists": (self._exists, "exists <path> -- dir/file/absent"),
            "tree": (self._tree, "tree <dir> -- recursive listing"),
            "help": (self._help, "help -- this text"),
        }

    def execute(self, line: str) -> str:
        """Run one command line; returns its output, raises ShellError on
        bad usage or FS failure."""
        parts = shlex.split(line)
        if not parts:
            return ""
        name, *args = parts
        entry = self._commands.get(name)
        if entry is None:
            raise ShellError(f"unknown command {name!r}; try 'help'")
        handler, usage = entry
        try:
            return handler(*args)
        except TypeError:
            raise ShellError(f"usage: {usage}") from None
        except FSError as exc:
            raise ShellError(f"{name}: {exc.code}") from exc

    def run_script(self, script: str) -> list[str]:
        """Run newline-separated commands (blank lines and ``#`` comments
        skipped); returns each command's output."""
        outputs = []
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            outputs.append(self.execute(line))
        return outputs

    # -- command handlers -------------------------------------------------------

    def _ls(self, path: str) -> str:
        return "\n".join(self.fs.ls(path))

    def _mkdir(self, path: str) -> str:
        self.fs.mkdir(path)
        return f"created {path}"

    def _mkdirs(self, path: str) -> str:
        self.fs.makedirs(path)
        return f"created {path}"

    def _put(self, path: str, text: str) -> str:
        self.fs.write(path, text.encode())
        return f"wrote {len(text)} bytes to {path}"

    def _cat(self, path: str) -> str:
        return self.fs.read(path).decode("utf-8", "replace")

    def _rm(self, path: str) -> str:
        self.fs.rm(path)
        return f"removed {path}"

    def _mv(self, old: str, new: str) -> str:
        self.fs.mv(old, new)
        return f"moved {old} -> {new}"

    def _stat(self, path: str) -> str:
        is_dir, size = self.fs.stat(path)
        kind = "dir" if is_dir else "file"
        return f"{path}: {kind}, {size} bytes"

    def _exists(self, path: str) -> str:
        state = self.fs.exists(path)
        return {True: "dir", False: "file", None: "absent"}[state]

    def _tree(self, path: str = "/") -> str:
        lines: list[str] = [path]
        self._tree_walk(path, "", lines)
        return "\n".join(lines)

    def _tree_walk(self, path: str, indent: str, lines: list[str]) -> None:
        try:
            children = self.fs.ls(path)
        except FSError:
            return
        for i, name in enumerate(children):
            last = i == len(children) - 1
            lines.append(f"{indent}{'`-' if last else '|-'} {name}")
            child = f"{path.rstrip('/')}/{name}"
            if self.fs.exists(child) is True:
                self._tree_walk(child, indent + ("   " if last else "|  "), lines)

    def _help(self) -> str:
        return "\n".join(usage for _, usage in self._commands.values())
