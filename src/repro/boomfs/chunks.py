"""Chunking helpers: splitting file data into fixed-size chunks and
reassembling them.  BOOM-FS, like HDFS, stores file *data* as opaque
chunks on DataNodes while the NameNode tracks only chunk metadata."""

from __future__ import annotations

DEFAULT_CHUNK_SIZE = 64 * 1024  # small relative to HDFS's 64MB; scaled to sim


def split_chunks(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> list[bytes]:
    """Split ``data`` into chunks of at most ``chunk_size`` bytes.

    Empty data yields no chunks (an empty file has no fchunk rows).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]


def assemble_chunks(chunks: list[bytes]) -> bytes:
    """Inverse of :func:`split_chunks` (chunks must be in file order)."""
    return b"".join(chunks)
