"""Partitioned BOOM-FS namespace (the paper's scalability revision).

The paper observes that, because all NameNode state is relational, scaling
the metadata plane out is just *partitioning relations*: each NameNode
partition runs the unmodified master program over the slice of the
namespace that hashes to it.

Partitioning scheme (mirrors the paper's approach):

* **directories are replicated** to every partition, so path resolution
  (`fqpath`) works locally everywhere;
* **files are hashed** by full path onto exactly one partition, which owns
  their metadata and chunk list;
* ``ls`` scatter-gathers across partitions and unions the results;
* the orphan-chunk collector (rule ``gc1``) is dropped from partitioned
  masters: DataNodes are shared, so one partition cannot conclude that a
  chunk unknown to *it* is garbage.

Cross-partition ``mv`` of files is not supported (the paper's prototype
had the same restriction: it would require a distributed transaction).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..overlog.functions import stable_hash
from ..sim.network import Address
from ..sim.node import Process
from .chunks import DEFAULT_CHUNK_SIZE
from .client import IDEMPOTENT_ERRORS, FSError, FSSession, FSTimeout
from .master import BoomFSMaster

# Rules a partitioned master must not run (see module docstring).
PARTITION_DROPPED_RULES = ("gc1",)


def partitioned_master(
    address: str, partition_count: int, replication: int = 3, **kw: Any
) -> BoomFSMaster:
    """Construct one partition's NameNode (gc disabled)."""
    return BoomFSMaster(
        address, replication=replication, drop_rules=PARTITION_DROPPED_RULES, **kw
    )


def partition_of(path: str, partition_count: int) -> int:
    """The partition index owning ``path`` (files only; dirs live on all)."""
    return stable_hash(path) % partition_count


class PartitionedFSClient(Process):
    """Synchronous client over a hash-partitioned set of NameNodes.

    ``partitions`` is a list of master address lists — one (possibly
    replicated) master group per partition.
    """

    def __init__(
        self,
        address: Address,
        partitions: list[list[Address]] | list[Address],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        op_timeout_ms: int = 60_000,
        rpc_timeout_ms: int = 400,
        encode_request=None,
    ):
        super().__init__(address)
        norm: list[list[Address]] = [
            [p] if isinstance(p, str) else list(p) for p in partitions
        ]
        if not norm:
            raise ValueError("need at least one partition")
        self.op_timeout_ms = op_timeout_ms
        shared_rids = itertools.count(1)
        self.sessions = [
            FSSession(
                self,
                group,
                chunk_size=chunk_size,
                rpc_timeout_ms=rpc_timeout_ms,
                rid_counter=shared_rids,
                encode_request=encode_request,
            )
            for group in norm
        ]

    @property
    def partition_count(self) -> int:
        return len(self.sessions)

    def handle_message(self, relation: str, row: tuple) -> None:
        # rids are unique across sessions' shared host, but each session
        # tracks its own pending set; offering the message to each session
        # is safe because unknown rids are ignored.
        for session in self.sessions:
            if session.handles(relation):
                session.on_message(relation, row)

    # -- routing ------------------------------------------------------------

    def owner(self, path: str) -> FSSession:
        return self.sessions[partition_of(path, self.partition_count)]

    # -- sync plumbing ---------------------------------------------------------

    def _await(self, op: str, path: str, box: list) -> tuple[bool, Any, bool]:
        assert self.cluster is not None
        self.cluster.run_until(
            lambda: bool(box), max_time_ms=self.cluster.now + self.op_timeout_ms
        )
        if not box:
            raise FSTimeout(op, path)
        return box[0]

    def _call_one(
        self, session: FSSession, op: str, path: str,
        start: Callable[[FSSession, Callable], None],
    ) -> Any:
        box: list = []
        start(session, lambda ok, payload, retried: box.append((ok, payload, retried)))
        ok, payload, retried = self._await(op, path, box)
        if ok:
            return payload
        if retried and IDEMPOTENT_ERRORS.get(op) == payload:
            return None
        raise FSError(str(payload), op, path)

    def _call_all(
        self, op: str, path: str,
        start: Callable[[FSSession, Callable], None],
    ) -> list[Any]:
        boxes: list[list] = []
        for session in self.sessions:
            box: list = []
            boxes.append(box)
            start(
                session,
                lambda ok, payload, retried, box=box: box.append(
                    (ok, payload, retried)
                ),
            )
        results = []
        for box in boxes:
            ok, payload, retried = self._await(op, path, box)
            if not ok:
                if retried and IDEMPOTENT_ERRORS.get(op) == payload:
                    results.append(None)
                    continue
                raise FSError(str(payload), op, path)
            results.append(payload)
        return results

    # -- public API ------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory on every partition."""
        self._call_all("mkdir", path, lambda s, cb: s.mkdir(path, cb))

    def makedirs(self, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if self.exists(current) is None:
                self.mkdir(current)

    def create(self, path: str) -> Any:
        return self._call_one(
            self.owner(path), "create", path, lambda s, cb: s.create(path, cb)
        )

    def exists(self, path: str) -> Optional[bool]:
        try:
            return self._call_one(
                self.owner(path), "exists", path, lambda s, cb: s.exists(path, cb)
            )
        except FSError as exc:
            if exc.code == "noent":
                return None
            raise

    def ls(self, path: str) -> list[str]:
        """Union of each partition's listing for ``path``."""
        listings = self._call_all("ls", path, lambda s, cb: s.ls(path, cb))
        names: set[str] = set()
        for listing in listings:
            names.update(listing)
        return sorted(names)

    def rm(self, path: str) -> None:
        """Remove a file (owner partition) or a directory (all)."""
        is_dir = self.exists(path)
        if is_dir is None:
            raise FSError("noent", "rm", path)
        if is_dir:
            self._call_all("rm", path, lambda s, cb: s.rm(path, cb))
        else:
            self._call_one(
                self.owner(path), "rm", path, lambda s, cb: s.rm(path, cb)
            )

    def mv(self, old: str, new: str) -> None:
        """Rename a file within its partition.

        Cross-partition moves and directory moves are unsupported (they
        would require a distributed transaction; the paper's prototype had
        the same restriction).
        """
        if self.exists(old) is True:
            raise FSError("mvdir_unsupported", "mv", old)
        if partition_of(old, self.partition_count) != partition_of(
            new, self.partition_count
        ):
            raise FSError("crosspartition", "mv", old)
        self._call_one(
            self.owner(old), "mv", old, lambda s, cb: s.mv(old, new, cb)
        )

    def write(self, path: str, data: bytes) -> int:
        result = self._call_one(
            self.owner(path), "write", path, lambda s, cb: s.write(path, data, cb)
        )
        return 0 if result is None else int(result)

    def read(self, path: str) -> bytes:
        return self._call_one(
            self.owner(path), "read", path, lambda s, cb: s.read(path, cb)
        )
