"""The BOOM-FS NameNode: an Overlog program hosted on a simulated node.

All metadata logic lives in ``programs/boomfs_master.olg``; this module
only loads the program, installs bootstrap facts (the root directory and
configuration), and exposes inspection helpers used by tests and
benchmarks.
"""

from __future__ import annotations

from importlib import resources
from typing import Optional

from ..overlog import Program, Rule, parse
from ..sim.node import OverlogProcess

_MASTER_SOURCE: Optional[str] = None


def master_program_source() -> str:
    """The Overlog source text of the NameNode program."""
    global _MASTER_SOURCE
    if _MASTER_SOURCE is None:
        _MASTER_SOURCE = (
            resources.files("repro.boomfs")
            .joinpath("programs/boomfs_master.olg")
            .read_text()
        )
    return _MASTER_SOURCE


def master_program(drop_rules: tuple[str, ...] = ()) -> Program:
    """Parse the NameNode program, optionally dropping named rules.

    Dropping rules is the Overlog way to reconfigure behaviour: e.g. the
    partitioned deployment removes the ``gc1`` orphan-chunk collector
    because DataNodes are shared across partitions and one partition's
    metadata cannot prove another partition's chunk is garbage.
    """
    program = parse(master_program_source())
    if drop_rules:
        kept: tuple[Rule, ...] = tuple(
            r for r in program.rules if r.name not in drop_rules
        )
        program = program.with_rules(kept)
    return program


ROOT_FILE_ID = 0


class BoomFSMaster(OverlogProcess):
    """A NameNode instance.

    Parameters
    ----------
    address:
        network address, e.g. ``"master0"``.
    replication:
        target replica count for new chunks.
    dn_timeout_ms:
        heartbeat silence after which a DataNode is declared dead.
    drop_rules:
        rule names to remove from the program (see :func:`master_program`).
    """

    def __init__(
        self,
        address: str = "master",
        replication: int = 3,
        dn_timeout_ms: int = 3000,
        drop_rules: tuple[str, ...] = (),
        id_scope: Optional[str] = None,
        seed: int = 0,
        step_cost_ms: int = 0,
        per_derivation_cost_us: int = 0,
        provenance: bool = False,
        profile: bool = False,
    ):
        self.replication = replication
        self.dn_timeout_ms = dn_timeout_ms
        # f_idscope prefixes chunk ids: masters sharing DataNodes must not
        # collide (partitions get distinct scopes), while Paxos replicas
        # share one scope so replayed ops mint identical ids.
        scope = id_scope if id_scope is not None else address
        self.id_scope = scope
        # Multi-master deployments (partitioned namespaces) set this so
        # state exports include fs_owner rows, feeding the monitor's
        # shard-disjointness invariant.  A lone master owns everything
        # by construction, so the default skips the per-path volume.
        self.export_ownership = False
        super().__init__(
            address,
            master_program(drop_rules),
            seed=seed,
            step_cost_ms=step_cost_ms,
            per_derivation_cost_us=per_derivation_cost_us,
            extra_functions={"f_idscope": lambda: scope},
            provenance=provenance,
            profile=profile,
        )

    def bootstrap(self) -> None:
        self.runtime.install("file", [(ROOT_FILE_ID, -1, "", True)])
        self.runtime.install("repfactor", [(self.replication,)])
        self.runtime.install("dn_timeout", [(self.dn_timeout_ms,)])
        if self.runtime.metrics is None:
            return  # metrics disabled (ablation benchmarks)
        # NameNode-level metrics ride on the runtime's registry: request
        # mix by op (locally inserted events are watchable; outbound
        # responses and repair orders are counted off the step's sends in
        # handle_step_result, since remote-destined tuples never
        # materialize locally).
        requests = self.metrics
        self.runtime.watch(
            "request",
            lambda row: requests.counter(f"fs.requests.{row[2]}").inc(),
        )
        # Replication health as a lazy collector gauge: chunks with fewer
        # live replicas than repfactor, computed from the runtime's own
        # tables only when a snapshot (or telemetry export) asks.  The
        # telemetry monitor's BOOMFS_ALERTS pack alarms on any positive
        # sample (docs/TELEMETRY.md).
        self.metrics.add_collector(self._collect_replication_health)

    def _collect_replication_health(self, snap: dict) -> None:
        rt = self.runtime
        factor_rows = rt.rows("repfactor")
        factor = factor_rows[0][0] if factor_rows else self.replication
        replicas = {cid: n for cid, n in rt.rows("rep_cnt")}
        under = sum(
            1
            for cid, _fid, _idx in rt.rows("fchunk")
            if replicas.get(cid, 0) < factor
        )
        gauge = self.metrics.gauge("fs.chunks.under_replicated")
        gauge.set(under)
        snap["gauges"]["fs.chunks.under_replicated"] = under

    def handle_step_result(self, result) -> None:
        if self.runtime.metrics is None:
            return
        counter = self.metrics.counter
        for _dest, relation, row in result.sends:
            if relation == "response":
                counter(
                    "fs.responses.ok" if row[2] else "fs.responses.error"
                ).inc()
            elif relation == "replicate_cmd":
                counter("fs.replications_ordered").inc()
            elif relation == "gc_chunk":
                counter("fs.gc_ordered").inc()

    def state_export_rows(self, clock: int) -> list[tuple]:
        """Cluster-invariant export: chunk references, location beliefs
        and (for multi-master deployments) namespace ownership claims
        (see repro.monitoring.global_invariants)."""
        from ..monitoring.global_invariants import boomfs_state_rows

        return boomfs_state_rows(
            self.runtime,
            str(self.address),
            clock,
            ownership_scope=self.id_scope if self.export_ownership else None,
        )

    # -- inspection helpers (tests, benchmarks, invariants) ------------------

    def paths(self) -> dict[str, int]:
        """Snapshot of the fqpath view: path -> file id."""
        return {path: fid for path, fid in self.runtime.rows("fqpath")}

    def files(self) -> list[tuple]:
        return self.runtime.rows("file")

    def chunks_of(self, file_id: int) -> list[str]:
        """Chunk ids of a file, in file order."""
        rows = [r for r in self.runtime.rows("fchunk") if r[1] == file_id]
        return [cid for cid, _, _ in sorted(rows, key=lambda r: r[2])]

    def live_datanodes(self) -> list[str]:
        return sorted(addr for addr, _ in self.runtime.rows("datanode"))

    def chunk_locations(self, chunk_id: str) -> list[str]:
        return sorted(
            addr
            for addr, cid, _ in self.runtime.rows("hb_chunk")
            if cid == chunk_id
        )

    # -- provenance debugging (docs/PROVENANCE.md) ---------------------------

    def why_path(self, path: str, fmt: str = "text"):
        """Derivation DAG of the ``fqpath`` view entry for ``path`` —
        *why does this path exist?* — stitched across the cluster when
        attached (so client-originated ``request`` tuples resolve to
        their sender).  Requires ``provenance=True``."""
        fid = self.paths().get(path)
        if fid is None:
            return self.why_not_path(path, fmt=fmt)
        if self.cluster is not None:
            return self.cluster.provenance.why(
                self.address, "fqpath", (path, fid), fmt=fmt
            )
        return self.runtime.why("fqpath", (path, fid), fmt=fmt)

    def why_not_path(self, path: str, fmt: str = "text"):
        """Replay the ``fqpath`` rules to explain why ``path`` does not
        resolve (missing parent, no such file...).  The file id is
        unknowable from the outside, so it is queried as UNKNOWN."""
        from ..provenance.why import UNKNOWN

        return self.runtime.why_not("fqpath", (path, UNKNOWN), fmt=fmt)

    # -- latency debugging (docs/OBSERVABILITY.md) ---------------------------

    def why_slow(self, trace_id: str, fmt: str = "text"):
        """Critical-path latency attribution of one traced request that
        crossed this master — *why did this op take so long?* — the
        time-domain sibling of :meth:`why_path`.  Delegates to the
        cluster's tracer, so it requires the master to be attached."""
        if self.cluster is None:
            return "(not attached to a cluster — no tracer)"
        return self.cluster.latency_report(trace_id, fmt=fmt)
