"""BOOM-FS DataNode: the imperative data plane.

As in the paper, chunk storage and transfer are ordinary imperative code;
only the metadata plane is declarative.  A DataNode:

* stores chunk bytes in memory,
* heartbeats every ``heartbeat_ms`` to every configured master, attaching
  an incremental chunk report (full inventory every ``full_report_every``
  beats, to recover from message loss),
* serves ``store_chunk`` / ``fetch_chunk`` requests from clients,
* obeys ``gc_chunk`` (delete) and ``replicate_cmd`` (copy to a peer)
  orders from the master.
"""

from __future__ import annotations

from typing import Iterable

from ..sim.network import Address
from ..sim.node import Process


class DataNode(Process):
    def __init__(
        self,
        address: Address,
        masters: Iterable[Address] = ("master",),
        heartbeat_ms: int = 500,
        full_report_every: int = 4,
    ):
        super().__init__(address)
        self.masters = list(masters)
        self.heartbeat_ms = heartbeat_ms
        self.full_report_every = full_report_every
        self.chunks: dict[str, bytes] = {}
        self._beat_count = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._beat_count = 0
        self._heartbeat()

    def reset_for_restart(self) -> None:
        # A restarted DataNode keeps its disk (chunks) but loses soft state.
        self._beat_count = 0

    def _heartbeat(self) -> None:
        if self.crashed:
            return
        self.metrics.counter("dn.heartbeats").inc()
        self._beat_count += 1
        full = self._beat_count % self.full_report_every == 1
        for master in self.masters:
            self.send(master, "heartbeat", (self.address,))
            if full:
                for cid, data in self.chunks.items():
                    self.send(
                        master, "chunk_report", (self.address, cid, len(data))
                    )
        self.after(self.heartbeat_ms, self._heartbeat)

    # -- message handling --------------------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        if relation == "store_chunk":
            cid, data, reply_to, rid = row
            self.metrics.counter("dn.chunks_stored").inc()
            self.metrics.counter("dn.bytes_stored").inc(len(data))
            self._store(cid, data)
            if reply_to is not None:
                self.send(reply_to, "chunk_ack", (rid, cid, self.address))
        elif relation == "fetch_chunk":
            rid, cid, reply_to = row
            self.metrics.counter("dn.chunks_served").inc()
            self.send(
                reply_to, "chunk_data", (rid, cid, self.chunks.get(cid))
            )
        elif relation == "gc_chunk":
            _, cid = row
            self._drop(cid)
        elif relation == "replicate_cmd":
            _, cid, target = row
            data = self.chunks.get(cid)
            if data is not None and target != self.address:
                self.send(target, "store_chunk", (cid, data, None, 0))

    # -- storage -------------------------------------------------------------------

    def _store(self, cid: str, data: bytes) -> None:
        self.chunks[cid] = data
        self.metrics.gauge("dn.stored_bytes").set(self.stored_bytes)
        for master in self.masters:
            self.send(master, "chunk_report", (self.address, cid, len(data)))

    def _drop(self, cid: str) -> None:
        if cid in self.chunks:
            del self.chunks[cid]
            self.metrics.counter("dn.chunks_gced").inc()
            self.metrics.gauge("dn.stored_bytes").set(self.stored_bytes)
            for master in self.masters:
                self.send(master, "chunk_gone", (self.address, cid))

    def wipe_storage(self) -> None:
        """Disk-loss fault: forget every stored chunk.  Used by amnesia
        failure schedules — a wiped DataNode that restarts quickly keeps
        heartbeating, so the master's stale chunk beliefs are exactly
        what the cluster-scoped chunk-agreement invariant exists to
        catch."""
        self.chunks.clear()
        self.metrics.gauge("dn.stored_bytes").set(0)

    def state_export_rows(self, clock: int) -> list[tuple]:
        """Cluster-invariant export: this node's actual chunk inventory
        (see repro.monitoring.global_invariants)."""
        from ..monitoring.global_invariants import datanode_state_rows

        return datanode_state_rows(self, clock)

    def holds(self, cid: str) -> bool:
        return cid in self.chunks

    @property
    def stored_bytes(self) -> int:
        return sum(len(d) for d in self.chunks.values())
