"""Per-node flight recorder: bounded rings of recent activity.

Traces answer *where did the time go* for requests you thought to trace;
the flight recorder answers *what was this node just doing* when
something went wrong.  It keeps a bounded ring per node of recent
envelope sends/deliveries/drops, trace span events and alarm firings,
and dumps a deterministic JSONL post-mortem when a node crashes or an
alert-pack alarm fires (docs/OBSERVABILITY.md).

Determinism: entries carry a global sequence number and the transport
clock's virtual milliseconds — never wall time — and dumps are key-sorted
JSON, so a fixed-seed simulator run produces byte-identical post-mortems.
Envelope payloads are summarised (relation counts plus capped row reprs),
keeping entries bounded regardless of batch size.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Callable, Iterable, Optional

#: Default per-node ring capacity (entries, not bytes).
DEFAULT_CAPACITY = 512

#: Max row reprs kept per envelope summary.
_ROWS_PER_ENVELOPE = 4
#: Max characters kept per row repr.
_ROW_REPR_CAP = 120


class FlightRecorder:
    """Bounded per-node rings of recent envelopes, span events and alarms.

    Wire-up (the cluster's ``enable_flight_recorder`` does all three):

    * ``transport.recorder = recorder`` — envelope lifecycle entries;
    * ``tracer.add_listener(recorder.on_trace_event)`` — span events;
    * monitor alarm hook / ``cluster.crash`` — triggering dumps.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: Optional[str] = None,
        dump_on: Iterable[str] = ("crash", "alarm"),
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self.dump_on = tuple(dump_on)
        self._clock = clock if clock is not None else (lambda: 0)
        self._rings: dict[str, deque] = {}
        self._seq = 0
        self._dump_n = 0
        # Violations re-derive on every export round while the bad state
        # persists; dump only the first firing per (node, name, subject).
        self._violation_dumped: set[tuple] = set()
        # (reason, node, path-or-None, text) per dump, newest last.
        self.dumps: list[tuple[str, str, Optional[str], str]] = []

    # -- recording ------------------------------------------------------------

    def _ring(self, node: str) -> deque:
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self.capacity)
        return ring

    def record(self, node: str, kind: str, **fields) -> None:
        """Append one entry to ``node``'s ring."""
        self._seq += 1
        entry = {"seq": self._seq, "ms": self._clock(), "kind": kind}
        entry.update(fields)
        self._ring(node).append(entry)

    def record_envelope(self, node: str, kind: str, env, **fields) -> None:
        """Append a summarised envelope lifecycle entry (env_out/env_in/
        env_drop) to ``node``'s ring."""
        relations: dict[str, int] = {}
        rows: list[str] = []
        for relation, row in env.deltas:
            relations[relation] = relations.get(relation, 0) + 1
            if len(rows) < _ROWS_PER_ENVELOPE:
                rows.append(f"{relation}{row!r}"[:_ROW_REPR_CAP])
        self.record(
            node,
            kind,
            src=env.src,
            dst=env.dst,
            env_seq=env.seq,
            deltas=len(env.deltas),
            bytes=env.size_bytes,
            relations=dict(sorted(relations.items())),
            rows=rows,
            **fields,
        )

    def on_trace_event(self, event: dict) -> None:
        """Tracer listener: mirror span events into the originating
        node's ring (events without a node land in the trace's ring
        under the sender recorded on the event, else ``"?"``)."""
        node = str(event.get("node") or event.get("src") or "?")
        entry = {k: v for k, v in event.items() if k not in ("node", "kind")}
        self.record(node, f"trace_{event['kind']}", **entry)

    def on_alarm(self, node: str, name: str, **fields) -> None:
        """Record an alert-pack alarm firing; auto-dumps when ``"alarm"``
        is in ``dump_on``."""
        self.record(node, "alarm", name=name, **fields)
        if "alarm" in self.dump_on:
            self.dump(f"alarm:{name}", node=node)

    def on_violation(self, node: str, name: str, **fields) -> None:
        """Record a cluster-invariant violation firing; auto-dumps the
        first occurrence per (node, name, subject) when ``"violation"``
        is in ``dump_on``."""
        self.record(node, "violation", name=name, **fields)
        if "violation" in self.dump_on:
            key = (node, name, fields.get("subject"))
            if key not in self._violation_dumped:
                self._violation_dumped.add(key)
                self.dump(f"violation:{name}", node=node)

    def on_crash(self, node: str) -> None:
        """Record a node crash; auto-dumps when ``"crash"`` is in
        ``dump_on``."""
        self.record(node, "crash")
        if "crash" in self.dump_on:
            self.dump("crash", node=node)

    # -- dumping --------------------------------------------------------------

    def snapshot(self, node: Optional[str] = None) -> list[dict]:
        """The current ring contents (one node, or all nodes merged in
        global sequence order)."""
        if node is not None:
            return list(self._rings.get(node, ()))
        merged: list[dict] = []
        for ring in self._rings.values():
            merged.extend(ring)
        merged.sort(key=lambda e: e["seq"])
        return merged

    def to_jsonl(self, reason: str, node: Optional[str] = None) -> str:
        """Key-sorted JSONL post-mortem: a header line, then every
        surviving ring entry in global order (the crashed/alarmed node's
        entries tagged ``focus``)."""
        header = {
            "kind": "flight_dump",
            "reason": reason,
            "node": node,
            "ms": self._clock(),
            "nodes": sorted(self._rings),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for entry in self.snapshot():
            if node is not None:
                entry = dict(entry, focus=entry in self._rings.get(node, ()))
            lines.append(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"

    def dump(self, reason: str, node: Optional[str] = None) -> str:
        """Produce a post-mortem dump; writes ``flight-<n>.jsonl`` under
        ``directory`` when one is configured.  Returns the dump text."""
        text = self.to_jsonl(reason, node=node)
        self._dump_n += 1
        path: Optional[str] = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            target = self.directory / f"flight-{self._dump_n}.jsonl"
            target.write_text(text)
            path = str(target)
        self.dumps.append((reason, node or "", path, text))
        return text


__all__ = ["DEFAULT_CAPACITY", "FlightRecorder"]
