"""Critical-path latency accounting over trace span trees.

A span tree (:mod:`repro.metrics.trace`) says *where a request went*;
this module says *where its time went*.  Given a trace, it extracts the
**critical path** — the chain of spans from the trace root to the last
event recorded anywhere in the trace — and partitions the trace's
end-to-end duration into attributed segments:

========  =====================================================
category  meaning
========  =====================================================
compute   rule evaluation at a node: the gap from a delivery (or
          the previous event in the span) to the fixpoint step
          that consumed it, including modelled CPU service time
          (``step_cost_ms`` / ``per_derivation_cost_us``)
batch     outbox batching wait: a delta buffered by ``send()``
          waiting for its delivery unit to close and flush
          (``send`` -> ``xmit`` on the same span)
stall     backpressure stall: the sender blocked on a full
          bounded queue (``stall_begin`` -> ``stall_end``)
network   wire transit: ``xmit`` -> ``recv`` minus any stalls
          (includes receive-queue wait on the asyncio backend)
timer     a traced tuple parked until a timer woke its node
          (the gap before a timer-triggered step)
other     anything the accountant could not classify — the
          coverage honesty term, asserted small in benchmarks
========  =====================================================

Every timestamp comes from the transport clock, so on the simulator the
attribution is exact and deterministic; on the asyncio backend it is
real measured time.  Because the timeline partitions ``end - begin``
completely, the categories always sum to the trace's wall time —
``coverage`` reports the non-``other`` fraction.

Compute segments additionally attribute to *rules*: step annotations
carry per-rule fire counts, and each compute gap is split across the
rules that fired in proportion to their firings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..metrics.trace import Tracer

#: Attribution categories, in render order.
CATEGORIES = ("compute", "batch", "stall", "network", "timer", "other")


@dataclass
class Segment:
    """One attributed slice of the critical path."""

    start_ms: int
    end_ms: int
    category: str
    node: str
    detail: str = ""

    @property
    def duration_ms(self) -> int:
        return self.end_ms - self.start_ms


@dataclass
class LatencyReport:
    """Where one traced request's time went."""

    trace_id: str
    name: str
    begin_ms: int
    end_ms: int
    segments: list[Segment] = field(default_factory=list)
    by_category: dict[str, int] = field(default_factory=dict)
    by_node: dict[str, dict[str, int]] = field(default_factory=dict)
    by_rule: dict[str, float] = field(default_factory=dict)
    hops: int = 0

    @property
    def total_ms(self) -> int:
        return self.end_ms - self.begin_ms

    @property
    def attributed_ms(self) -> int:
        """Milliseconds attributed to a *named* category (not other)."""
        return sum(
            v for cat, v in self.by_category.items() if cat != "other"
        )

    @property
    def coverage(self) -> float:
        """Fraction of the trace's wall time attributed to a named
        category (1.0 for a fully-explained trace)."""
        if self.total_ms == 0:
            return 1.0
        return self.attributed_ms / self.total_ms

    def render_text(self) -> str:
        lines = [
            f"critical path of {self.trace_id} ({self.name!r}): "
            f"{self.total_ms} ms over {self.hops} hop(s), "
            f"{self.coverage * 100:.1f}% attributed"
        ]
        for seg in self.segments:
            if seg.duration_ms == 0:
                continue
            lines.append(
                f"  {seg.start_ms:>8} +{seg.duration_ms:<6} "
                f"{seg.category:<8} {seg.node:<20} {seg.detail}"
            )
        lines.append("  by category:")
        for cat in CATEGORIES:
            ms = self.by_category.get(cat, 0)
            if not ms and cat != "other":
                continue
            pct = (ms / self.total_ms * 100) if self.total_ms else 0.0
            lines.append(f"    {cat:<8} {ms:>8} ms  {pct:5.1f}%")
        if self.by_rule:
            lines.append("  compute by rule:")
            ranked = sorted(
                self.by_rule.items(), key=lambda kv: (-kv[1], kv[0])
            )
            for rule, ms in ranked:
                lines.append(f"    {rule:<24} {ms:8.2f} ms")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "name": self.name,
            "begin_ms": self.begin_ms,
            "end_ms": self.end_ms,
            "total_ms": self.total_ms,
            "hops": self.hops,
            "coverage": round(self.coverage, 4),
            "by_category": {
                cat: self.by_category.get(cat, 0) for cat in CATEGORIES
            },
            "by_node": self.by_node,
            "by_rule": {
                rule: round(ms, 3) for rule, ms in sorted(self.by_rule.items())
            },
            "segments": [
                {
                    "start_ms": s.start_ms,
                    "end_ms": s.end_ms,
                    "category": s.category,
                    "node": s.node,
                    "detail": s.detail,
                }
                for s in self.segments
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def _classify(event: dict) -> str:
    kind = event["kind"]
    if kind == "step":
        return "timer" if event.get("timer") else "compute"
    if kind == "send":
        return "compute"
    if kind == "xmit":
        return "batch"
    if kind == "stall_begin":
        return "network"
    if kind == "stall_end":
        return "stall"
    if kind == "recv":
        return "network"
    return "other"


def critical_path(tracer: Tracer, trace_id: str) -> Optional[LatencyReport]:
    """Extract and attribute the critical path of one trace.

    Returns None for an unknown trace.  The report's segments partition
    ``[begin, end]`` exactly; classification happens per inter-event gap
    on the root-to-last-event span chain.
    """
    events = [
        dict(event, _i=index)
        for index, event in enumerate(tracer.events)
        if event.get("trace") == trace_id
    ]
    begin = next((e for e in events if e["kind"] == "begin"), None)
    if begin is None:
        return None

    # Per-span event lists and the recv edge (child span -> parent).
    span_events: dict[int, list[dict]] = {}
    recv_of: dict[int, dict] = {}
    parent_of: dict[int, int] = {}
    for event in events:
        span_events.setdefault(event["span"], []).append(event)
        if event["kind"] == "recv":
            recv_of[event["span"]] = event
            parent_of[event["span"]] = event["parent"]
    for evs in span_events.values():
        evs.sort(key=lambda e: (e["ms"], e["_i"]))

    end_event = max(events, key=lambda e: (e["ms"], e["_i"]))
    end_span = end_event["span"]

    # The span chain root .. end_span (recv edges only go child->parent).
    chain = [end_span]
    while chain[-1] in parent_of:
        chain.append(parent_of[chain[-1]])
    chain.reverse()

    # Build the critical-path timeline: inside each span keep the start
    # event, fixpoint steps and the hop send; between spans splice the
    # hop's xmit / stall / recv lifecycle events.
    timeline: list[dict] = []
    for position, span_id in enumerate(chain):
        last_hop = position + 1 == len(chain)
        evs = span_events.get(span_id, [])
        if last_hop:
            cutoff = (end_event["ms"], end_event["_i"])
            hop_mid = None
        else:
            child = chain[position + 1]
            hop_recv = recv_of[child]
            hop_mid = hop_recv["msg"]
            hop_send = next(
                (
                    e
                    for e in evs
                    if e["kind"] == "send" and e.get("msg") == hop_mid
                ),
                None,
            )
            cutoff = (
                (hop_send["ms"], hop_send["_i"])
                if hop_send is not None
                else (hop_recv["ms"], hop_recv["_i"])
            )
        for event in evs:
            if (event["ms"], event["_i"]) > cutoff:
                break
            kind = event["kind"]
            if kind in ("begin", "recv", "step"):
                timeline.append(event)
            elif kind == "send" and event.get("msg") == hop_mid:
                timeline.append(event)
        if not last_hop:
            # The hop's wire lifecycle: xmit and stalls live on the
            # parent span, the recv opens the child span.
            for event in evs:
                if (
                    event.get("msg") == hop_mid
                    and event["kind"] in ("xmit", "stall_begin", "stall_end")
                ):
                    timeline.append(event)
            timeline.append(recv_of[chain[position + 1]])

    # Attribute each inter-event gap to the category of the event that
    # closes it.  Zero-length gaps still classify (they keep per-rule
    # fire data) but render suppresses them.
    report = LatencyReport(
        trace_id=trace_id,
        name=begin.get("name", ""),
        begin_ms=begin["ms"],
        end_ms=end_event["ms"],
        hops=len(chain) - 1,
    )
    by_cat = report.by_category
    by_node = report.by_node
    by_rule = report.by_rule
    for prev, cur in zip(timeline, timeline[1:]):
        gap = max(0, cur["ms"] - prev["ms"])
        category = _classify(cur)
        kind = cur["kind"]
        if kind in ("step", "send"):
            node = str(cur.get("node", ""))
            detail = (
                f"fixpoint ({cur.get('derivations', 0)} derivations)"
                if kind == "step"
                else f"send {cur.get('relation', '')} -> {cur.get('dst', '')}"
            )
        elif kind == "recv":
            node = f"->{cur.get('node', '')}"
            detail = f"deliver {cur.get('relation', '')}"
        else:
            node = str(prev.get("node", cur.get("node", "")) or "wire")
            detail = {
                "xmit": "outbox flush",
                "stall_begin": "enqueue (pre-stall)",
                "stall_end": "backpressure stall",
            }.get(kind, kind)
        report.segments.append(
            Segment(prev["ms"], cur["ms"], category, node, detail)
        )
        by_cat[category] = by_cat.get(category, 0) + gap
        node_bucket = by_node.setdefault(node, {})
        node_bucket[category] = node_bucket.get(category, 0) + gap
        if kind == "step" and cur.get("rules"):
            fires = list(cur["rules"])
            total_fires = sum(n for _, n in fires) or 1
            for rule, n in fires:
                by_rule[rule] = by_rule.get(rule, 0.0) + gap * n / total_fires
    # Whatever the timeline did not reach (e.g. the end event hangs off
    # an unclassifiable edge) lands in "other" so the categories always
    # sum to the trace's wall time.
    accounted = sum(by_cat.values())
    if accounted < report.total_ms:
        missing = report.total_ms - accounted
        by_cat["other"] = by_cat.get("other", 0) + missing
        report.segments.append(
            Segment(
                report.begin_ms,
                report.begin_ms + missing,
                "other",
                "?",
                "unattributed",
            )
        )
    return report


def latency_reports(
    tracer: Tracer, trace_ids: Optional[list[str]] = None
) -> list[LatencyReport]:
    """Critical-path reports for many traces (all known ones by default)."""
    ids = trace_ids if trace_ids is not None else tracer.trace_ids()
    reports = []
    for trace_id in ids:
        report = critical_path(tracer, trace_id)
        if report is not None:
            reports.append(report)
    return reports


def render_category_summary(reports: list[LatencyReport]) -> str:
    """Aggregate many reports into one where-did-the-time-go table."""
    if not reports:
        return "(no traces)"
    totals = {cat: 0 for cat in CATEGORIES}
    wall = 0
    for report in reports:
        wall += report.total_ms
        for cat, ms in report.by_category.items():
            totals[cat] = totals.get(cat, 0) + ms
    lines = [f"latency accounting over {len(reports)} trace(s), {wall} ms total:"]
    for cat in CATEGORIES:
        ms = totals.get(cat, 0)
        if not ms and cat != "other":
            continue
        pct = ms / wall * 100 if wall else 0.0
        lines.append(f"  {cat:<8} {ms:>10} ms  {pct:5.1f}%")
    return "\n".join(lines)


__all__ = [
    "CATEGORIES",
    "LatencyReport",
    "Segment",
    "critical_path",
    "latency_reports",
    "render_category_summary",
]
