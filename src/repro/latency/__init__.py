"""Request-level latency accounting (docs/OBSERVABILITY.md).

Two complementary instruments over the tracing plane:

* :mod:`~repro.latency.accounting` — critical-path extraction: where a
  traced request's wall time went (rule compute, outbox batching wait,
  backpressure stall, network transit, timer wait), per node and per rule.
* :mod:`~repro.latency.recorder` — a per-node flight recorder that dumps
  a deterministic JSONL post-mortem of recent activity on crash or alarm.
"""

from .accounting import (
    CATEGORIES,
    LatencyReport,
    Segment,
    critical_path,
    latency_reports,
    render_category_summary,
)
from .recorder import DEFAULT_CAPACITY, FlightRecorder

__all__ = [
    "CATEGORIES",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "LatencyReport",
    "Segment",
    "critical_path",
    "latency_reports",
    "render_category_summary",
]
