"""Imperative Hadoop-style baseline stack.

The comparator for every BOOM experiment: a hand-written NameNode
(:class:`BaselineNameNode`) and JobTracker (:class:`BaselineJobTracker`)
that speak the same protocols as the declarative components — so the
same DataNodes, TaskTrackers, clients and benchmarks run against either
stack, isolating the declarative-vs-imperative axis the paper studies.
"""

from .hdfs import BaselineNameNode
from .jobtracker import BaselineJobTracker

__all__ = ["BaselineJobTracker", "BaselineNameNode"]
