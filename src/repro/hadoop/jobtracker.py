"""Imperative Hadoop-style JobTracker: the baseline for BOOM-MR.

Implements the same scheduling semantics as the declarative FIFO +
Hadoop-speculation policies — one map and one reduce assignment per
heartbeat, reduces gated on map completion, backup attempts for laggards,
tracker-death rescheduling — as conventional Python state machines.
Interface-compatible with :class:`repro.mapreduce.jobtracker.JobTracker`
so the runner and TaskTrackers work unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..mapreduce.types import JobSpec
from ..sim.network import Address
from ..sim.node import Process


@dataclass
class _TaskInfo:
    kind: str
    state: str = "pending"  # pending | running | done
    attempts: list = field(default_factory=list)  # (attempt, tracker, state, start)
    progress: dict = field(default_factory=dict)  # attempt -> (fraction, report_ms)
    winner: Optional[str] = None


class BaselineJobTracker(Process):
    def __init__(
        self,
        address: Address = "jobtracker",
        policy: str = "fifo",  # "fifo" (no speculation) or "hadoop"
        tt_timeout_ms: int = 3000,
        spec_min_runtime_ms: int = 1500,
        spec_lag: float = 0.2,
        liveness_interval_ms: int = 1000,
        seed: int = 0,
    ):
        if policy not in ("fifo", "hadoop"):
            raise ValueError(f"baseline supports fifo/hadoop, not {policy!r}")
        super().__init__(address)
        self.policy = policy
        self.tt_timeout_ms = tt_timeout_ms
        self.spec_min_runtime_ms = spec_min_runtime_ms
        self.spec_lag = spec_lag
        self.liveness_interval_ms = liveness_interval_ms
        self._job_ids = itertools.count(1)
        self.specs: dict[int, JobSpec] = {}
        self.jobs: dict[int, dict[int, _TaskInfo]] = {}
        self.job_meta: dict[int, tuple[int, int]] = {}  # (nmaps, nreds)
        self.job_states: dict[int, str] = {}
        self.trackers: dict[str, int] = {}
        self.completions: dict[int, int] = {}
        self.submissions: dict[int, int] = {}
        self.task_launches: dict[tuple[int, int], int] = {}
        self.task_completions: dict[tuple[int, int], int] = {}

    def start(self) -> None:
        self.after(self.liveness_interval_ms, self._liveness_sweep)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        locality: Optional[dict[int, list[str]]] = None,
    ) -> int:
        job_id = spec.job_id if spec.job_id else next(self._job_ids)
        spec.job_id = job_id
        self.specs[job_id] = spec
        self.submissions[job_id] = self.now
        self.locality = getattr(self, "locality", {})
        self.locality[job_id] = locality or {}
        self.job_meta[job_id] = (spec.num_maps, spec.num_reduces)
        self.job_states[job_id] = "running"
        tasks: dict[int, _TaskInfo] = {}
        for t in spec.map_task_ids():
            tasks[t] = _TaskInfo("map")
        for t in spec.reduce_task_ids():
            tasks[t] = _TaskInfo("reduce")
        self.jobs[job_id] = tasks
        for addr in self.trackers:
            self.send(addr, "job_spec", (job_id, spec))
        return job_id

    def is_complete(self, job_id: int) -> bool:
        return job_id in self.completions

    # -- message handling -----------------------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        if relation == "tt_hb":
            addr, free_m, free_r = row
            self.trackers[addr] = self.now
            self._assign(addr, free_m, free_r)
        elif relation == "prog":
            addr, job_id, task_id, attempt, fraction = row
            task = self._task(job_id, task_id)
            if task is not None:
                task.progress[attempt] = (fraction, self.now)
        elif relation == "task_done":
            self._on_task_done(*row)
        elif relation == "fetch_failed":
            _, job_id, task_id = row
            self._on_fetch_failed(job_id, task_id)
        elif relation == "get_map_locs":
            job_id, reply_to = row
            tasks = self.jobs.get(job_id, {})
            locs = tuple(
                (t, info.winner)
                for t, info in tasks.items()
                if info.kind == "map" and info.winner is not None
            )
            self.send(reply_to, "map_locs", (job_id, locs))
        elif relation == "get_job_spec":
            job_id, reply_to = row
            spec = self.specs.get(job_id)
            if spec is not None:
                self.send(reply_to, "job_spec", (job_id, spec))

    def _task(self, job_id: int, task_id: int) -> Optional[_TaskInfo]:
        return self.jobs.get(job_id, {}).get(task_id)

    # -- scheduling -------------------------------------------------------------------

    def _assign(self, addr: str, free_m: int, free_r: int) -> None:
        if free_m > 0:
            picked = self._pick_pending(addr, "map") or (
                self._pick_speculative(addr, "map") if self.policy == "hadoop" else None
            )
            if picked is not None:
                self._launch(addr, *picked)
        if free_r > 0:
            picked = self._pick_pending(addr, "reduce") or (
                self._pick_speculative(addr, "reduce")
                if self.policy == "hadoop"
                else None
            )
            if picked is not None:
                self._launch(addr, *picked)

    def _pick_pending(self, addr: str, kind: str) -> Optional[tuple[int, int]]:
        fallback: Optional[tuple[int, int]] = None
        for job_id in sorted(self.jobs):
            if self.job_states.get(job_id) != "running":
                continue
            tasks = self.jobs[job_id]
            if kind == "reduce" and not self._maps_done(job_id):
                continue
            locality = getattr(self, "locality", {}).get(job_id, {})
            for task_id in sorted(tasks):
                info = tasks[task_id]
                if info.kind != kind or info.state != "pending":
                    continue
                if kind == "map" and addr in locality.get(task_id, ()):
                    return job_id, task_id  # data-local assignment
                if fallback is None:
                    fallback = (job_id, task_id)
        return fallback

    def _maps_done(self, job_id: int) -> bool:
        return all(
            info.state == "done"
            for info in self.jobs[job_id].values()
            if info.kind == "map"
        )

    def _pick_speculative(self, addr: str, kind: str) -> Optional[tuple[int, int]]:
        """Hadoop's heuristic: back up a running task whose progress lags
        the job average by spec_lag after spec_min_runtime_ms."""
        for job_id in sorted(self.jobs):
            if self.job_states.get(job_id) != "running":
                continue
            tasks = self.jobs[job_id]
            fractions = [
                frac
                for info in tasks.values()
                if info.kind == kind
                for frac, _ in info.progress.values()
            ]
            if not fractions:
                continue
            avg = sum(fractions) / len(fractions)
            for task_id in sorted(tasks):
                info = tasks[task_id]
                if info.kind != kind or info.state != "running":
                    continue
                running = [a for a in info.attempts if a[2] == "running"]
                if len(running) != 1 or len(info.attempts) > 1:
                    continue
                attempt, tracker, _, started = running[0]
                if tracker == addr:
                    continue
                frac, _ = info.progress.get(attempt, (0.0, 0))
                if frac < avg - self.spec_lag and self.now - started > self.spec_min_runtime_ms:
                    return job_id, task_id
        return None

    def _launch(self, addr: str, job_id: int, task_id: int) -> None:
        info = self.jobs[job_id][task_id]
        attempt = len(info.attempts)
        info.attempts.append((attempt, addr, "running", self.now))
        info.state = "running"
        self.task_launches.setdefault((job_id, task_id), self.now)
        self.send(addr, "launch", (addr, job_id, task_id, attempt, info.kind))

    # -- completion -----------------------------------------------------------------------

    def _on_task_done(self, addr: str, job_id: int, task_id: int, attempt: int) -> None:
        info = self._task(job_id, task_id)
        if info is None:
            return
        info.state = "done"
        info.progress[attempt] = (1.0, self.now)
        self.task_completions.setdefault((job_id, task_id), self.now)
        if info.kind == "map" and info.winner is None:
            info.winner = addr
        updated = []
        for a, tracker, state, started in info.attempts:
            if a == attempt:
                updated.append((a, tracker, "done", started))
            elif state == "running":
                updated.append((a, tracker, "killed", started))
                self.send(tracker, "kill", (tracker, job_id, task_id, a))
            else:
                updated.append((a, tracker, state, started))
        info.attempts = updated
        self._check_job_complete(job_id)

    def _check_job_complete(self, job_id: int) -> None:
        if self.job_states.get(job_id) != "running":
            return
        tasks = self.jobs[job_id]
        _, nreds = self.job_meta[job_id]
        target_kind = "reduce" if nreds > 0 else "map"
        if all(
            info.state == "done"
            for info in tasks.values()
            if info.kind == target_kind
        ):
            self.job_states[job_id] = "done"
            self.completions[job_id] = self.now

    def _on_fetch_failed(self, job_id: int, task_id: int) -> None:
        info = self._task(job_id, task_id)
        if (
            info is not None
            and info.state == "done"
            and self.job_states.get(job_id) == "running"
        ):
            info.state = "pending"
            info.winner = None

    # -- tracker liveness ---------------------------------------------------------------------

    def _liveness_sweep(self) -> None:
        if self.crashed:
            return
        dead = [
            addr
            for addr, last in self.trackers.items()
            if self.now - last > self.tt_timeout_ms
        ]
        for addr in dead:
            del self.trackers[addr]
            for job_id, tasks in self.jobs.items():
                for task_id, info in tasks.items():
                    changed = False
                    updated = []
                    for a, tracker, state, started in info.attempts:
                        if tracker == addr and state == "running":
                            updated.append((a, tracker, "lost", started))
                            changed = True
                        else:
                            updated.append((a, tracker, state, started))
                    info.attempts = updated
                    if changed and info.state == "running" and not any(
                        s == "running" for _, _, s, _ in info.attempts
                    ):
                        info.state = "pending"
        self.after(self.liveness_interval_ms, self._liveness_sweep)

    # -- inspection (parity with the declarative JobTracker) --------------------------------------

    def task_states(self, job_id: int) -> dict[int, str]:
        return {t: info.state for t, info in self.jobs.get(job_id, {}).items()}

    def attempts(self, job_id: int) -> list[tuple]:
        out = []
        for t, info in self.jobs.get(job_id, {}).items():
            for a, tracker, state, started in info.attempts:
                out.append((job_id, t, a, tracker, state, started))
        return out

    def speculative_attempts(self, job_id: int) -> list[tuple]:
        return [r for r in self.attempts(job_id) if r[2] > 0]

    def live_trackers(self) -> list[str]:
        return sorted(self.trackers)
