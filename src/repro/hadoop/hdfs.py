"""Imperative HDFS-style NameNode: the baseline BOOM-FS is compared to.

Speaks *exactly* the same wire protocol as the declarative master
(``request``/``response``, ``heartbeat``/``chunk_report``/``chunk_gone``,
``gc_chunk``/``replicate_cmd``), so DataNodes and clients are reused
unchanged — only the metadata plane differs: hand-written Python state
machines instead of Overlog rules.  This is the same design axis the
paper measures (declarative vs imperative NameNode on equal substrate),
and the module doubles as the imperative-LoC anchor for the code-size
table (E1).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..overlog.functions import stable_hash
from ..sim.network import Address
from ..sim.node import Process

ROOT_FILE_ID = 0


class BaselineNameNode(Process):
    def __init__(
        self,
        address: Address = "master",
        replication: int = 3,
        dn_timeout_ms: int = 3000,
        gc_interval_ms: int = 3000,
        liveness_interval_ms: int = 1000,
    ):
        super().__init__(address)
        self.replication = replication
        self.dn_timeout_ms = dn_timeout_ms
        self.gc_interval_ms = gc_interval_ms
        self.liveness_interval_ms = liveness_interval_ms
        self._ids = itertools.count(1)
        self._reset_state()

    def _reset_state(self) -> None:
        # fid -> (parent_fid, name, is_dir)
        self.files: dict[int, tuple[int, str, bool]] = {
            ROOT_FILE_ID: (-1, "", True)
        }
        self.children: dict[int, dict[str, int]] = {ROOT_FILE_ID: {}}
        self.file_chunks: dict[int, list[str]] = {}
        self.datanodes: dict[str, int] = {}
        self.chunk_locs: dict[str, dict[str, int]] = {}

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.after(self.liveness_interval_ms, self._liveness_sweep)
        self.after(self.gc_interval_ms, self._gc_sweep)

    def reset_for_restart(self) -> None:
        self._reset_state()  # cold restart loses metadata, like the paper's

    # -- path resolution ---------------------------------------------------------

    def resolve(self, path: str) -> Optional[int]:
        if path == "/":
            return ROOT_FILE_ID
        fid = ROOT_FILE_ID
        for part in path.strip("/").split("/"):
            child = self.children.get(fid, {}).get(part)
            if child is None:
                return None
            fid = child
        return fid

    def path_of(self, fid: int) -> str:
        parts: list[str] = []
        while fid != ROOT_FILE_ID:
            parent, name, _ = self.files[fid]
            parts.append(name)
            fid = parent
        return "/" + "/".join(reversed(parts))

    def _split(self, path: str) -> tuple[str, str]:
        idx = path.rstrip("/").rfind("/")
        parent = path[:idx] or "/"
        return parent, path.rstrip("/")[idx + 1 :]

    # -- message handling -----------------------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        if relation == "request":
            rid, client, op, path, arg = row
            ok, payload = self._dispatch(op, path, arg)
            self.send(client, "response", (client, rid, ok, payload))
        elif relation == "heartbeat":
            (addr,) = row
            self.datanodes[addr] = self.now
        elif relation == "chunk_report":
            addr, cid, size = row
            self.chunk_locs.setdefault(cid, {})[addr] = size
        elif relation == "chunk_gone":
            addr, cid = row
            locs = self.chunk_locs.get(cid)
            if locs is not None:
                locs.pop(addr, None)
                if not locs:
                    del self.chunk_locs[cid]

    def _dispatch(self, op: str, path: str, arg: Any) -> tuple[bool, Any]:
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return False, "badop"
        return handler(path, arg)

    # -- directory ops ------------------------------------------------------------------

    def _create_node(self, path: str, is_dir: bool) -> tuple[bool, Any]:
        if self.resolve(path) is not None:
            return False, "exists"
        parent_path, name = self._split(path)
        parent = self.resolve(parent_path)
        if parent is None:
            return False, "noparent"
        if not self.files[parent][2]:
            return False, "notdir"
        fid = next(self._ids)
        self.files[fid] = (parent, name, is_dir)
        self.children[parent][name] = fid
        if is_dir:
            self.children[fid] = {}
        return True, fid

    def _op_mkdir(self, path: str, _arg: Any) -> tuple[bool, Any]:
        return self._create_node(path, True)

    def _op_create(self, path: str, _arg: Any) -> tuple[bool, Any]:
        return self._create_node(path, False)

    def _op_stat(self, path: str, _arg: Any) -> tuple[bool, Any]:
        fid = self.resolve(path)
        if fid is None:
            return False, "noent"
        if self.files[fid][2]:
            return True, (True, 0)
        size = 0
        for cid in self.file_chunks.get(fid, []):
            locs = self.chunk_locs.get(cid)
            if not locs:
                return False, "pending"
            size += min(locs.values())
        return True, (False, size)

    def _op_exists(self, path: str, _arg: Any) -> tuple[bool, Any]:
        fid = self.resolve(path)
        if fid is None:
            return False, "noent"
        return True, self.files[fid][2]

    def _op_ls(self, path: str, _arg: Any) -> tuple[bool, Any]:
        fid = self.resolve(path)
        if fid is None:
            return False, "noent"
        if not self.files[fid][2]:
            return False, "notdir"
        return True, tuple(sorted(self.children[fid]))

    def _op_rm(self, path: str, _arg: Any) -> tuple[bool, Any]:
        fid = self.resolve(path)
        if fid is None:
            return False, "noent"
        if fid == ROOT_FILE_ID:
            return False, "isroot"
        self._remove_subtree(fid)
        parent_path, name = self._split(path)
        parent = self.resolve(parent_path)
        if parent is not None:
            self.children[parent].pop(name, None)
        return True, path

    def _remove_subtree(self, fid: int) -> None:
        for child in list(self.children.get(fid, {}).values()):
            self._remove_subtree(child)
        self.children.pop(fid, None)
        self.file_chunks.pop(fid, None)
        self.files.pop(fid, None)

    def _op_mv(self, old: str, new: str) -> tuple[bool, Any]:
        fid = self.resolve(old)
        if (
            fid is None
            or fid == ROOT_FILE_ID
            or self.resolve(new) is not None
            or new == old
            or new.startswith(old + "/")
        ):
            return False, "mvfail"
        new_parent_path, new_name = self._split(new)
        new_parent = self.resolve(new_parent_path)
        if new_parent is None or not self.files[new_parent][2]:
            return False, "mvfail"
        old_parent, old_name, is_dir = self.files[fid]
        del self.children[old_parent][old_name]
        self.files[fid] = (new_parent, new_name, is_dir)
        self.children[new_parent][new_name] = fid
        return True, new

    # -- chunk ops -----------------------------------------------------------------------

    def _op_addchunk(self, path: str, _arg: Any) -> tuple[bool, Any]:
        fid = self.resolve(path)
        if fid is None:
            return False, "noent"
        if self.files[fid][2]:
            return False, "isdir"
        if not self.datanodes:
            return False, "nodatanodes"
        cid = f"{self.address}:{next(self._ids)}"
        self.file_chunks.setdefault(fid, []).append(cid)
        ranked = sorted(
            self.datanodes, key=lambda addr: stable_hash(cid + addr)
        )
        return True, (cid, tuple(ranked[: self.replication]))

    def _op_getchunks(self, path: str, _arg: Any) -> tuple[bool, Any]:
        fid = self.resolve(path)
        if fid is None:
            return False, "noent"
        if self.files[fid][2]:
            return False, "isdir"
        chunks = self.file_chunks.get(fid, [])
        return True, tuple((i, cid) for i, cid in enumerate(chunks))

    def _op_chunklocs(self, _path: str, cid: Any) -> tuple[bool, Any]:
        locs = self.chunk_locs.get(cid)
        if not locs:
            return False, "nolocs"
        return True, tuple(sorted(locs))

    # -- background sweeps ------------------------------------------------------------------

    def _liveness_sweep(self) -> None:
        if self.crashed:
            return
        dead = [
            addr
            for addr, last in self.datanodes.items()
            if self.now - last > self.dn_timeout_ms
        ]
        for addr in dead:
            del self.datanodes[addr]
            for cid in list(self.chunk_locs):
                self.chunk_locs[cid].pop(addr, None)
                if not self.chunk_locs[cid]:
                    del self.chunk_locs[cid]
        self.after(self.liveness_interval_ms, self._liveness_sweep)

    def _gc_sweep(self) -> None:
        if self.crashed:
            return
        live_chunks = {
            cid for chunks in self.file_chunks.values() for cid in chunks
        }
        # Orphaned chunks are deleted; under-replicated ones re-replicated.
        for cid, locs in list(self.chunk_locs.items()):
            if cid not in live_chunks:
                for addr in locs:
                    self.send(addr, "gc_chunk", (addr, cid))
            elif 0 < len(locs) < self.replication:
                src = min(locs)
                candidates = [a for a in self.datanodes if a not in locs]
                if candidates:
                    target = min(
                        candidates, key=lambda addr: stable_hash(cid + addr)
                    )
                    self.send(src, "replicate_cmd", (src, cid, target))
        self.after(self.gc_interval_ms, self._gc_sweep)

    # -- inspection (test parity with BoomFSMaster) --------------------------------------------

    def paths(self) -> dict[str, int]:
        return {self.path_of(fid): fid for fid in self.files}

    def live_datanodes(self) -> list[str]:
        return sorted(self.datanodes)

    def chunks_of(self, fid: int) -> list[str]:
        return list(self.file_chunks.get(fid, []))

    def chunk_locations(self, cid: str) -> list[str]:
        return sorted(self.chunk_locs.get(cid, {}))
