"""Declarative invariant checking.

Invariants are just more Overlog: rules whose head is
``invariant_violation(name, detail)``.  Merging them into a running
component's program turns every timestep's fixpoint into a consistency
check — the paper's point that monitoring logic lives at the same
semantic level as the system itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..overlog import Program, parse

VIOLATION_RELATION = "invariant_violation"

# Canned BOOM-FS metadata invariants, stated over the master's relations.
BOOMFS_INVARIANTS = """
program boomfs_invariants;
event(invariant_violation, 2);
timer(inv_tick, 1000);

/* every fqpath entry must name a live file */
iv1 invariant_violation("orphan-fqpath", Path) :-
        inv_tick(_, _), fqpath(Path, F), notin file(F, _, _, _);

/* every chunk belongs to a live file */
iv2 invariant_violation("orphan-fchunk", Cid) :-
        inv_tick(_, _), fchunk(Cid, F, _), notin file(F, _, _, _);

/* every non-root file's parent exists */
iv3 invariant_violation("dangling-parent", Name) :-
        inv_tick(_, _), file(F, P, Name, _), F != 0,
        notin file(P, _, _, _);

/* a file's parent must be a directory */
iv4 invariant_violation("file-parent", Name) :-
        inv_tick(_, _), file(F, P, Name, _), F != 0,
        file(P, _, _, false);
"""

PAXOS_INVARIANTS = """
program paxos_invariants;
event(invariant_violation, 2);
timer(inv_tick, 1000);

/* the applied cursor never runs ahead of the decided log */
pv1 invariant_violation("applied-ahead", I) :-
        inv_tick(_, _), applied(0, N), I := N - 1, I >= 1,
        notin decided(I, _);

/* decided-slot uniqueness: the decided table's primary key on the
   instance would silently *replace* a conflicting second decision, so
   keep an append-only history keyed by (instance, value) — a current
   decision differing from any historical one is a safety violation */
define(decided_hist, keys(0, 1), {Int, Any});
pv2 decided_hist(I, V) :- decided(I, V);
pv3 invariant_violation("decided-conflict", I) :-
        decided(I, V), decided_hist(I, W), V != W;

/* ballot monotonicity: the acceptor's promise high-water must never
   regress (it is supposed to be durable across crashes).  Same trick:
   promised_hist accumulates every ballot ever promised, so the current
   value falling below any historical one is a regression. */
define(promised_hist, keys(0), {Int});
pv4 promised_hist(B) :- max_promised(_, B);
pv5 invariant_violation("ballot-regression", B) :-
        max_promised(_, B), promised_hist(H), B < H;
"""


def boomfs_invariants_program() -> Program:
    return parse(BOOMFS_INVARIANTS)


def paxos_invariants_program() -> Program:
    return parse(PAXOS_INVARIANTS)


def with_invariants(program: Program, invariants: Program) -> Program:
    """Merge invariant rules into a component program."""
    return program.merged(invariants)


@dataclass
class InvariantMonitor:
    """Collects invariant violations; optionally raises on the first one."""

    strict: bool = False
    violations: list[tuple[str, object]] = field(default_factory=list)

    def attach(self, runtime) -> None:
        runtime.watch(VIOLATION_RELATION, self._record)

    def _record(self, row: tuple) -> None:
        self.violations.append(row)
        if self.strict:
            raise AssertionError(f"invariant violated: {row[0]} ({row[1]!r})")

    @property
    def ok(self) -> bool:
        return not self.violations
