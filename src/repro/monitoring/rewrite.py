"""Metaprogrammed monitoring (the paper's third revision).

Because Overlog programs are data (tuples of rules), instrumentation is a
*program rewrite*: for every rule, synthesize a twin rule with the same
body whose head logs a ``trace_event`` tuple.  No component code changes;
the instrumented program is simply loaded instead of the original.  The
measured cost of the duplicated bodies is experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..overlog.ast import (
    Assign,
    Atom,
    Const,
    EventDecl,
    FuncCall,
    Program,
    Rule,
    Var,
    atom_vars,
    rule_vars,
)


def _body_bound_vars(rule: Rule) -> set[str]:
    """Variables a rule's body binds (positive atoms and assignments)."""
    bound: set[str] = set()
    for elem in rule.body:
        if isinstance(elem, Atom):
            bound |= atom_vars(elem)
        elif isinstance(elem, Assign):
            bound.add(elem.var.name)
    return bound

TRACE_RELATION = "trace_event"  # (kind, name, binding_fingerprint, now_ms)


def _fresh_var(taken: set[str], base: str = "TraceNow") -> Var:
    name = base
    counter = 0
    while name in taken:
        counter += 1
        name = f"{base}{counter}"
    return Var(name)


def _trace_decl() -> EventDecl:
    return EventDecl(name=TRACE_RELATION, arity=4)


def _fingerprint_expr(variables: Iterable[str]) -> FuncCall:
    """Hash of the rule's bound variables: distinguishes distinct firings
    of one rule within a step (events have set semantics, so identical
    trace tuples would collapse)."""
    ordered = tuple(Var(name) for name in sorted(variables))
    return FuncCall("f_hash", (FuncCall("f_list", ordered),))


def add_rule_tracing(
    program: Program, rule_names: Optional[Iterable[str]] = None
) -> Program:
    """Return a program in which each selected rule has a tracing twin.

    The twin shares the rule's entire body, so it fires exactly when the
    rule fires (same bindings), deriving
    ``trace_event("rule", <rule name>, f_now())``.

    Raises ``KeyError`` if ``rule_names`` mentions a rule the program does
    not define, and ``ValueError`` on double instrumentation (a
    ``trace_<name>`` twin already present).
    """
    known = {rule.name for rule in program.rules}
    selected = set(rule_names) if rule_names is not None else None
    if selected is not None:
        unknown = selected - known
        if unknown:
            raise KeyError(
                f"cannot trace unknown rule(s): {sorted(unknown)}"
            )
    new_rules: list[Rule] = list(program.rules)
    for rule in program.rules:
        if rule.name.startswith(("trace_", "tracerel_")):
            continue  # never instrument the instrumentation itself
        if selected is not None and rule.name not in selected:
            continue
        if f"trace_{rule.name}" in known:
            raise ValueError(
                f"rule {rule.name!r} is already traced "
                f"(twin trace_{rule.name} exists); rewrite is not idempotent"
            )
        now_var = _fresh_var(rule_vars(rule))
        trace_head = Atom(
            name=TRACE_RELATION,
            args=(
                Const("rule"),
                Const(rule.name),
                _fingerprint_expr(_body_bound_vars(rule)),
                now_var,
            ),
        )
        trace_body = rule.body + (
            Assign(var=now_var, expr=FuncCall("f_now", ())),
        )
        new_rules.append(
            Rule(name=f"trace_{rule.name}", head=trace_head, body=trace_body)
        )
    decls = program.decls
    if not any(
        isinstance(d, EventDecl) and d.name == TRACE_RELATION for d in decls
    ):
        decls = decls + (_trace_decl(),)
    return Program(name=f"{program.name}_traced", decls=decls, rules=tuple(new_rules))


def add_relation_tracing(program: Program, relations: Iterable[str]) -> Program:
    """Add a watcher rule per relation: every derived tuple also logs a
    ``trace_event("tuple", <relation>, now)``.

    Raises ``KeyError`` for an undeclared relation and ``ValueError`` on
    double instrumentation (a ``tracerel_<rel>`` rule already present).
    """
    arities: dict[str, int] = {}
    for decl in program.decls:
        arity = getattr(decl, "arity", None)
        if arity is not None:
            arities[decl.name] = arity
    existing = {rule.name for rule in program.rules}
    new_rules = list(program.rules)
    for rel in relations:
        if rel not in arities:
            raise KeyError(f"relation {rel!r} not declared in program")
        if f"tracerel_{rel}" in existing:
            raise ValueError(
                f"relation {rel!r} is already traced "
                f"(tracerel_{rel} exists); rewrite is not idempotent"
            )
        taken: set[str] = set()
        cols = []
        for i in range(arities[rel]):
            var = _fresh_var(taken, f"TraceCol{i}")
            taken.add(var.name)
            cols.append(var)
        cols = tuple(cols)
        now_var = _fresh_var(taken)
        body_atom = Atom(name=rel, args=cols)
        new_rules.append(
            Rule(
                name=f"tracerel_{rel}",
                head=Atom(
                    TRACE_RELATION,
                    (
                        Const("tuple"),
                        Const(rel),
                        _fingerprint_expr(v.name for v in cols),
                        now_var,
                    ),
                ),
                body=(body_atom, Assign(now_var, FuncCall("f_now", ()))),
            )
        )
    decls = program.decls
    if not any(
        isinstance(d, EventDecl) and d.name == TRACE_RELATION for d in decls
    ):
        decls = decls + (_trace_decl(),)
    return Program(
        name=f"{program.name}_reltraced", decls=decls, rules=tuple(new_rules)
    )


@dataclass
class TraceCollector:
    """Gathers trace_event tuples from a runtime; attach with
    ``collector.attach(runtime)`` after the process is constructed."""

    events: list[tuple[str, str, int, int]] = field(default_factory=list)

    def attach(self, runtime) -> None:
        runtime.watch(TRACE_RELATION, self._record)

    def _record(self, row: tuple) -> None:
        self.events.append(row)

    def _counts(self, kind: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for k, name, _fp, _t in self.events:
            if k == kind:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def rule_counts(self) -> dict[str, int]:
        return self._counts("rule")

    def relation_counts(self) -> dict[str, int]:
        return self._counts("tuple")
