"""Declarative testing for Overlog programs (BloomUnit-style).

The BOOM project's follow-on work (Alvaro et al., "BloomUnit", DBTest'12)
observed that if programs are rules, *tests* should be too: a test is a
scenario of injected tuples plus assertion rules evaluated inside the same
fixpoint as the program under test.

Conventions:

* assertion rules derive ``test_failed(name, detail)`` — any firing fails
  the test immediately with that detail;
* liveness expectations insert into the ``test_expect`` table — after the
  scenario settles, every name passed in ``expectations`` must be present.

Example::

    spec = '''
    program fs_spec;
    event(test_failed, 2);
    define(test_expect, keys(0), {Str});

    /* safety: no two files may share a path */
    s1 test_failed("dup-path", P) :- fqpath(P, F1), fqpath(P, F2), F1 != F2;
    /* liveness: eventually /a/b exists */
    l1 test_expect("ab-exists") :- fqpath("/a/b", _);
    '''
    result = DeclarativeTest(master_program(), spec).run(
        scenario=[
            (10, "request", (1, "c", "mkdir", "/a", None)),
            (20, "request", (2, "c", "mkdir", "/a/b", None)),
        ],
        expectations=["ab-exists"],
        bootstrap={"file": [(0, -1, "", True)],
                   "repfactor": [(2,)], "dn_timeout": [(3000,)]},
    )
    assert result.passed, result.report()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..overlog import Program, parse
from ..overlog.runtime import OverlogRuntime

FAILED_RELATION = "test_failed"
EXPECT_RELATION = "test_expect"

ScenarioStep = tuple[int, str, tuple]


@dataclass
class TestResult:
    failures: list[tuple[str, Any]] = field(default_factory=list)
    met: set = field(default_factory=set)
    missing: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures and not self.missing

    def report(self) -> str:
        lines = []
        for name, detail in self.failures:
            lines.append(f"FAILED {name}: {detail!r}")
        for name in self.missing:
            lines.append(f"NEVER MET {name}")
        return "\n".join(lines) if lines else "all assertions held"


class DeclarativeTest:
    """A program under test plus an assertion-rule spec."""

    def __init__(self, program: Program | str, spec: Program | str):
        if isinstance(program, str):
            program = parse(program)
        if isinstance(spec, str):
            spec = parse(spec)
        self.program = program
        self.spec = spec
        self._check_spec(spec)

    @staticmethod
    def _check_spec(spec: Program) -> None:
        heads = {r.head.name for r in spec.rules}
        if not heads & {FAILED_RELATION, EXPECT_RELATION}:
            raise ValueError(
                "spec must contain at least one rule deriving "
                f"{FAILED_RELATION} or {EXPECT_RELATION}"
            )

    def run(
        self,
        scenario: Iterable[ScenarioStep],
        expectations: Iterable[str] = (),
        bootstrap: Optional[dict[str, list[tuple]]] = None,
        settle_ticks: int = 3,
        address: str = "test",
        seed: int = 0,
        extra_functions: Optional[dict] = None,
    ) -> TestResult:
        """Execute the scenario against program ∪ spec.

        ``scenario`` steps are (at_ms, relation, row), applied in time
        order; between steps the runtime runs to quiescence, with
        assertion rules checked in every fixpoint.
        """
        merged = self.program.merged(self.spec)
        runtime = OverlogRuntime(
            merged, address=address, seed=seed, extra_functions=extra_functions
        )
        for relation, rows in (bootstrap or {}).items():
            runtime.install(relation, rows)
        result = TestResult()
        if runtime.catalog.is_declared(FAILED_RELATION):
            runtime.watch(
                FAILED_RELATION, lambda row: result.failures.append(tuple(row))
            )

        steps = sorted(scenario, key=lambda s: s[0])
        now = 0
        for at_ms, relation, row in steps:
            now = max(now, at_ms)
            runtime.insert(relation, row)
            runtime.tick(now=now)
            while runtime.has_pending_work:
                runtime.tick(now=now)
        for _ in range(settle_ticks):
            now += 1
            runtime.tick(now=now)
            while runtime.has_pending_work:
                runtime.tick(now=now)

        if runtime.catalog.is_materialized(EXPECT_RELATION):
            result.met = {name for (name,) in runtime.rows(EXPECT_RELATION)}
        result.missing = [e for e in expectations if e not in result.met]
        return result
