"""Monitoring-as-metaprogramming (the paper's monitoring revision).

Programs are relations over rules, so instrumentation (rule tracing,
relation tracing) and consistency checking (invariant rules) are program
rewrites, not code changes.
"""

from .bloomunit import DeclarativeTest, TestResult
from .invariants import (
    BOOMFS_INVARIANTS,
    PAXOS_INVARIANTS,
    InvariantMonitor,
    boomfs_invariants_program,
    paxos_invariants_program,
    with_invariants,
)
from .rewrite import (
    TRACE_RELATION,
    TraceCollector,
    add_relation_tracing,
    add_rule_tracing,
)

__all__ = [
    "BOOMFS_INVARIANTS",
    "DeclarativeTest",
    "TestResult",
    "InvariantMonitor",
    "PAXOS_INVARIANTS",
    "TRACE_RELATION",
    "TraceCollector",
    "add_relation_tracing",
    "add_rule_tracing",
    "boomfs_invariants_program",
    "paxos_invariants_program",
    "with_invariants",
]
