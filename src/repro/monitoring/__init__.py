"""Monitoring-as-metaprogramming (the paper's monitoring revision).

Programs are relations over rules, so instrumentation (rule tracing,
relation tracing) and consistency checking (invariant rules) are program
rewrites, not code changes.  The runtime-level half of the story — the
telemetry plane that ships per-node metrics to a monitor node whose
health logic is itself Overlog — lives in :mod:`repro.telemetry`; its
alert rule packs are re-exported here so the whole declarative
monitoring surface imports from one place.
"""

from ..telemetry.alerts import (
    BOOMFS_ALERTS,
    DEFAULT_ALERT_PACKS,
    PAXOS_ALERTS,
    TRANSPORT_ALERTS,
)
from ..telemetry.monitor import ALARM_RELATION, MonitorProcess
from .bloomunit import (
    EXPECT_RELATION,
    FAILED_RELATION,
    DeclarativeTest,
    TestResult,
)
from .global_invariants import (
    GLOBAL_BOOMFS_INVARIANTS,
    GLOBAL_INVARIANT_PACKS,
    GLOBAL_PAXOS_INVARIANTS,
    GLOBAL_SHARD_INVARIANTS,
    GLOBAL_STATE_CORE,
    boomfs_state_rows,
    datanode_state_rows,
    global_invariants_source,
    paxos_state_rows,
)
from .invariants import (
    BOOMFS_INVARIANTS,
    PAXOS_INVARIANTS,
    VIOLATION_RELATION,
    InvariantMonitor,
    boomfs_invariants_program,
    paxos_invariants_program,
    with_invariants,
)
from .rewrite import (
    TRACE_RELATION,
    TraceCollector,
    add_relation_tracing,
    add_rule_tracing,
)

__all__ = [
    "ALARM_RELATION",
    "BOOMFS_ALERTS",
    "BOOMFS_INVARIANTS",
    "DEFAULT_ALERT_PACKS",
    "DeclarativeTest",
    "EXPECT_RELATION",
    "FAILED_RELATION",
    "GLOBAL_BOOMFS_INVARIANTS",
    "GLOBAL_INVARIANT_PACKS",
    "GLOBAL_PAXOS_INVARIANTS",
    "GLOBAL_SHARD_INVARIANTS",
    "GLOBAL_STATE_CORE",
    "InvariantMonitor",
    "MonitorProcess",
    "PAXOS_ALERTS",
    "PAXOS_INVARIANTS",
    "TRACE_RELATION",
    "TRANSPORT_ALERTS",
    "TestResult",
    "TraceCollector",
    "VIOLATION_RELATION",
    "add_relation_tracing",
    "add_rule_tracing",
    "boomfs_invariants_program",
    "boomfs_state_rows",
    "datanode_state_rows",
    "global_invariants_source",
    "paxos_invariants_program",
    "paxos_state_rows",
    "with_invariants",
]
