"""Cluster-scoped invariants: cross-node safety rules at the monitor.

The packs in :mod:`repro.monitoring.invariants` run *inside* one
component and can only see that component's tables.  The packs here run
on the telemetry monitor (:mod:`repro.telemetry.monitor`) over **state
exports**: every node periodically ships a snapshot of its
safety-relevant relations (``px_*`` for Paxos replicas, ``fs_*`` for
BOOM-FS masters, ``dn_*`` for DataNodes) to the monitor, where more
Overlog joins them *across* nodes — the paper's point that monitoring
lives at the same semantic level as the system, now applied to
properties no single node can check:

* **paxos-agreement** — two replicas decided different values for the
  same log instance (the core safety property of consensus);
* **ballot-regression / applied-regression** — a replica's durable
  promise high-water or applied cursor went backwards.  Ballot
  regression means broken durability (a true safety violation); applied
  regression is the expected signature of a crash-restart log replay,
  which makes it a useful *detection* signal for fault campaigns;
* **chunk-agreement** — the master believes a DataNode holds a chunk the
  DataNode's own inventory disproves (the silent-wrongness case: a
  DataNode that loses its disk but restarts quickly never retracts its
  old chunk reports, so no alert pack notices);
* **chunk-unhosted / replication-factor** — a chunk the namespace
  references has no (or too few) live locations in the master's view;
* **shard-overlap** — two namespace shards both claim ownership of one
  file path (the partitioned master's disjointness contract).

Transient-state hygiene: every export round carries the sender's clock,
and rules that could misfire on in-flight messages require the condition
to hold for *two consecutive rounds on both sides* before deriving a
violation.  Round markers (``fs_round``/``dn_round``/``px_cursor``) are
small and kept forever (bounded by round count); bulk state rows are
pruned below the previous round by delete rules.

Wire-up is :meth:`repro.transport.base_cluster.BaseCluster.enable_invariants`,
which installs these packs on the monitor and arms every node's
:meth:`~repro.sim.node.Process.publish_state` loop.  Violations surface
exactly like alarms: a ``violation_log`` on the monitor,
``why_violation()`` provenance, and flight-recorder dumps.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Shared declarations + export-round bookkeeping.  Always prepended by
#: :func:`global_invariants_source`, so the other packs can assume the
#: round machinery exists without redeclaring its rules.
GLOBAL_STATE_CORE = """
program global_state_core;

event(invariant_violation, 2);

/* per-master export rounds and the last-two-round window over them */
define(fs_round, keys(0, 1), {Str, Int});
define(fs_cur, keys(0), {Str, Int});
define(fs_prev, keys(0), {Str, Int});

/* per-datanode export rounds, same shape */
define(dn_round, keys(0, 1), {Str, Int});
define(dn_cur, keys(0), {Str, Int});
define(dn_prev, keys(0), {Str, Int});

gw1 fs_cur(M, max<R>) :- fs_round(M, R);
gw2 fs_prev(M, max<R>) :- fs_round(M, R), fs_cur(M, Cur), R < Cur;
gw3 dn_cur(D, max<R>) :- dn_round(D, R);
gw4 dn_prev(D, max<R>) :- dn_round(D, R), dn_cur(D, Cur), R < Cur;
"""

#: Paxos cross-replica safety over ``px_state``/``px_cursor`` exports.
GLOBAL_PAXOS_INVARIANTS = """
program global_paxos_invariants;

event(invariant_violation, 2);

/* node, instance, value: each replica's full decided log */
define(px_state, keys(0, 1), {Str, Int, Any});
/* node, ballot, applied, clock: one cursor row per export round.
   History is kept (keyed by clock) so high-water marks survive the
   primary-key replacement that a single-row cursor would suffer. */
define(px_cursor, keys(0, 3), {Str, Int, Int, Int});
define(px_cur, keys(0), {Str, Int});
define(px_ballot_high, keys(0), {Str, Int});
define(px_applied_high, keys(0), {Str, Int});

/* no two replicas may decide different values at one instance */
gp1 invariant_violation("paxos-agreement", I) :-
        px_state(N1, I, V1), px_state(N2, I, V2), V1 != V2;

gp2 px_cur(N, max<C>) :- px_cursor(N, _, _, C);
gp3 px_ballot_high(N, max<B>) :- px_cursor(N, B, _, _);
gp4 px_applied_high(N, max<A>) :- px_cursor(N, _, A, _);

/* the durable promise high-water must never regress (safety) */
gp5 invariant_violation("ballot-regression", N) :-
        px_cur(N, C), px_cursor(N, B, _, C),
        px_ballot_high(N, H), B < H;

/* the applied cursor regressing is the signature of a crash-restart
   log replay: not unsafe, but exactly the event a fault campaign
   wants a timestamped detection for */
gp6 invariant_violation("applied-regression", N) :-
        px_cur(N, C), px_cursor(N, _, A, C),
        px_applied_high(N, H), A < H;
"""

#: BOOM-FS master-vs-datanode agreement and replication safety.
GLOBAL_BOOMFS_INVARIANTS = """
program global_boomfs_invariants;

event(invariant_violation, 2);

/* master, chunk, datanode, round: the master's location belief */
define(fs_loc, keys(0, 1, 2, 3), {Str, Str, Str, Int});
/* master, chunk, round: chunks the namespace references */
define(fs_chunk, keys(0, 1, 2), {Str, Str, Int});
/* master, replication factor */
define(fs_rf, keys(0), {Str, Int});
/* datanode, chunk, round: the datanode's actual inventory */
define(dn_chunk, keys(0, 1, 2), {Str, Str, Int});
define(fs_loc_cnt, keys(0, 1, 2), {Str, Str, Int, Int});

/* bulk state below the two-round window is pruned */
gb1 delete fs_loc(M, C, D, R) :-
        fs_loc(M, C, D, R), fs_prev(M, P), R < P;
gb2 delete fs_chunk(M, C, R) :-
        fs_chunk(M, C, R), fs_prev(M, P), R < P;
gb3 delete dn_chunk(D, C, R) :-
        dn_chunk(D, C, R), dn_prev(D, P), R < P;

gb4 fs_loc_cnt(M, C, R, count<D>) :- fs_loc(M, C, D, R);
gb5 delete fs_loc_cnt(M, C, R, N) :-
        fs_loc_cnt(M, C, R, N), fs_prev(M, P), R < P;

/* the master believed D held C for its last two rounds, while D's own
   last two inventory exports both lack C: the belief is stale — the
   amnesiac-restart case no heartbeat or alert pack ever corrects */
gb6 invariant_violation("chunk-agreement", C) :-
        fs_loc(M, C, D, R1), fs_cur(M, R1),
        fs_loc(M, C, D, R0), fs_prev(M, R0),
        dn_cur(D, DR), notin dn_chunk(D, C, DR),
        dn_prev(D, DP), notin dn_chunk(D, C, DP);

/* a chunk the namespace references has had no live location at all
   for two consecutive master rounds (every replica dead or timed out) */
gb7 invariant_violation("chunk-unhosted", C) :-
        fs_chunk(M, C, R1), fs_cur(M, R1),
        fs_chunk(M, C, R0), fs_prev(M, R0),
        notin fs_loc(M, C, _, R1),
        notin fs_loc(M, C, _, R0);

/* a referenced chunk has been below the replication factor (but not
   unhosted) for two consecutive master rounds */
gb8 invariant_violation("replication-factor", C) :-
        fs_chunk(M, C, R1), fs_cur(M, R1),
        fs_chunk(M, C, R0), fs_prev(M, R0),
        fs_rf(M, F),
        fs_loc_cnt(M, C, R1, N1), N1 < F,
        fs_loc_cnt(M, C, R0, N0), N0 < F;
"""

#: Namespace-shard disjointness for the partitioned master: files are
#: hashed to exactly one partition (directories replicate everywhere),
#: so one file path claimed by two *different* id scopes is a routing
#: or split-brain bug.  Masters export ``fs_owner`` only when ownership
#: is meaningful (see ``export_ownership`` on BoomFSMaster).
GLOBAL_SHARD_INVARIANTS = """
program global_shard_invariants;

event(invariant_violation, 2);

/* scope, master, file path, round */
define(fs_owner, keys(0, 1, 2, 3), {Str, Str, Str, Int});

gs1 delete fs_owner(S, M, Path, R) :-
        fs_owner(S, M, Path, R), fs_prev(M, P), R < P;

gs2 invariant_violation("shard-overlap", Path) :-
        fs_owner(S1, N1, Path, R1), fs_cur(N1, R1),
        fs_owner(S2, N2, Path, R2), fs_cur(N2, R2),
        S1 != S2;
"""

#: Default pack set installed by ``BaseCluster.enable_invariants``.
GLOBAL_INVARIANT_PACKS = (
    GLOBAL_PAXOS_INVARIANTS,
    GLOBAL_BOOMFS_INVARIANTS,
    GLOBAL_SHARD_INVARIANTS,
)


def global_invariants_source(
    packs: Optional[Iterable[str]] = None,
) -> str:
    """The monitor-side Overlog source: core round machinery plus the
    selected packs (default: all of them), fused into one program —
    pack headers are stripped so the result parses as a single source
    (``MonitorProcess``'s ``extra_source`` takes exactly one program;
    duplicate declarations across packs dedupe on merge)."""
    selected = GLOBAL_INVARIANT_PACKS if packs is None else tuple(packs)
    bodies = []
    for pack in (GLOBAL_STATE_CORE, *selected):
        bodies.append(
            "\n".join(
                line
                for line in pack.splitlines()
                if not line.lstrip().startswith("program ")
            )
        )
    return "program global_invariants;\n" + "\n".join(bodies)


def paxos_state_rows(runtime, node: str, clock: int) -> list[tuple]:
    """A Paxos replica's export: cursor (promise high-water + applied)
    and the full decided log, as ``(relation, row)`` pairs."""
    promised = runtime.rows("max_promised")
    ballot = promised[0][1] if promised else 0
    applied_rows = runtime.rows("applied")
    applied = applied_rows[0][1] if applied_rows else 0
    rows: list[tuple] = [("px_cursor", (node, ballot, applied, clock))]
    for inst, value in runtime.rows("decided"):
        rows.append(("px_state", (node, inst, value)))
    return rows


def boomfs_state_rows(
    runtime,
    node: str,
    clock: int,
    ownership_scope: Optional[str] = None,
) -> list[tuple]:
    """A BOOM-FS master's export: its round marker, replication factor,
    chunk references, location beliefs — and, when ``ownership_scope``
    is given, one ``fs_owner`` row per *file* path it claims (dirs are
    replicated across shards by design, so they never count)."""
    rows: list[tuple] = [("fs_round", (node, clock))]
    factor_rows = runtime.rows("repfactor")
    if factor_rows:
        rows.append(("fs_rf", (node, factor_rows[0][0])))
    for dn, cid, _size in runtime.rows("hb_chunk"):
        rows.append(("fs_loc", (node, cid, dn, clock)))
    for cid, _fid, _idx in runtime.rows("fchunk"):
        rows.append(("fs_chunk", (node, cid, clock)))
    if ownership_scope is not None:
        is_dir = {fid: d for fid, _p, _n, d in runtime.rows("file")}
        for path, fid in runtime.rows("fqpath"):
            if path and not is_dir.get(fid, True):
                rows.append(("fs_owner", (ownership_scope, node, path, clock)))
    return rows


def datanode_state_rows(datanode, clock: int) -> list[tuple]:
    """A DataNode's export: its round marker plus its actual chunk
    inventory (ground truth the master's beliefs are checked against)."""
    node = str(datanode.address)
    rows: list[tuple] = [("dn_round", (node, clock))]
    for cid in sorted(datanode.chunks):
        rows.append(("dn_chunk", (node, cid, clock)))
    return rows


__all__ = [
    "GLOBAL_BOOMFS_INVARIANTS",
    "GLOBAL_INVARIANT_PACKS",
    "GLOBAL_PAXOS_INVARIANTS",
    "GLOBAL_SHARD_INVARIANTS",
    "GLOBAL_STATE_CORE",
    "boomfs_state_rows",
    "datanode_state_rows",
    "global_invariants_source",
    "paxos_state_rows",
]
