"""HyperLogLog: mergeable approximate distinct counting.

Counterpart to :class:`~repro.sketches.tdigest.TDigest` for the
``count_distinct_approx<>`` aggregate and the registry's ``Distinct``
primitive.  Same design constraints: register-wise-max merge (exactly
order-invariant), deterministic hashing (md5-based, stable across
processes — ``hash()`` is salted per interpreter), and a literal-safe
tuple payload for the envelope wire codec.

With ``precision`` p the sketch keeps ``m = 2**p`` registers and the
standard error is ``1.04/sqrt(m)``; the default p=12 (4096 registers,
~1.6% expected error, 4KB dense) sits under the 2% gate benchmark A6
asserts at 10^5 distinct items.  Registers stay in a sparse dict until
a quarter are occupied, so memory is sub-linear in distinct items and
small sets pay almost nothing.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

HLL_TAG = "hll"

DEFAULT_PRECISION = 12

_HASH_BITS = 64


def sketch_hash(value: Any) -> int:
    """64-bit hash, stable across processes and runs.

    Same construction as :func:`repro.overlog.functions.stable_hash`
    (md5 of ``repr``), duplicated here so the sketches package stays
    dependency-free — the Overlog layer imports *us* for the aggregate
    folds, not the other way around.
    """
    digest = hashlib.md5(repr(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """Approximate distinct counter over arbitrary (reprable) values."""

    __slots__ = ("precision", "_m", "_sparse", "_dense")

    def __init__(self, precision: int = DEFAULT_PRECISION):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self._m = 1 << precision
        # Sparse until a quarter of the registers are touched: small
        # cardinalities cost O(distinct), never O(m).
        self._sparse: dict[int, int] | None = {}
        self._dense: list[int] | None = None

    # -- ingestion -------------------------------------------------------------

    def add(self, value: Any) -> None:
        h = sketch_hash(value)
        idx = h >> (_HASH_BITS - self.precision)
        rest = h & ((1 << (_HASH_BITS - self.precision)) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits.
        rank = (_HASH_BITS - self.precision) - rest.bit_length() + 1
        self._set(idx, rank)

    def extend(self, values: Iterable[Any]) -> None:
        for v in values:
            self.add(v)

    def _set(self, idx: int, rank: int) -> None:
        if self._dense is not None:
            if rank > self._dense[idx]:
                self._dense[idx] = rank
            return
        assert self._sparse is not None
        if rank > self._sparse.get(idx, 0):
            self._sparse[idx] = rank
        if len(self._sparse) > self._m // 4:
            self._densify()

    def _densify(self) -> None:
        assert self._sparse is not None
        dense = [0] * self._m
        for idx, rank in self._sparse.items():
            dense[idx] = rank
        self._dense = dense
        self._sparse = None

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise max: exactly merge-order invariant."""
        if other.precision != self.precision:
            raise ValueError(
                "cannot merge HLLs of different precision "
                f"({self.precision} vs {other.precision})"
            )
        for idx, rank in other._registers():
            self._set(idx, rank)

    def _registers(self) -> Iterable[tuple[int, int]]:
        if self._dense is not None:
            return (
                (idx, rank)
                for idx, rank in enumerate(self._dense)
                if rank
            )
        assert self._sparse is not None
        return self._sparse.items()

    # -- queries ---------------------------------------------------------------

    def estimate(self) -> int:
        """Approximate number of distinct values added."""
        m = self._m
        occupied = 0
        inv_sum = float(m)  # zeros contribute 2^0 = 1 each
        for _idx, rank in self._registers():
            occupied += 1
            inv_sum += 2.0 ** (-rank) - 1.0
        zeros = m - occupied
        raw = _alpha(m) * m * m / inv_sum
        if raw <= 2.5 * m and zeros:
            # Small-range correction: linear counting on empty registers.
            return round(m * math.log(m / zeros))
        return round(raw)

    # -- wire form ---------------------------------------------------------------

    def to_payload(self) -> tuple:
        """Literal-safe tuple: sparse registers as sorted (idx, rank)
        pairs, dense as the full register tuple."""
        if self._dense is not None:
            return (HLL_TAG, self.precision, "dense", tuple(self._dense))
        assert self._sparse is not None
        return (
            HLL_TAG,
            self.precision,
            "sparse",
            tuple(sorted(self._sparse.items())),
        )

    @staticmethod
    def from_payload(payload: tuple) -> "HyperLogLog":
        if not is_hll_payload(payload):
            raise ValueError(f"not an HLL payload: {payload!r}")
        _tag, precision, mode, registers = payload
        hll = HyperLogLog(precision)
        if mode == "dense":
            hll._sparse = None
            hll._dense = list(registers)
        else:
            for idx, rank in registers:
                hll._set(idx, rank)
        return hll

    def __len__(self) -> int:
        """Occupied register count (the memory driver)."""
        return sum(1 for _ in self._registers())

    def __repr__(self) -> str:
        return (
            f"HyperLogLog(p={self.precision}, estimate={self.estimate()})"
        )


def is_hll_payload(value: object) -> bool:
    return (
        isinstance(value, tuple) and len(value) == 4 and value[0] == HLL_TAG
    )
