"""A mergeable t-digest (Dunning & Ertl) for quantile estimation.

The telemetry plane ships distribution summaries across the cluster as
tuples, so the sketch has three hard requirements beyond accuracy:

* **mergeable** — per-node digests fold into cluster-wide rollups with
  bounded error, in any grouping;
* **deterministic** — the same multiset of observations (fed in a
  canonical order) produces the same centroids on every backend, so the
  sim/asyncio differential tests can compare payloads *exactly*;
* **literal-safe** — the wire codec is ``repr``/``ast.literal_eval``
  (see :mod:`repro.transport.envelope`), so the serialized form is a
  nested tuple of floats, hashable and storable in Overlog tables.

This is the *merging* variant of the algorithm: observations buffer and
are periodically merged into the sorted centroid list under the k1 scale
function ``k(q) = δ/(2π)·asin(2q−1)``, which spends resolution on the
tails — exactly where latency percentiles (p99/p999) live.  Memory is
O(δ) centroids regardless of how many points were observed.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: Serialized payloads are tagged so Overlog rules (and the aggregate
#: fold) can tell a digest apart from an ordinary nested tuple.
TDIGEST_TAG = "tdigest"

DEFAULT_COMPRESSION = 200


class TDigest:
    """Mergeable quantile sketch with tail-biased resolution.

    ``compression`` (δ) bounds the centroid count; 200 keeps the p99
    rank error well under the 1% gate asserted by benchmark A6 while the
    payload stays a few KB.
    """

    __slots__ = ("compression", "_centroids", "_buffer", "count", "min", "max")

    def __init__(self, compression: int = DEFAULT_COMPRESSION):
        if compression < 20:
            raise ValueError("compression must be >= 20")
        self.compression = compression
        # Merged state: (mean, weight) pairs sorted by mean.
        self._centroids: list[tuple[float, float]] = []
        # Unmerged observations; folded in by _compress().
        self._buffer: list[tuple[float, float]] = []
        self.count = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- ingestion -------------------------------------------------------------

    def add(self, value: float, weight: float = 1.0) -> None:
        value = float(value)
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._buffer.append((value, float(weight)))
        self.count += weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._buffer) >= 10 * self.compression:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "TDigest") -> None:
        """Fold another digest into this one (sketch-mergeable rollups)."""
        if other.count == 0:
            return
        other._compress()
        self._buffer.extend(other._centroids)
        self.count += other.count
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)
        self._compress()

    # -- compression -----------------------------------------------------------

    def _k(self, q: float) -> float:
        """The k1 scale function: tail-biased centroid size limit."""
        return (
            self.compression
            / (2.0 * math.pi)
            * math.asin(max(-1.0, min(1.0, 2.0 * q - 1.0)))
        )

    def _compress(self) -> None:
        if not self._buffer:
            return
        pending = sorted(self._centroids + self._buffer)
        self._buffer = []
        total = sum(w for _, w in pending)
        merged: list[tuple[float, float]] = []
        cur_mean, cur_weight = pending[0]
        w_so_far = 0.0  # weight strictly before the current centroid
        k_lo = self._k(0.0)
        for mean, weight in pending[1:]:
            q_hi = (w_so_far + cur_weight + weight) / total
            if self._k(q_hi) - k_lo <= 1.0:
                # Absorb: weighted-mean update keeps determinism (pure
                # float arithmetic over a canonically sorted sequence).
                cur_weight += weight
                cur_mean += (mean - cur_mean) * weight / cur_weight
            else:
                merged.append((cur_mean, cur_weight))
                w_so_far += cur_weight
                k_lo = self._k(w_so_far / total)
                cur_mean, cur_weight = mean, weight
        merged.append((cur_mean, cur_weight))
        self._centroids = merged

    @property
    def centroids(self) -> tuple[tuple[float, float], ...]:
        self._compress()
        return tuple(self._centroids)

    # -- queries ---------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (interpolated)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            raise ValueError("quantile of an empty digest")
        self._compress()
        cents = self._centroids
        assert self.min is not None and self.max is not None
        if q <= 0.0 or len(cents) == 1 and self.count <= 1:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        # Walk centroids by cumulative weight, interpolating between
        # centroid midpoints; clamp the ends to the exact min/max.
        cum = 0.0
        prev_mid = 0.0
        prev_mean = self.min
        for mean, weight in cents:
            mid = cum + weight / 2.0
            if target < mid:
                if mid == prev_mid:
                    return mean
                frac = (target - prev_mid) / (mid - prev_mid)
                return prev_mean + (mean - prev_mean) * frac
            prev_mid, prev_mean = mid, mean
            cum += weight
        return self.max

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    # -- wire form ---------------------------------------------------------------

    def to_payload(self) -> tuple:
        """Literal-safe nested tuple: survives the envelope codec and is
        hashable (storable as an Overlog column value)."""
        self._compress()
        return (
            TDIGEST_TAG,
            self.compression,
            self.count,
            self.min,
            self.max,
            tuple(self._centroids),
        )

    @staticmethod
    def from_payload(payload: tuple) -> "TDigest":
        if not is_tdigest_payload(payload):
            raise ValueError(f"not a t-digest payload: {payload!r}")
        _tag, compression, count, lo, hi, centroids = payload
        digest = TDigest(compression)
        digest._centroids = [tuple(c) for c in centroids]
        digest.count = count
        digest.min = lo
        digest.max = hi
        return digest

    def __len__(self) -> int:
        self._compress()
        return len(self._centroids)

    def __repr__(self) -> str:
        return (
            f"TDigest(count={self.count:.0f}, centroids={len(self)}, "
            f"min={self.min}, max={self.max})"
        )


def is_tdigest_payload(value: object) -> bool:
    return (
        isinstance(value, tuple)
        and len(value) == 6
        and value[0] == TDIGEST_TAG
    )
