"""Mergeable sketches: sub-linear summaries that survive the wire.

The telemetry plane (docs/TELEMETRY.md) cannot ship exact histograms or
value sets once relations reach the millions of rows the ROADMAP
targets, so distribution and cardinality questions are answered by
*sketches* — fixed-size summaries that merge associatively, so per-node
state folds into cluster rollups in any grouping:

* :class:`TDigest` — quantiles (p50/p99/p999) with tail-biased
  resolution, O(compression) memory;
* :class:`HyperLogLog` — distinct counts at ~1.6% standard error in
  4KB, register-wise-max merge.

Both serialize to literal-safe nested tuples (``to_payload``), so they
ride :class:`~repro.transport.envelope.Envelope` batches, store in
Overlog columns and hash like any row value.  The Overlog aggregate
functions ``percentile<>`` and ``count_distinct_approx<>`` are the
:func:`fold_percentile`/:func:`fold_count_distinct` folds below,
registered in the evaluator/plan layer (:mod:`repro.overlog.plan`).
"""

from __future__ import annotations

from typing import Any, Iterable

from .hll import (
    DEFAULT_PRECISION,
    HLL_TAG,
    HyperLogLog,
    is_hll_payload,
    sketch_hash,
)
from .tdigest import (
    DEFAULT_COMPRESSION,
    TDIGEST_TAG,
    TDigest,
    is_tdigest_payload,
)


def _canonical(values: Iterable[Any]) -> list[Any]:
    """Sort mixed inputs deterministically (type name, then repr) so the
    folds are order-invariant: aggregate groups accumulate in delta
    arrival order, which legitimately differs across backends."""
    return sorted(values, key=lambda v: (type(v).__name__, repr(v)))


def fold_percentile(values: Iterable[Any]) -> tuple:
    """The ``percentile<X>`` aggregate: fold numbers *and* t-digest
    payloads into one merged digest payload.

    Accepting payloads makes the aggregate hierarchical — a monitor
    folding per-node digests produces a cluster digest whose quantiles
    rules extract with ``f_quantile(D, 99)``.
    """
    values = list(values)
    # Fast path for the overwhelmingly common monitor group: one node
    # reports the metric, so its payload IS the fold.  Aggregates
    # recompute per semi-naive pass; skipping the parse/merge/re-compress
    # round-trip here is what keeps telemetry overhead sub-10% (E8b).
    if len(values) == 1 and is_tdigest_payload(values[0]):
        return values[0]
    digest = TDigest()
    for value in _canonical(values):
        if is_tdigest_payload(value):
            digest.merge(TDigest.from_payload(value))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            digest.add(value)
        else:
            raise TypeError(
                f"percentile<> takes numbers or t-digest payloads, "
                f"got {value!r}"
            )
    return digest.to_payload()


def fold_count_distinct(values: Iterable[Any]) -> int:
    """The ``count_distinct_approx<X>`` aggregate: estimated distinct
    count over raw values and/or HLL payloads (payloads merge, raw
    values hash in — mixing both in one group is fine)."""
    values = list(values)
    if len(values) == 1 and is_hll_payload(values[0]):
        return HyperLogLog.from_payload(values[0]).estimate()
    hll = HyperLogLog()
    for value in _canonical(values):
        if is_hll_payload(value):
            hll.merge(HyperLogLog.from_payload(value))
        else:
            hll.add(value)
    return hll.estimate()


__all__ = [
    "DEFAULT_COMPRESSION",
    "DEFAULT_PRECISION",
    "HLL_TAG",
    "HyperLogLog",
    "TDIGEST_TAG",
    "TDigest",
    "fold_count_distinct",
    "fold_percentile",
    "is_hll_payload",
    "is_tdigest_payload",
    "sketch_hash",
]
