"""CLI: run a fault-campaign matrix and write its artifacts.

Example (CI's campaign-smoke job)::

    python -m repro.campaign --backend sim --backend asyncio \\
        --seeds 3 --ops 400 --classes crash partition amnesia \\
        --out campaign-artifacts

Per backend this first runs a *no-fault control* campaign — identical
observability stack, empty fault schedule — and fails the process (exit
1) if the control run produced any alarm or invariant violation: a
monitoring plane that cries wolf on a healthy cluster is broken.  Then
it runs one campaign per seed, writes each timeline/report JSON plus
the pooled scenario matrix, and prints the text reports.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..sim.failure import FAULT_CLASSES
from .report import render_campaign_text, render_matrix_text, run_matrix
from .runner import CampaignSpec, run_campaign
from .timeline import dump_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run seeded fault campaigns against BOOM-FS.",
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=["sim", "asyncio"],
        help="backend(s) to run on (repeatable; default: sim)",
    )
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--ops", type=int, default=1000)
    parser.add_argument("--arrival-ms", type=int, default=60)
    parser.add_argument(
        "--classes",
        nargs="*",
        choices=list(FAULT_CLASSES),
        default=None,
        help="fault classes to inject (default: all)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("campaign-artifacts"),
    )
    parser.add_argument(
        "--control-only",
        action="store_true",
        help="run only the no-fault control gate",
    )
    args = parser.parse_args(argv)

    backends = args.backend or ["sim"]
    classes = tuple(args.classes) if args.classes else FAULT_CLASSES
    args.out.mkdir(parents=True, exist_ok=True)

    failed = False
    results = []
    for backend in backends:
        control = run_campaign(
            CampaignSpec(
                name=f"control-{backend}",
                seed=0,
                backend=backend,
                classes=(),
                total_ops=args.ops,
                arrival_ms=args.arrival_ms,
            )
        )
        (args.out / f"control-{backend}.json").write_text(control.to_json())
        alarms = control.report["alarms_total"]
        violations = control.report["violations_total"]
        print(
            f"[control {backend}] alarms={alarms} violations={violations}"
            f" -> {'FAIL' if alarms or violations else 'ok'}"
        )
        if alarms or violations:
            failed = True
        if args.control_only:
            continue
        for seed in range(args.seeds):
            spec = CampaignSpec(
                name=f"{backend}-seed{seed}",
                seed=seed,
                backend=backend,
                classes=classes,
                total_ops=args.ops,
                arrival_ms=args.arrival_ms,
            )
            result = run_campaign(spec)
            (args.out / f"{spec.name}.json").write_text(result.to_json())
            print(render_campaign_text(result))
            results.append(result)

    if results:
        matrix = run_matrix(results)
        (args.out / "matrix.json").write_text(dump_json(matrix))
        print(render_matrix_text(matrix))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
