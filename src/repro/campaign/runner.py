"""The campaign runner: one seeded fault campaign, end to end.

A campaign is: build a BOOM-FS cluster (either backend), preload some
replicated files, arm the full observability stack — cluster-scoped
invariants, the telemetry plane with per-op latency SLOs, the flight
recorder — then drive an open-loop metadata workload while a generated
multi-class fault schedule fires, and record everything that happens on
one unified timeline.  On the simulator backend the whole run is
deterministic, so the timeline (and the JSON artifact) is
byte-reproducible for a given :class:`CampaignSpec`.

The chronology matters and is encoded here once:

1. topology + preload *before* the planes are armed, so bring-up noise
   (empty chunk tables, first heartbeats) never shows up as signal;
2. ``enable_invariants`` *before* ``enable_telemetry`` (the monitor's
   rule set is fixed at construction);
3. the load driver is open-loop (``arrival_ms``), so the workload spans
   the fault slots instead of racing ahead of them;
4. after the last scheduled event the run quiesces for ``quiesce_ms``
   so clears and late violations land before episodes are extracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..boomfs.client import BoomFSClient
from ..boomfs.datanode import DataNode
from ..boomfs.master import BoomFSMaster
from ..sim.failure import FAULT_CLASSES, generate_campaign
from ..workload.driver import LoadDriver
from .report import alarm_episodes, campaign_report, violation_episodes
from .timeline import Timeline, dump_json


@dataclass
class CampaignSpec:
    """Everything that determines a campaign run (and its artifact)."""

    name: str = "campaign"
    seed: int = 0
    backend: str = "sim"  # "sim" | "asyncio"
    datanodes: int = 5
    replication: int = 2
    preload_files: int = 4
    total_ops: int = 1000
    arrival_ms: int = 60
    round_ms: int = 500  # telemetry + state-export interval
    warmup_ms: int = 3000  # planes armed -> first fault slot
    quiesce_ms: int = 8000  # after the last scheduled event
    slot_ms: int = 12_000
    #: p99 SLO on request latency (virtual ms).  ``None`` picks a
    #: backend-calibrated default: the simulator's virtual clock is
    #: exact, but on asyncio wall-clock scheduling jitter is multiplied
    #: by ``time_scale`` before it reaches the latency digest, so a
    #: sim-tight threshold would cry wolf on a healthy cluster there.
    slo_p99_ms: Optional[float] = None
    match_window_ms: int = 8000
    #: Fault classes to inject, in slot order; () = no-fault control run.
    classes: tuple = FAULT_CLASSES
    #: Straggler severity: must exceed ``arrival_ms`` so queueing builds
    #: during the slowdown slot and the p99 SLO alarm has cause to fire.
    slowdown_cost_ms: int = 120
    #: asyncio backend only: virtual-ms per real-ms compression.
    time_scale: float = 10.0
    dump_dir: Optional[str] = None  # flight-recorder post-mortems


@dataclass
class CampaignResult:
    spec: CampaignSpec
    timeline: Timeline
    end_ms: int
    latency: dict  # the load driver's percentile report
    report: dict  # campaign_report() output

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "backend": self.spec.backend,
            "seed": self.spec.seed,
            "end_ms": self.end_ms,
            "events": self.timeline.to_dicts(),
            "latency": self.latency,
            "report": self.report,
        }

    def to_json(self) -> str:
        """Byte-deterministic (on the sim backend) campaign artifact."""
        return dump_json(self.to_dict())


def _build_cluster(spec: CampaignSpec):
    if spec.backend == "sim":
        from ..sim.cluster import Cluster

        return Cluster(seed=spec.seed)
    if spec.backend == "asyncio":
        from ..transport.asyncio_backend import AsyncCluster

        return AsyncCluster(seed=spec.seed, time_scale=spec.time_scale)
    raise ValueError(f"unknown backend {spec.backend!r} (sim|asyncio)")


def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Run one campaign to completion and analyse it."""
    timeline = Timeline()
    cluster = _build_cluster(spec)
    polling = True
    try:
        cluster.add(
            BoomFSMaster("master", replication=spec.replication)
        )
        datanodes = [f"dn{i}" for i in range(spec.datanodes)]
        for name in datanodes:
            cluster.add(DataNode(name, masters=["master"]))
        cluster.run_for(600)  # first heartbeats register every DataNode

        client = cluster.add(BoomFSClient("client", masters=["master"]))
        client.mkdir("/seed")
        payload = b"campaign-chunk-payload " * 40
        for i in range(spec.preload_files):
            client.write(f"/seed/f{i}", payload)
        # Let full chunk reports land so the master's location beliefs
        # are settled before anything starts judging them.
        cluster.run_for(1200)

        monitor = cluster.enable_invariants(interval_ms=spec.round_ms)
        cluster.enable_telemetry(
            interval_ms=spec.round_ms, per_op_latency=True
        )
        slo_p99_ms = spec.slo_p99_ms
        if slo_p99_ms is None:
            slo_p99_ms = (
                150.0
                if spec.backend == "sim"
                else 500.0 * spec.time_scale
            )
        monitor.set_slo("request.latency_ms", slo_p99_ms)
        cluster.enable_flight_recorder(
            directory=spec.dump_dir,
            dump_on=("crash", "alarm", "violation"),
        )

        # Alarm-clear poller: firings arrive via the monitor's watch
        # hook (alert_log), but clears are silent PK deletions, so the
        # runner polls the alarm table once per round and timestamps
        # disappearances.
        live_alarms: dict[tuple[str, str], int] = {}
        alarm_clears: list[tuple[int, tuple[str, str]]] = []

        def poll_alarms() -> None:
            if not polling:
                return
            if not monitor.crashed:
                current = {
                    (str(r[0]), str(r[1])) for r in monitor.alarms()
                }
                for key in sorted(live_alarms):
                    if key not in current:
                        alarm_clears.append((cluster.now, key))
                        del live_alarms[key]
                for key in sorted(current):
                    live_alarms.setdefault(key, cluster.now)
            cluster.schedule(spec.round_ms, poll_alarms)

        cluster.schedule(spec.round_ms, poll_alarms)

        schedule_end = cluster.now
        if spec.classes:
            schedule = generate_campaign(
                masters=["master"],
                datanodes=datanodes,
                others=["client", "loadgen", "monitor"],
                seed=spec.seed,
                start_ms=cluster.now + spec.warmup_ms,
                slot_ms=spec.slot_ms,
                classes=spec.classes,
                slowdown_cost_ms=spec.slowdown_cost_ms,
            )

            def observe(kind: str, ms: int, subject: str) -> None:
                category = "fault" if kind in FAULT_CLASSES else "repair"
                timeline.add(ms, category, kind, subject)

            schedule.apply(cluster, observer=observe)
            schedule_end = schedule.end_ms()

        driver = cluster.add(
            LoadDriver(
                "loadgen",
                masters=["master"],
                total_ops=spec.total_ops,
                arrival_ms=spec.arrival_ms,
                seed=spec.seed,
            )
        )
        timeline.add(
            cluster.now,
            "workload",
            "start",
            str(driver.address),
            detail=f"{spec.total_ops} ops @ {spec.arrival_ms}ms",
        )
        deadline = (
            cluster.now + spec.total_ops * spec.arrival_ms + 120_000
        )
        finished = cluster.run_until(
            lambda: driver.done, max_time_ms=deadline
        )
        timeline.add(
            cluster.now,
            "workload",
            "done" if finished else "timeout",
            str(driver.address),
            detail=f"{driver._completed}/{spec.total_ops} ops",
        )
        horizon = max(cluster.now, schedule_end) + spec.quiesce_ms
        if cluster.now < horizon:
            cluster.run_for(horizon - cluster.now)
        polling = False
        end_ms = cluster.now

        for ep in alarm_episodes(monitor.alert_log, alarm_clears):
            timeline.add(
                ep["start_ms"],
                "alarm",
                ep["name"],
                ep["subject"],
                detail=ep["detail"],
            )
            if ep["clear_ms"] is not None:
                timeline.add(
                    ep["clear_ms"], "alarm-clear", ep["name"], ep["subject"]
                )
        for ep in violation_episodes(
            monitor.violation_log, end_ms, spec.round_ms
        ):
            timeline.add(
                ep["start_ms"], "violation", ep["name"], ep["subject"]
            )
            if ep["clear_ms"] is not None:
                timeline.add(
                    ep["clear_ms"],
                    "violation-clear",
                    ep["name"],
                    ep["subject"],
                )

        return CampaignResult(
            spec=spec,
            timeline=timeline,
            end_ms=end_ms,
            latency=driver.percentile_report(),
            report=campaign_report(
                timeline, end_ms, match_window_ms=spec.match_window_ms
            ),
        )
    finally:
        polling = False
        cluster.shutdown()


__all__ = ["CampaignResult", "CampaignSpec", "run_campaign"]
