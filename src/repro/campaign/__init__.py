"""Fault-campaign observatory (docs/OBSERVABILITY.md).

Drives seeded multi-class fault schedules (:func:`repro.sim.failure.
generate_campaign`) against an observed BOOM-FS cluster and measures
how the observability stack — alert packs, cluster-scoped invariants,
flight recorder — actually performs: detection latency per fault class,
false positives/negatives, recovery times, all on one deterministic
timeline.  ``python -m repro.campaign`` runs a full matrix from the
command line.
"""

from .report import (
    alarm_episodes,
    campaign_report,
    render_campaign_text,
    render_matrix_text,
    run_matrix,
    violation_episodes,
)
from .runner import CampaignResult, CampaignSpec, run_campaign
from .timeline import Timeline, TimelineEvent, dump_json

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "Timeline",
    "TimelineEvent",
    "alarm_episodes",
    "campaign_report",
    "dump_json",
    "render_campaign_text",
    "render_matrix_text",
    "run_campaign",
    "run_matrix",
    "violation_episodes",
]
