"""Campaign analytics: episodes, fault↔signal matching, latency stats.

The raw material is a :class:`~repro.campaign.timeline.Timeline` plus the
monitor's alarm/violation logs; this module turns them into the numbers
a fault-campaign observatory is for:

* **episodes** — an alarm that fires every telemetry round is one
  *episode* from first firing to the poll that saw it leave the alarm
  table; a violation that re-derives every export round is one episode
  until it stops re-deriving (or the run ends: censored);
* **incidents** — correlated fault groups (a crash *group*, a staggered
  restart storm) merge into one incident, because one group trips one
  detection episode;
* **matching** — each detection signal is attributed to the latest
  incident whose injection time precedes it within ``match_window_ms``.
  Signals with no owning incident are false positives; incidents with
  no signal are false negatives (missed detections);
* **detection latency** — first attributed signal minus injection time,
  summarised per fault class as p50/p99 over every incident (and pooled
  across seeds/backends by :func:`run_matrix`);
* **recovery time** — last clear of an attributed signal minus
  injection time; ``None`` (censored) when the signal never cleared,
  which is itself a finding — e.g. amnesia's chunk-agreement violation
  *should* never clear, since no repair retracts the stale belief.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.cdf import percentile
from .timeline import Timeline

#: Correlated fault events closer than this (same class) merge into one
#: incident; must exceed a restart storm's total stagger and stay well
#: under the campaign slot spacing.
INCIDENT_JOIN_MS = 4000


# -- episode extraction -------------------------------------------------------


def alarm_episodes(
    alert_log: Sequence[tuple[int, tuple]],
    clears: Sequence[tuple[int, tuple[str, str]]],
) -> list[dict]:
    """Fold the monitor's firing log plus polled clear times into
    episodes: per (name, subject), an episode opens at the first firing
    and closes at the next observed clear; a later firing reopens."""
    firings_by_key: dict[tuple[str, str], list[int]] = {}
    detail_by_key: dict[tuple[str, str], str] = {}
    for ms, row in alert_log:
        key = (str(row[0]), str(row[1]))
        firings_by_key.setdefault(key, []).append(ms)
        detail_by_key.setdefault(key, str(row[2]) if len(row) > 2 else "")
    clears_by_key: dict[tuple[str, str], list[int]] = {}
    for ms, key in clears:
        clears_by_key.setdefault(key, []).append(ms)
    episodes = []
    for key in sorted(firings_by_key):
        firings = sorted(firings_by_key[key])
        key_clears = sorted(clears_by_key.get(key, []))
        while firings:
            start = firings[0]
            clear = next((c for c in key_clears if c > start), None)
            episodes.append(
                {
                    "name": key[0],
                    "subject": key[1],
                    "start_ms": start,
                    "clear_ms": clear,
                    "detail": detail_by_key[key],
                }
            )
            if clear is None:
                break
            firings = [f for f in firings if f > clear]
            key_clears = [c for c in key_clears if c > clear]
    episodes.sort(key=lambda e: (e["start_ms"], e["name"], e["subject"]))
    return episodes


def violation_episodes(
    violation_log: Sequence[tuple[int, tuple]],
    end_ms: int,
    round_ms: int,
) -> list[dict]:
    """Fold violation firings into episodes.  ``invariant_violation`` is
    an event relation that re-derives every export round while the
    condition holds, so an episode is a run of firings with no gap
    wider than ~2.5 rounds; it clears one round after its last firing —
    unless that last firing is near the run's end, in which case the
    episode is still live and ``clear_ms`` is ``None`` (censored)."""
    gap_ms = int(2.5 * round_ms)
    firings_by_key: dict[tuple[str, str], list[int]] = {}
    for ms, row in violation_log:
        key = (str(row[0]), str(row[1]))
        firings_by_key.setdefault(key, []).append(ms)
    episodes = []
    for key in sorted(firings_by_key):
        firings = sorted(firings_by_key[key])
        run: list[int] = []
        runs: list[list[int]] = []
        for ms in firings:
            if run and ms - run[-1] > gap_ms:
                runs.append(run)
                run = []
            run.append(ms)
        runs.append(run)
        for run in runs:
            last = run[-1]
            cleared = end_ms - last > gap_ms
            episodes.append(
                {
                    "name": key[0],
                    "subject": key[1],
                    "start_ms": run[0],
                    "clear_ms": last + round_ms if cleared else None,
                }
            )
    episodes.sort(key=lambda e: (e["start_ms"], e["name"], e["subject"]))
    return episodes


# -- fault <-> signal matching ------------------------------------------------


def _stats(values: list[int]) -> Optional[dict]:
    if not values:
        return None
    return {
        "count": len(values),
        "min": min(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def campaign_report(
    timeline: Timeline, end_ms: int, match_window_ms: int = 8000
) -> dict:
    """Match the timeline's detection signals to its fault incidents and
    summarise detection/recovery latency per fault class."""
    faults = timeline.select("fault")
    signals = timeline.select("alarm", "violation")
    clear_events = timeline.select("alarm-clear", "violation-clear")

    incidents: list[dict] = []
    for event in faults:
        last = incidents[-1] if incidents else None
        if (
            last is not None
            and last["class"] == event.name
            and event.ms - last["ms"] <= INCIDENT_JOIN_MS
        ):
            last["subjects"].append(event.subject)
        else:
            incidents.append(
                {
                    "class": event.name,
                    "ms": event.ms,
                    "subjects": [event.subject],
                    "signals": [],
                }
            )

    false_positives = []
    for signal in signals:
        owner = None
        for incident in incidents:
            if incident["ms"] <= signal.ms <= incident["ms"] + match_window_ms:
                owner = incident  # latest qualifying incident wins
        if owner is None:
            false_positives.append(
                {
                    "ms": signal.ms,
                    "kind": signal.kind,
                    "name": signal.name,
                    "subject": signal.subject,
                }
            )
        else:
            owner["signals"].append(signal)

    for incident in incidents:
        attributed = incident["signals"]
        if attributed:
            incident["detection_ms"] = (
                min(s.ms for s in attributed) - incident["ms"]
            )
            # Each signal recovers at its *first* clear at-or-after it —
            # a later incident re-firing the same alarm key must not
            # stretch this incident's recovery window.
            recoveries = []
            for s in attributed:
                clear = next(
                    (
                        c.ms
                        for c in clear_events
                        if (c.name, c.subject) == (s.name, s.subject)
                        and c.ms >= s.ms
                    ),
                    None,
                )
                if clear is not None:
                    recoveries.append(clear)
            incident["recovery_ms"] = (
                max(recoveries) - incident["ms"] if recoveries else None
            )
        else:
            incident["detection_ms"] = None
            incident["recovery_ms"] = None

    classes: dict[str, dict] = {}
    for incident in incidents:
        entry = classes.setdefault(
            incident["class"],
            {
                "incidents": 0,
                "detected": 0,
                "missed": 0,
                "detections": [],
                "recoveries": [],
            },
        )
        entry["incidents"] += 1
        if incident["detection_ms"] is None:
            entry["missed"] += 1
        else:
            entry["detected"] += 1
            entry["detections"].append(incident["detection_ms"])
            if incident["recovery_ms"] is not None:
                entry["recoveries"].append(incident["recovery_ms"])
    for entry in classes.values():
        entry["detection"] = _stats(entry["detections"])
        entry["recovery"] = _stats(entry["recoveries"])

    return {
        "end_ms": end_ms,
        "incidents": [
            {
                "class": i["class"],
                "ms": i["ms"],
                "subjects": sorted(i["subjects"]),
                "detection_ms": i["detection_ms"],
                "recovery_ms": i["recovery_ms"],
                "signals": [
                    [s.ms, s.kind, s.name, s.subject]
                    for s in sorted(i["signals"])
                ],
            }
            for i in incidents
        ],
        "classes": classes,
        "false_positives": false_positives,
        "false_negatives": sum(e["missed"] for e in classes.values()),
        "alarms_total": len(timeline.select("alarm")),
        "violations_total": len(timeline.select("violation")),
    }


# -- scenario matrix ----------------------------------------------------------


def run_matrix(results) -> dict:
    """Aggregate per-campaign reports across seeds and backends: pooled
    per-class detection/recovery distributions plus per-campaign rows."""
    campaigns = []
    pooled: dict[str, dict] = {}
    for result in results:
        report = result.report
        campaigns.append(
            {
                "name": result.spec.name,
                "backend": result.spec.backend,
                "seed": result.spec.seed,
                "end_ms": report["end_ms"],
                "alarms": report["alarms_total"],
                "violations": report["violations_total"],
                "false_positives": len(report["false_positives"]),
                "false_negatives": report["false_negatives"],
                "classes": {
                    cls: {
                        "incidents": e["incidents"],
                        "detected": e["detected"],
                        "missed": e["missed"],
                    }
                    for cls, e in sorted(report["classes"].items())
                },
            }
        )
        for cls, entry in report["classes"].items():
            pool = pooled.setdefault(
                cls,
                {
                    "incidents": 0,
                    "detected": 0,
                    "missed": 0,
                    "detections": [],
                    "recoveries": [],
                },
            )
            pool["incidents"] += entry["incidents"]
            pool["detected"] += entry["detected"]
            pool["missed"] += entry["missed"]
            pool["detections"].extend(entry["detections"])
            pool["recoveries"].extend(entry["recoveries"])
    for pool in pooled.values():
        pool["detection"] = _stats(pool["detections"])
        pool["recovery"] = _stats(pool["recoveries"])
    return {
        "campaigns": sorted(
            campaigns, key=lambda c: (c["backend"], c["seed"], c["name"])
        ),
        "classes": {cls: pooled[cls] for cls in sorted(pooled)},
    }


# -- rendering ----------------------------------------------------------------


def _fmt_ms(value) -> str:
    return "--" if value is None else f"{value:.0f}"


def render_campaign_text(result) -> str:
    """One campaign's operator-readable report: timeline + matching."""
    report = result.report
    lines = [
        f"campaign {result.spec.name} "
        f"(backend={result.spec.backend}, seed={result.spec.seed}, "
        f"end={report['end_ms']}ms)",
        result.timeline.render_text(),
        f"  {'class':<14} {'inc':>4} {'det':>4} {'miss':>5} "
        f"{'det p50':>8} {'det p99':>8} {'rec p50':>8}",
    ]
    for cls, entry in sorted(report["classes"].items()):
        det = entry["detection"] or {}
        rec = entry["recovery"] or {}
        lines.append(
            f"  {cls:<14} {entry['incidents']:>4} {entry['detected']:>4} "
            f"{entry['missed']:>5} {_fmt_ms(det.get('p50')):>8} "
            f"{_fmt_ms(det.get('p99')):>8} {_fmt_ms(rec.get('p50')):>8}"
        )
    lines.append(
        f"  false positives: {len(report['false_positives'])}, "
        f"false negatives: {report['false_negatives']}"
    )
    return "\n".join(lines)


def render_matrix_text(matrix: dict) -> str:
    """The scenario matrix: per-class pooled stats across campaigns."""
    lines = [
        f"scenario matrix ({len(matrix['campaigns'])} campaigns)",
        f"  {'class':<14} {'inc':>4} {'det':>4} {'miss':>5} "
        f"{'det p50':>8} {'det p99':>8} {'rec p50':>8} {'rec p99':>8}",
    ]
    for cls, pool in matrix["classes"].items():
        det = pool["detection"] or {}
        rec = pool["recovery"] or {}
        lines.append(
            f"  {cls:<14} {pool['incidents']:>4} {pool['detected']:>4} "
            f"{pool['missed']:>5} {_fmt_ms(det.get('p50')):>8} "
            f"{_fmt_ms(det.get('p99')):>8} {_fmt_ms(rec.get('p50')):>8} "
            f"{_fmt_ms(rec.get('p99')):>8}"
        )
    for row in matrix["campaigns"]:
        lines.append(
            f"  {row['name']:<24} alarms={row['alarms']} "
            f"violations={row['violations']} fp={row['false_positives']} "
            f"fn={row['false_negatives']}"
        )
    return "\n".join(lines)


__all__ = [
    "INCIDENT_JOIN_MS",
    "alarm_episodes",
    "campaign_report",
    "render_campaign_text",
    "render_matrix_text",
    "run_matrix",
    "violation_episodes",
]
