"""Unified campaign timelines: faults, detections and repairs on one clock.

A fault campaign's primary artifact is its timeline — every injected
fault, every detection signal (alarm episode or cluster-invariant
violation), every repair and every clear, stamped with the cluster's
virtual clock.  The run on the simulator backend is fully deterministic,
so the JSON rendering here is *byte*-deterministic: events sort on a
total order and serialisation pins key order and separators, which is
what lets CI diff two runs of the same seed.

Event taxonomy (``kind`` / ``name``):

* ``fault`` / fault class (``crash``, ``partition``, ``slowdown``,
  ``amnesia``, ``restart-storm``) — an injection, from the failure
  schedule's observer hook;
* ``repair`` / ``restart`` | ``heal`` | ``slowdown-end`` — the
  schedule undoing a fault;
* ``alarm`` / alarm name — the first firing of an alarm episode at the
  monitor; ``alarm-clear`` when the episode's row leaves the alarm
  table;
* ``violation`` / invariant name — the first firing of a
  cluster-invariant violation episode; ``violation-clear`` when it
  stops re-deriving;
* ``workload`` / ``start`` | ``done`` — load-driver milestones.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True, order=True)
class TimelineEvent:
    ms: int
    kind: str
    name: str
    subject: str
    detail: str = ""


@dataclass
class Timeline:
    """An append-only event list with deterministic renderings."""

    events: list[TimelineEvent] = field(default_factory=list)

    def add(
        self, ms: int, kind: str, name: str, subject: str, detail: str = ""
    ) -> TimelineEvent:
        event = TimelineEvent(int(ms), kind, name, subject, detail)
        self.events.append(event)
        return event

    def sorted(self) -> list[TimelineEvent]:
        return sorted(self.events)

    def select(self, *kinds: str) -> list[TimelineEvent]:
        wanted = set(kinds)
        return [e for e in self.sorted() if e.kind in wanted]

    def to_dicts(self) -> list[dict]:
        return [asdict(e) for e in self.sorted()]

    def to_json(self) -> str:
        """Byte-deterministic JSON (sorted events, pinned key order)."""
        return json.dumps(
            {"events": self.to_dicts()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def render_text(self) -> str:
        """Operator-readable timeline, one event per line."""
        lines = []
        for e in self.sorted():
            detail = f"  [{e.detail}]" if e.detail else ""
            lines.append(
                f"  {e.ms:>8}ms  {e.kind:<16} {e.name:<18} {e.subject}{detail}"
            )
        return "\n".join(lines) if lines else "  (no events)"


def dump_json(obj: dict) -> str:
    """The campaign suite's one JSON encoder: every artifact (timeline,
    per-campaign report, scenario matrix) goes through this so identical
    runs produce identical bytes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


__all__ = ["Timeline", "TimelineEvent", "dump_json"]
