"""Alert rule packs: health predicates as plain Overlog source.

Alerts are rules over the monitor's ``metric_sample`` table whose heads
derive ``alarm(name, subject, detail)`` tuples — and whose *delete*
twins retract the alarm when the condition clears, so the alarm table
is always the live set of problems, not a log (the monitor's
``alert_log`` keeps the firing history).

Because an alarm is an ordinary derived tuple, the PR 3 provenance
ledger explains it: ``monitor.why_alarm(row)`` walks from the alarm
through the rule to the exact ``telemetry`` inputs — which node sent
which metric with which payload — the declarative version of "why is
this light red?".

Each pack is a string so deployments compose them (and their own) via
:func:`repro.telemetry.monitor.monitor_program`'s ``alert_packs``.
"""

from __future__ import annotations

#: BOOM-FS: the master exports ``fs.chunks.under_replicated`` (a lazy
#: collector gauge counting chunks with fewer replicas than repfactor);
#: any positive sample is an alarm, keyed by the reporting master so
#: partitioned deployments alarm per-partition.
BOOMFS_ALERTS = """
program boomfs_alerts;

fsa1 alarm("under-replicated", Node, N) :-
        metric_sample(Node, "fs.chunks.under_replicated", "gauge", N, _),
        N > 0;

fsa2 delete alarm("under-replicated", Node, D) :-
        alarm("under-replicated", Node, D),
        metric_sample(Node, "fs.chunks.under_replicated", "gauge", 0, _);
"""

#: Transport: the backends increment ``transport.stalled_link.SRC->DST``
#: whenever a bounded-queue send blocks (backpressure).  Stalls are
#: monotonic counters, so the alarm names the link and sticks — a link
#: that ever stalled deserves an operator's eye.
TRANSPORT_ALERTS = """
program transport_alerts;

tra1 alarm("stalled-link", Metric, N) :-
        metric_sample(_, Metric, "counter", N, _),
        f_startswith(Metric, "transport.stalled_link."),
        N > 0;
"""

#: Paxos: every replica exports a ``paxos.is_leader`` gauge (1 on the
#: leader, 0 elsewhere).  The cluster-wide sum being zero — *after* at
#: least one replica has reported — means no live leader.  The empty
#: aggregate produces no ``paxos_leader_count`` row, so the alarm
#: cannot fire before any Paxos telemetry arrives.
PAXOS_ALERTS = """
program paxos_alerts;

define(paxos_leader_count, keys(0), {Int, Float});

pxa1 paxos_leader_count(0, sum<V>) :-
        metric_sample(_, "paxos.is_leader", "gauge", V, _);

pxa2 alarm("paxos-no-leader", "cluster", S) :-
        paxos_leader_count(0, S), S == 0;

pxa3 delete alarm("paxos-no-leader", "cluster", D) :-
        alarm("paxos-no-leader", "cluster", D),
        paxos_leader_count(0, S), S > 0;
"""

DEFAULT_ALERT_PACKS = (BOOMFS_ALERTS, TRANSPORT_ALERTS, PAXOS_ALERTS)

__all__ = [
    "BOOMFS_ALERTS",
    "DEFAULT_ALERT_PACKS",
    "PAXOS_ALERTS",
    "TRANSPORT_ALERTS",
]
