"""Alert rule packs: health predicates as plain Overlog source.

Alerts are rules over the monitor's ``metric_sample`` table whose heads
derive ``alarm(name, subject, detail)`` tuples — and whose *delete*
twins retract the alarm when the condition clears, so the alarm table
is always the live set of problems, not a log (the monitor's
``alert_log`` keeps the firing history).

Because an alarm is an ordinary derived tuple, the PR 3 provenance
ledger explains it: ``monitor.why_alarm(row)`` walks from the alarm
through the rule to the exact ``telemetry`` inputs — which node sent
which metric with which payload — the declarative version of "why is
this light red?".

Each pack is a string so deployments compose them (and their own) via
:func:`repro.telemetry.monitor.monitor_program`'s ``alert_packs``.
"""

from __future__ import annotations

#: BOOM-FS: the master exports ``fs.chunks.under_replicated`` (a lazy
#: collector gauge counting chunks with fewer replicas than repfactor);
#: any positive sample is an alarm, keyed by the reporting master so
#: partitioned deployments alarm per-partition.
BOOMFS_ALERTS = """
program boomfs_alerts;

fsa1 alarm("under-replicated", Node, N) :-
        metric_sample(Node, "fs.chunks.under_replicated", "gauge", N, _),
        N > 0;

fsa2 delete alarm("under-replicated", Node, D) :-
        alarm("under-replicated", Node, D),
        metric_sample(Node, "fs.chunks.under_replicated", "gauge", 0, _);
"""

#: Transport: the backends increment ``transport.stalled_link.SRC->DST``
#: whenever a bounded-queue send blocks (backpressure).  Stalls are
#: monotonic counters, so the alarm names the link and sticks — a link
#: that ever stalled deserves an operator's eye.
TRANSPORT_ALERTS = """
program transport_alerts;

tra1 alarm("stalled-link", Metric, N) :-
        metric_sample(_, Metric, "counter", N, _),
        f_startswith(Metric, "transport.stalled_link."),
        N > 0;
"""

#: Paxos: every replica exports a ``paxos.is_leader`` gauge (1 on the
#: leader, 0 elsewhere).  The cluster-wide sum being zero — *after* at
#: least one replica has reported — means no live leader.  The empty
#: aggregate produces no ``paxos_leader_count`` row, so the alarm
#: cannot fire before any Paxos telemetry arrives.
PAXOS_ALERTS = """
program paxos_alerts;

define(paxos_leader_count, keys(0), {Int, Float});

pxa1 paxos_leader_count(0, sum<V>) :-
        metric_sample(_, "paxos.is_leader", "gauge", V, _);

pxa2 alarm("paxos-no-leader", "cluster", S) :-
        paxos_leader_count(0, S), S == 0;

pxa3 delete alarm("paxos-no-leader", "cluster", D) :-
        alarm("paxos-no-leader", "cluster", D),
        paxos_leader_count(0, S), S > 0;
"""

#: Latency SLOs: the operator installs ``latency_slo(metric, p99_ms)``
#: facts (see :meth:`~repro.telemetry.monitor.MonitorProcess.set_slo`);
#: whenever the cluster-merged digest for that metric — e.g. the per-op
#: ``request.latency_ms.mkdir`` rows published by ``per_op_latency`` —
#: shows a p99 above the limit, the alarm fires, and the delete twin
#: clears it when the tail recovers.  With no SLO facts the pack is
#: inert, so it ships in the defaults.
LATENCY_ALERTS = """
program latency_alerts;

define(latency_slo, keys(0), {Str, Float});

lta1 alarm("p99-slo-burn", Metric, P) :-
        latency_slo(Metric, Limit),
        rollup_digest(Metric, D),
        P := f_quantile(D, 99),
        P > Limit;

lta2 delete alarm("p99-slo-burn", Metric, Old) :-
        alarm("p99-slo-burn", Metric, Old),
        latency_slo(Metric, Limit),
        rollup_digest(Metric, D),
        P := f_quantile(D, 99),
        P <= Limit;
"""

DEFAULT_ALERT_PACKS = (
    BOOMFS_ALERTS,
    TRANSPORT_ALERTS,
    PAXOS_ALERTS,
    LATENCY_ALERTS,
)

__all__ = [
    "BOOMFS_ALERTS",
    "DEFAULT_ALERT_PACKS",
    "LATENCY_ALERTS",
    "PAXOS_ALERTS",
    "TRANSPORT_ALERTS",
]
