"""Turning registries into tuples: the telemetry wire format.

The whole telemetry plane rides one relation::

    telemetry(Node, Metric, Kind, Payload, Clock)

``Kind`` names the metric primitive (``counter``, ``gauge``, ``info``,
``histogram``, ``percentile``, ``distinct``) and fixes how the monitor's
Overlog rules fold ``Payload``: counters and gauges sum, sketch payloads
merge (``percentile<>`` / ``count_distinct_approx<>``).  Every payload
is a Python literal — the envelope codec is ``repr``/``ast.literal_eval``
— so a telemetry tuple survives TCP endpoints and stores in Overlog
tables unchanged.

:func:`telemetry_rows` is the only serializer: the per-node export loop
(:meth:`repro.sim.node.Process.publish_telemetry`), the cluster-level
transport-scope export and the tests all call it, so there is exactly
one place where a registry becomes tuples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from ..metrics.registry import MetricsRegistry
from ..metrics.trace import Tracer
from ..sketches import TDigest

#: Metric kinds whose payloads the monitor can roll up numerically.
NUMERIC_KINDS = ("counter", "gauge")
#: Metric kinds whose payloads are mergeable sketch tuples.
SKETCH_KINDS = ("histogram", "percentile", "distinct")


def _literal_gauge(value) -> tuple[str, object]:
    """Classify a gauge value for the wire: numbers roll up as
    ``gauge``; anything else ships as an un-aggregatable ``info``
    string (never let a non-literal poison an envelope)."""
    if isinstance(value, bool):
        return "gauge", int(value)
    if isinstance(value, (int, float)):
        return "gauge", value
    if isinstance(value, str):
        return "info", value
    return "info", repr(value)


def telemetry_rows(
    registry: MetricsRegistry,
    node: Optional[str] = None,
    clock: int = 0,
) -> list[tuple]:
    """Snapshot one registry into ``telemetry`` tuples.

    Taking the registry's :meth:`snapshot` first is deliberate: lazy
    collectors (relation-cardinality gauges, BOOM-FS's under-replication
    gauge) only refresh there, so exports see them current.  Empty
    histograms/percentiles are skipped — an empty digest has no payload
    and no information.
    """
    node = node if node is not None else registry.scope
    snap = registry.snapshot()
    rows: list[tuple] = []
    for name, value in sorted(snap["counters"].items()):
        rows.append((node, name, "counter", value, clock))
    for name, value in sorted(snap["gauges"].items()):
        kind, payload = _literal_gauge(value)
        rows.append((node, name, kind, payload, clock))
    for name, hist in sorted(registry.histograms.items()):
        if hist.count:
            rows.append((node, name, "histogram", hist.payload(), clock))
    for name, pct in sorted(registry.percentiles.items()):
        if pct.count:
            rows.append((node, name, "percentile", pct.payload(), clock))
    for name, dst in sorted(registry.distincts.items()):
        rows.append((node, name, "distinct", dst.payload(), clock))
    return rows


# -- trace-span folding ---------------------------------------------------------


def _trace_spans(tracer: Tracer) -> tuple[dict, dict, dict]:
    """(begin_ms, end_ms, op name) per trace id from the flat event log.
    The op name is the first token of the trace's ``begin`` name — the
    convention the load driver and BOOM-FS clients follow (``"mkdir
    /d1"`` -> ``mkdir``)."""
    begins: dict[str, int] = {}
    ends: dict[str, int] = {}
    ops: dict[str, str] = {}
    for event in tracer.events:
        trace_id = event.get("trace")
        if trace_id is None:
            continue
        ms = event.get("ms")
        if ms is None:
            continue
        if event["kind"] == "begin":
            begins[trace_id] = ms
            name = str(event.get("name", ""))
            ops[trace_id] = name.split()[0] if name.split() else "?"
        prev = ends.get(trace_id)
        if prev is None or ms > prev:
            ends[trace_id] = ms
    return begins, ends, ops


def trace_latency_digest(tracer: Tracer) -> TDigest:
    """Fold end-to-end request latency out of PR 1 trace spans.

    Each trace's latency is the span between its ``begin`` event and the
    last event recorded anywhere in the trace (all timestamps are
    transport-clock ms).  The digest merges into telemetry rollups like
    any other percentile payload, which is how the monitor answers
    p50/p99/p999 over requests without keeping per-request rows.
    """
    begins, ends, _ops = _trace_spans(tracer)
    digest = TDigest()
    for trace_id in sorted(begins):
        digest.add(ends[trace_id] - begins[trace_id])
    return digest


def trace_latency_rows(
    tracer: Tracer,
    node: str = "traces",
    metric: str = "request.latency_ms",
    clock: int = 0,
    per_op: bool = False,
) -> list[tuple]:
    """The trace-latency digest as telemetry tuples (empty when no
    trace has been recorded).

    With ``per_op=True``, one extra digest per operation type is
    published as ``{metric}.{op}`` — the rows the per-op p99 SLO alert
    pack (``LATENCY_ALERTS``) watches.
    """
    begins, ends, ops = _trace_spans(tracer)
    if not begins:
        return []
    digest = TDigest()
    per_op_digests: dict[str, TDigest] = {}
    for trace_id in sorted(begins):
        latency = ends[trace_id] - begins[trace_id]
        digest.add(latency)
        if per_op:
            per_op_digests.setdefault(ops[trace_id], TDigest()).add(latency)
    rows = [(node, metric, "percentile", digest.to_payload(), clock)]
    for op in sorted(per_op_digests):
        rows.append(
            (
                node,
                f"{metric}.{op}",
                "percentile",
                per_op_digests[op].to_payload(),
                clock,
            )
        )
    return rows


# -- monitor-side export ----------------------------------------------------------


def telemetry_jsonl(monitor, now_ms: Optional[int] = None) -> str:
    """The monitor node's rollups, alarms and raw samples as key-sorted
    JSON lines (same conventions as :mod:`repro.metrics.export`:
    deterministic bytes for a deterministic run)."""
    records: list[dict] = []
    for metric, value in monitor.rollup_counters().items():
        records.append(
            {"record": "rollup_counter", "metric": metric, "value": value}
        )
    for metric, value in monitor.rollup_gauges().items():
        records.append(
            {"record": "rollup_gauge", "metric": metric, "value": value}
        )
    for metric, (count, p50, p99, p999) in monitor.rollup_percentiles().items():
        records.append(
            {
                "record": "rollup_percentile",
                "metric": metric,
                "count": count,
                "p50": p50,
                "p99": p99,
                "p999": p999,
            }
        )
    for metric, estimate in monitor.rollup_distincts().items():
        records.append(
            {"record": "rollup_distinct", "metric": metric, "estimate": estimate}
        )
    for name, subject, detail in monitor.alarms():
        records.append(
            {
                "record": "alarm",
                "name": name,
                "subject": subject,
                "detail": detail,
            }
        )
    for node, metric, kind, payload, clock in monitor.samples():
        records.append(
            {
                "record": "sample",
                "node": node,
                "metric": metric,
                "kind": kind,
                "payload": payload if kind in NUMERIC_KINDS else list(payload)
                if isinstance(payload, tuple)
                else payload,
                "clock": clock,
            }
        )
    for r in records:
        r["now_ms"] = now_ms
    return "".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
        for r in records
    )


def write_telemetry_jsonl(monitor, path, now_ms: Optional[int] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(telemetry_jsonl(monitor, now_ms))
    return path


def render_telemetry_dashboard(monitor, now_ms: Optional[int] = None) -> str:
    """The operator's live view of the monitor node, deterministic for
    a deterministic run (sorted keys throughout)."""
    lines = [f"== telemetry @ {now_ms} ms (monitor {monitor.address}) =="]
    alarms = monitor.alarms()
    if alarms:
        lines.append("ALARMS:")
        for name, subject, detail in alarms:
            lines.append(f"  !! {name:<24} {subject:<20} {detail!r}")
    else:
        lines.append("alarms: none")
    counters = monitor.rollup_counters()
    if counters:
        lines.append("cluster counters:")
        for metric, value in counters.items():
            lines.append(f"  {metric:<40} {value}")
    gauges = monitor.rollup_gauges()
    if gauges:
        lines.append("cluster gauges (summed):")
        for metric, value in gauges.items():
            lines.append(f"  {metric:<40} {value}")
    pcts = monitor.rollup_percentiles()
    if pcts:
        lines.append("latency rollups (sketch-merged):")
        for metric, (count, p50, p99, p999) in pcts.items():
            lines.append(
                f"  {metric:<40} n={count} p50={p50:.3f} "
                f"p99={p99:.3f} p999={p999:.3f}"
            )
    distincts = monitor.rollup_distincts()
    if distincts:
        lines.append("distinct estimates:")
        for metric, estimate in distincts.items():
            lines.append(f"  {metric:<40} ~{estimate}")
    nodes: dict[str, int] = {}
    for node, _metric, _kind, _payload, clock in monitor.samples():
        prev = nodes.get(node)
        nodes[node] = clock if prev is None else max(prev, clock)
    if nodes:
        lines.append("reporting nodes (latest clock):")
        for node, clock in sorted(nodes.items()):
            lines.append(f"  {node:<40} @{clock}")
    return "\n".join(lines)
