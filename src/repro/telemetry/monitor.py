"""The monitor node: cluster health logic written in Overlog itself.

This is the paper's meta-circular monitoring taken one layer further:
PR 3's monitoring package rewrites *programs* to watch themselves; the
telemetry plane makes the *runtime's* metrics first-class tuples and
then watches them with more Overlog.  The monitor is an ordinary
:class:`~repro.sim.node.OverlogProcess` — it elects no special
machinery, it just holds rules over the ``telemetry`` stream every node
ships it:

* ``metric_sample`` — the latest sample per (node, metric), maintained
  by primary-key replacement;
* ``rollup_*`` — cluster-wide aggregation: counters/gauges sum, sketch
  payloads merge through the ``percentile<>`` /
  ``count_distinct_approx<>`` aggregates, so rollup cost is O(nodes),
  never O(observations);
* ``alarm`` — health predicates (see :mod:`repro.telemetry.alerts`)
  derive alarms and *delete* them when the condition clears; because
  alarms are derived tuples, ``why()`` walks each one back to the
  emitting node's metric samples through the provenance ledger
  (provenance is on by default here).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..overlog import Program, parse
from ..sim.node import OverlogProcess
from .alerts import DEFAULT_ALERT_PACKS

TELEMETRY_RELATION = "telemetry"
ALARM_RELATION = "alarm"

MONITOR_PROGRAM = """
program telemetry_monitor;

/* latest sample per (node, metric): PK replacement keeps the stream's
   newest payload, so table size is O(nodes x metrics) */
define(metric_sample, keys(0, 1), {Str, Str, Str, Any, Int});

/* health predicates derive these; packs may delete them when clear */
define(alarm, keys(0, 1), {Str, Str, Any});

/* cluster-wide rollups */
define(rollup_counter, keys(0), {Str, Int});
define(rollup_gauge, keys(0), {Str, Float});
define(rollup_digest, keys(0), {Str, Any});
define(rollup_percentile, keys(0), {Str, Int, Float, Float, Float});
define(rollup_distinct, keys(0), {Str, Int});

event(telemetry, 5);   /* node, metric, kind, payload, clock */

m1 metric_sample(Node, Metric, Kind, Payload, Clock) :-
        telemetry(Node, Metric, Kind, Payload, Clock);

/* counters and numeric gauges sum across nodes */
m2 rollup_counter(Metric, sum<V>) :-
        metric_sample(_, Metric, "counter", V, _);
m3 rollup_gauge(Metric, sum<V>) :-
        metric_sample(_, Metric, "gauge", V, _);

/* distribution sketches merge: per-node digests fold into one cluster
   digest (histograms ship their t-digest, so they merge identically) */
m4 rollup_digest(Metric, percentile<D>) :-
        metric_sample(_, Metric, "percentile", D, _);
m5 rollup_digest(Metric, percentile<D>) :-
        metric_sample(_, Metric, "histogram", D, _);
m6 rollup_percentile(Metric, N, P50, P99, P999) :-
        rollup_digest(Metric, D),
        N := f_sketch_count(D),
        P50 := f_quantile(D, 50),
        P99 := f_quantile(D, 99),
        P999 := f_quantile(D, 99.9);

/* cardinality sketches union register-wise */
m7 rollup_distinct(Metric, count_distinct_approx<D>) :-
        metric_sample(_, Metric, "distinct", D, _);
"""


def monitor_program(
    alert_packs: Iterable[str] = DEFAULT_ALERT_PACKS,
    extra_source: Optional[str] = None,
) -> Program:
    """The monitor's program: core rollup rules plus alert rule packs
    (each pack is plain Overlog source — deployments add their own)."""
    program = parse(MONITOR_PROGRAM)
    for pack in alert_packs:
        program = program.merged(parse(pack))
    if extra_source:
        program = program.merged(parse(extra_source))
    return program


class MonitorProcess(OverlogProcess):
    """The node the cluster's telemetry streams converge on.

    Provenance defaults on: arriving ``telemetry`` tuples are recorded
    as EDB inputs in the derivation ledger, so
    ``cluster.why(monitor, "alarm", row)`` resolves an alarm down to the
    exact per-node metric samples that fired it.
    """

    def __init__(
        self,
        address: str = "monitor",
        alert_packs: Iterable[str] = DEFAULT_ALERT_PACKS,
        extra_source: Optional[str] = None,
        seed: int = 0,
        provenance: bool = True,
    ):
        super().__init__(
            address,
            monitor_program(alert_packs, extra_source),
            seed=seed,
            provenance=provenance,
        )
        #: Every alarm firing, in arrival order: (virtual ms, alarm row).
        self.alert_log: list[tuple[int, tuple]] = []
        #: Every cluster-invariant violation firing (requires the
        #: global_invariants packs — see Cluster.enable_invariants).
        self.violation_log: list[tuple[int, tuple]] = []

    def bootstrap(self) -> None:
        self.runtime.watch(ALARM_RELATION, self._on_alarm)
        # Only monitors built with the global-invariant packs declare
        # the violation relation; plain telemetry monitors skip the hook.
        from ..monitoring.invariants import VIOLATION_RELATION

        if self.runtime.catalog.is_declared(VIOLATION_RELATION):
            self.runtime.watch(VIOLATION_RELATION, self._on_violation)

    def _on_alarm(self, row: tuple) -> None:
        self.alert_log.append((self.now, row))
        # Alarms trigger the flight recorder's post-mortem dump (when one
        # is armed with dump_on=("alarm", ...)): the ring's recent
        # envelopes and span events are exactly the evidence an operator
        # wants next to a fresh alarm.
        recorder = getattr(self.cluster, "flight_recorder", None)
        if recorder is not None:
            recorder.on_alarm(
                str(self.address), str(row[0]), subject=str(row[1])
            )

    def _on_violation(self, row: tuple) -> None:
        self.violation_log.append((self.now, row))
        # A cluster-invariant firing is at least as dump-worthy as an
        # alarm; the recorder dedupes per (node, name, subject) so a
        # violation that re-derives every export round dumps only once.
        recorder = getattr(self.cluster, "flight_recorder", None)
        if recorder is not None:
            recorder.on_violation(
                str(self.address), str(row[0]), subject=str(row[1])
            )

    def set_slo(self, metric: str, p99_ms: float) -> None:
        """Install a p99 latency SLO for ``metric``: the LATENCY_ALERTS
        pack fires ``("p99-slo-burn", metric, p99)`` while the
        cluster-merged digest's p99 exceeds ``p99_ms``."""
        self.inject("latency_slo", (metric, float(p99_ms)))

    # -- typed views over the monitor's tables --------------------------------

    def samples(self) -> list[tuple]:
        """All current (node, metric, kind, payload, clock) samples."""
        return sorted(self.runtime.rows("metric_sample"))

    def alarms(self) -> list[tuple]:
        """Currently-firing alarms as sorted (name, subject, detail)."""
        return sorted(self.runtime.rows(ALARM_RELATION))

    def rollup_counters(self) -> dict[str, int]:
        return dict(sorted(self.runtime.rows("rollup_counter")))

    def rollup_gauges(self) -> dict[str, float]:
        return dict(sorted(self.runtime.rows("rollup_gauge")))

    def rollup_percentiles(self) -> dict[str, tuple]:
        """metric -> (count, p50, p99, p999), sketch-merged cluster-wide."""
        return {
            metric: (n, p50, p99, p999)
            for metric, n, p50, p99, p999 in sorted(
                self.runtime.rows("rollup_percentile")
            )
        }

    def rollup_distincts(self) -> dict[str, int]:
        return dict(sorted(self.runtime.rows("rollup_distinct")))

    def why_alarm(self, row: tuple, fmt: str = "text"):
        """Derivation DAG of one alarm: the operator's ``why()``."""
        return self.runtime.why(ALARM_RELATION, row, fmt=fmt)

    def violations(self) -> list[tuple]:
        """Distinct invariant-violation rows fired so far, sorted."""
        return sorted({row for _ms, row in self.violation_log}, key=repr)

    def why_violation(self, row: tuple, fmt: str = "text"):
        """Derivation DAG of one cluster-invariant violation, down to
        the per-node state exports that fired it."""
        from ..monitoring.invariants import VIOLATION_RELATION

        return self.runtime.why(VIOLATION_RELATION, row, fmt=fmt)

    def dashboard(self) -> str:
        from .export import render_telemetry_dashboard

        return render_telemetry_dashboard(
            self, now_ms=self.now if self.cluster is not None else None
        )


__all__ = [
    "ALARM_RELATION",
    "MONITOR_PROGRAM",
    "MonitorProcess",
    "TELEMETRY_RELATION",
    "monitor_program",
]
