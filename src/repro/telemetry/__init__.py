"""The meta-circular telemetry plane (docs/TELEMETRY.md).

Metrics-as-tuples: every node periodically snapshots its
:class:`~repro.metrics.registry.MetricsRegistry` into
``telemetry(node, metric, kind, payload, clock)`` tuples and ships them
over the ordinary :class:`~repro.transport.envelope.Envelope` transport
to a :class:`MonitorProcess`, whose aggregation and health logic is —
in the paper's spirit — written in Overlog itself.  Distribution and
cardinality metrics travel as mergeable sketch payloads
(:mod:`repro.sketches`), so cluster-wide rollups cost O(nodes), not
O(observations).

Wiring lives on the cluster surface::

    monitor = cluster.enable_telemetry(interval_ms=1000)
    ...
    print(cluster.telemetry_dashboard())
    cluster.export_telemetry_jsonl("telemetry.jsonl")
    cluster.why("monitor", "alarm", alarm_row)   # provenance-traceable
"""

from .alerts import (
    BOOMFS_ALERTS,
    DEFAULT_ALERT_PACKS,
    PAXOS_ALERTS,
    TRANSPORT_ALERTS,
)
from .export import (
    render_telemetry_dashboard,
    telemetry_jsonl,
    telemetry_rows,
    trace_latency_digest,
    trace_latency_rows,
    write_telemetry_jsonl,
)
from .monitor import (
    ALARM_RELATION,
    MONITOR_PROGRAM,
    MonitorProcess,
    TELEMETRY_RELATION,
    monitor_program,
)

__all__ = [
    "ALARM_RELATION",
    "BOOMFS_ALERTS",
    "DEFAULT_ALERT_PACKS",
    "MONITOR_PROGRAM",
    "MonitorProcess",
    "PAXOS_ALERTS",
    "TELEMETRY_RELATION",
    "TRANSPORT_ALERTS",
    "monitor_program",
    "render_telemetry_dashboard",
    "telemetry_jsonl",
    "telemetry_rows",
    "trace_latency_digest",
    "trace_latency_rows",
    "write_telemetry_jsonl",
]
