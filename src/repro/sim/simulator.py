"""Deterministic discrete-event simulator.

This replaces the EC2 cluster the BOOM Analytics paper ran on: every node,
network link and failure is driven from a single virtual clock, so entire
distributed executions are reproducible from one seed.

Time is integer **milliseconds**.  Events scheduled for the same instant
run in schedule order (a monotone sequence number breaks ties), which keeps
runs deterministic regardless of hash seeds or dict ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class _ScheduledEvent:
    time: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> int:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A single-threaded virtual-time event loop."""

    def __init__(self):
        self.now: int = 0
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay_ms: int, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` ``delay_ms`` milliseconds from now."""
        if delay_ms < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self.now + delay_ms, action)

    def schedule_at(self, time_ms: int, action: Callable[[], None]) -> EventHandle:
        if time_ms < self.now:
            raise ValueError(
                f"cannot schedule at {time_ms}, current time is {self.now}"
            )
        event = _ScheduledEvent(time=time_ms, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def _pop_runnable(self, until: Optional[int]) -> Optional[_ScheduledEvent]:
        while self._queue:
            if until is not None and self._queue[0].time > until:
                return None
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        event = self._pop_runnable(until=None)
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        event.action()
        return True

    def run_until(self, time_ms: int) -> None:
        """Process every event scheduled at or before ``time_ms``; the
        clock ends exactly at ``time_ms``."""
        while True:
            event = self._pop_runnable(until=time_ms)
            if event is None:
                break
            self.now = event.time
            self.events_processed += 1
            event.action()
        self.now = max(self.now, time_ms)

    def run_while(
        self,
        predicate: Callable[[], bool],
        max_time_ms: int,
    ) -> bool:
        """Run while ``predicate()`` holds, up to ``max_time_ms``.

        Returns True if the predicate became false (condition reached),
        False on timeout or queue exhaustion while it still held.
        """
        while predicate():
            event = self._pop_runnable(until=max_time_ms)
            if event is None:
                return not predicate()
            self.now = event.time
            self.events_processed += 1
            event.action()
        return True

    def run_until_condition(
        self, condition: Callable[[], bool], max_time_ms: int
    ) -> bool:
        """Run until ``condition()`` is true; see :meth:`run_while`."""
        return self.run_while(lambda: not condition(), max_time_ms)

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
