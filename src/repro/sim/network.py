"""Back-compat shim: the simulated network now lives in ``repro.transport``.

The one-tuple-per-message ``Network`` was refactored into the pluggable
transport layer: the contract is :class:`repro.transport.base.Transport`,
the discrete-event implementation is
:class:`repro.transport.sim_transport.SimTransport` (envelope batches
instead of single tuples), and the shared accounting is
:class:`repro.transport.base.TransportStats`.  This module keeps the
historical import surface alive for subsystem code and external scripts.
"""

from __future__ import annotations

from ..transport.base import Address, Delta, NetworkStats, TransportStats
from ..transport.envelope import Envelope, estimate_row_size
from ..transport.sim_transport import LatencyModel, SimTransport

# Historical names: the pre-envelope network called deltas "messages" and
# the simulated transport "Network".
Message = Delta
Network = SimTransport

__all__ = [
    "Address",
    "Envelope",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "TransportStats",
    "estimate_row_size",
]
