"""Simulated message network.

Models the properties that matter to the paper's experiments:

* configurable per-message latency (base + seeded jitter),
* optional message loss,
* network partitions (groups of mutually unreachable addresses),
* per-link FIFO ordering (TCP-like), preserved even under jitter.

Messages are ``(relation, row)`` pairs: the natural unit of communication
between Overlog runtimes, also adopted by the imperative processes so that
both stacks run over an identical transport.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..metrics.trace import Tracer
from .simulator import Simulator

Address = str
Message = tuple[str, tuple]  # (relation, row)


@dataclass
class LatencyModel:
    """Per-message latency = base + U(0, jitter) + size/bandwidth, in ms.

    ``kb_per_ms`` models link bandwidth for bulk transfers (chunk data);
    zero disables the size-dependent term (control messages dominate).
    """

    base_ms: int = 1
    jitter_ms: int = 2
    kb_per_ms: float = 0.0

    def sample(self, rng: random.Random, size_bytes: int = 0) -> int:
        latency = self.base_ms
        if self.jitter_ms > 0:
            latency += rng.randrange(self.jitter_ms + 1)
        if self.kb_per_ms > 0 and size_bytes > 0:
            latency += int(size_bytes / 1024 / self.kb_per_ms)
        return latency


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_dead: int = 0
    bytes_sent: int = 0
    remote_bytes: int = 0  # bytes that crossed machine boundaries


class Network:
    """Routes messages between registered handlers with simulated delay."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.rng = random.Random(seed)
        # Causal tracing: sends capture the tracer's active span context
        # into the message envelope; deliveries reopen it as child spans.
        self.tracer = tracer
        self.stats = NetworkStats()
        self._handlers: dict[Address, Callable[[str, tuple], None]] = {}
        self._last_delivery: dict[tuple[Address, Address], int] = {}
        self._partition_of: dict[Address, int] = {}
        self._machine_of: dict[Address, int] = {}

    # -- membership -----------------------------------------------------------

    def register(
        self, address: Address, handler: Callable[[str, tuple], None]
    ) -> None:
        self._handlers[address] = handler

    def unregister(self, address: Address) -> None:
        self._handlers.pop(address, None)

    def is_registered(self, address: Address) -> bool:
        return address in self._handlers

    # -- partitions -------------------------------------------------------------

    def partition(self, *groups: list[Address]) -> None:
        """Split the network: addresses in different groups can no longer
        communicate.  Unlisted addresses stay in group 0."""
        self._partition_of = {}
        for idx, group in enumerate(groups, start=1):
            for addr in group:
                self._partition_of[addr] = idx

    def heal(self) -> None:
        self._partition_of = {}

    def can_reach(self, src: Address, dst: Address) -> bool:
        return self._partition_of.get(src, 0) == self._partition_of.get(dst, 0)

    # -- colocation ---------------------------------------------------------

    def colocate(self, *groups: list[Address]) -> None:
        """Declare address groups that share a physical machine: transfers
        between them skip the bandwidth term (local disk, not the wire).
        Models HDFS/MapReduce co-locating DataNodes with TaskTrackers.
        May be called repeatedly; each group gets a fresh machine id."""
        next_id = max(self._machine_of.values(), default=0)
        for group in groups:
            next_id += 1
            for addr in group:
                self._machine_of[addr] = next_id

    def same_machine(self, a: Address, b: Address) -> bool:
        ma = self._machine_of.get(a)
        return ma is not None and ma == self._machine_of.get(b)

    # -- sending ------------------------------------------------------------------

    def send(self, src: Address, dst: Address, relation: str, row: tuple) -> None:
        """Queue a message for delivery; may be dropped by loss/partition."""
        size = _estimate_size(row)
        self.stats.sent += 1
        self.stats.bytes_sent += size
        tracer = self.tracer
        mid = tracer.on_send(src, dst, relation) if tracer is not None else None
        if not self.can_reach(src, dst):
            self.stats.dropped_partition += 1
            if tracer is not None:
                tracer.on_drop(mid, "partition")
            return
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            if tracer is not None:
                tracer.on_drop(mid, "loss")
            return
        if self.same_machine(src, dst):
            # Local transfer: loopback/disk, no wire-bandwidth term.
            arrival = self.sim.now + self.latency.base_ms
        else:
            arrival = self.sim.now + self.latency.sample(self.rng, size_bytes=size)
            self.stats.remote_bytes += size
        # Per-link FIFO: never deliver before an earlier message on the link.
        link = (src, dst)
        arrival = max(arrival, self._last_delivery.get(link, 0))
        self._last_delivery[link] = arrival
        self.sim.schedule_at(
            arrival, lambda: self._deliver(src, dst, relation, row, mid)
        )

    def _deliver(
        self,
        src: Address,
        dst: Address,
        relation: str,
        row: tuple,
        mid: Optional[int] = None,
    ) -> None:
        # Partition / crash checks happen again at delivery time: a message
        # in flight when the link breaks (or the destination dies) is lost.
        tracer = self.tracer
        if not self.can_reach(src, dst):
            self.stats.dropped_partition += 1
            if tracer is not None:
                tracer.on_drop(mid, "partition")
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.dropped_dead += 1
            if tracer is not None:
                tracer.on_drop(mid, "dead")
            return
        self.stats.delivered += 1
        if tracer is not None:
            # The handler runs under the delivered context (child spans of
            # the sender's), never under whatever happened to be ambient.
            ctx = tracer.on_deliver(mid, dst, relation)
            with tracer.activate(ctx):
                handler(relation, row)
        else:
            handler(relation, row)


def _estimate_size(row: tuple) -> int:
    size = 8  # envelope
    for value in row:
        if isinstance(value, str):
            size += len(value)
        elif isinstance(value, bytes):
            size += len(value)
        elif isinstance(value, tuple):
            size += _estimate_size(value)
        else:
            size += 8
    return size
