"""Cluster: the top-level container wiring processes, network and clock.

A :class:`Cluster` is what an experiment script constructs: it owns the
simulator, the network, and a registry of named processes, and offers
crash/restart/partition controls used by the availability experiments.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..metrics import ClusterMetrics, Tracer
from ..provenance.why import ClusterProvenance
from .network import Address, LatencyModel, Network
from .node import Process
from .simulator import Simulator


class Cluster:
    """A simulated cluster of processes."""

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ):
        self.sim = Simulator()
        # Observability: one cluster-wide metrics aggregator (every node's
        # registry is adopted into it on attach) and one tracer driven by
        # the virtual clock (see docs/OBSERVABILITY.md).
        self.metrics = ClusterMetrics()
        self.tracer = Tracer(clock=lambda: self.sim.now)
        # Cross-node provenance: nodes built with provenance=True register
        # their derivation ledgers here, and Cluster.why() stitches
        # derivation DAGs across them (docs/PROVENANCE.md).
        self.provenance = ClusterProvenance(tracer=self.tracer)
        self.network = Network(
            self.sim,
            latency=latency,
            loss_rate=loss_rate,
            seed=seed,
            tracer=self.tracer,
        )
        self.seed = seed
        self.processes: dict[Address, Process] = {}

    # -- membership -----------------------------------------------------------

    def add(self, process: Process) -> Process:
        if process.address in self.processes:
            raise ValueError(f"duplicate address {process.address}")
        self.processes[process.address] = process
        process.attach(self)
        self.network.register(process.address, process.handle_message)
        process.start()
        return process

    def get(self, address: Address) -> Process:
        return self.processes[address]

    def addresses(self) -> list[Address]:
        return list(self.processes)

    # -- failure injection --------------------------------------------------------

    def crash(self, address: Address) -> None:
        """Fail-stop the node: it stops receiving, sending and ticking.
        All volatile state is lost."""
        process = self.processes[address]
        if process.crashed:
            return
        process.crashed = True
        process.on_crash()
        self.network.unregister(address)

    def restart(self, address: Address) -> None:
        """Bring a crashed node back with empty volatile state."""
        process = self.processes[address]
        if not process.crashed:
            return
        process.crashed = False
        reset = getattr(process, "reset_for_restart", None)
        if reset is not None:
            reset()
        self.network.register(address, process.handle_message)
        process.start()
        on_restart = getattr(process, "on_restart", None)
        if on_restart is not None:
            on_restart()

    def crash_at(self, time_ms: int, address: Address) -> None:
        self.sim.schedule_at(time_ms, lambda: self.crash(address))

    def restart_at(self, time_ms: int, address: Address) -> None:
        self.sim.schedule_at(time_ms, lambda: self.restart(address))

    def partition(self, *groups: Iterable[Address]) -> None:
        self.network.partition(*[list(g) for g in groups])

    def heal(self) -> None:
        self.network.heal()

    def is_up(self, address: Address) -> bool:
        process = self.processes.get(address)
        return process is not None and not process.crashed

    # -- running ----------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.sim.now

    def run_for(self, duration_ms: int) -> None:
        self.sim.run_until(self.sim.now + duration_ms)

    def run_until(self, condition: Callable[[], bool], max_time_ms: int) -> bool:
        """Run until ``condition()`` holds; True when it was reached."""
        return self.sim.run_until_condition(
            condition, max_time_ms=max_time_ms
        )

    # -- observability -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(now_ms=self.sim.now)

    def dashboard(self) -> str:
        """Text snapshot of cluster-wide metrics (operator view)."""
        return self.metrics.render_dashboard(now_ms=self.sim.now)

    def export_metrics_jsonl(self, path):
        return self.metrics.export_jsonl(path, now_ms=self.sim.now)

    def export_traces_jsonl(self, path) -> None:
        self.tracer.export_jsonl(path)

    def why(self, node: Address, relation: str, row, fmt: str = "text"):
        """Cross-node derivation DAG of ``(relation, row)`` as recorded by
        ``node``'s ledger, stitched through every registered ledger and
        the tracer.  Requires the node to run with ``provenance=True``."""
        return self.provenance.why(node, relation, row, fmt=fmt)
