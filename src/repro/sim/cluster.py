"""Simulated cluster: BaseCluster over the discrete-event backend.

A :class:`Cluster` is what an experiment script constructs: the shared
cluster surface (process registry, crash/restart/partition controls,
observability) from :class:`~repro.transport.base_cluster.BaseCluster`,
bound to a :class:`~repro.sim.simulator.Simulator` clock and a
:class:`~repro.transport.sim_transport.SimTransport`.  Deterministic for
a given seed; the drop-in alternative is
:class:`repro.transport.asyncio_backend.AsyncCluster`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..transport.base_cluster import BaseCluster
from ..transport.sim_transport import LatencyModel, SimTransport
from .simulator import Simulator


class Cluster(BaseCluster):
    """A simulated cluster of processes (virtual time, seeded jitter)."""

    backend = "sim"

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        batching: bool = True,
    ):
        self.sim = Simulator()
        super().__init__(
            SimTransport(
                self.sim, latency=latency, loss_rate=loss_rate, seed=seed
            ),
            batching=batching,
        )
        self.seed = seed

    # -- running ----------------------------------------------------------------

    def run_for(self, duration_ms: int) -> None:
        self.sim.run_until(self.sim.now + duration_ms)

    def run_until(self, condition: Callable[[], bool], max_time_ms: int) -> bool:
        """Run until ``condition()`` holds; True when it was reached."""
        return self.sim.run_until_condition(
            condition, max_time_ms=max_time_ms
        )
