"""Processes (nodes): backend-agnostic execution units.

Two kinds of node run on a cluster:

* :class:`OverlogProcess` — hosts an :class:`~repro.overlog.runtime.OverlogRuntime`
  and wires its timestep loop to the cluster clock and transport.  This
  is how every declarative component (BOOM-FS NameNode, Paxos replicas,
  BOOM-MR JobTracker) executes.
* :class:`Process` — the imperative base class used by data-plane and
  baseline components (DataNodes, TaskTrackers, the Hadoop-style stack).

Both communicate exclusively through ``(relation, row)`` deltas shipped
in :class:`~repro.transport.envelope.Envelope` batches, so declarative
and imperative nodes interoperate — and both speak only the
:class:`~repro.transport.base.Transport` contract through their cluster,
so the same node classes run on the discrete-event simulator
(:class:`repro.sim.cluster.Cluster`) and on the asyncio backend
(:class:`repro.transport.asyncio_backend.AsyncCluster`) unmodified.

Sends are buffered in a per-node :class:`~repro.transport.envelope.Outbox`
and flushed once per *delivery unit* — an Overlog fixpoint, an arriving
envelope's handler run, a timer callback — producing one envelope per
destination (flush-on-fixpoint batching).  A ``send`` outside any such
unit flushes immediately.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..metrics import MetricsRegistry, Tracer
from ..overlog import OverlogRuntime, Program
from ..overlog.eval import StepResult
from ..transport.base import Address, TimerHandle
from ..transport.envelope import Outbox

if TYPE_CHECKING:
    from ..transport.base_cluster import BaseCluster


class Process:
    """Base class for a node attached to a cluster (any backend)."""

    def __init__(self, address: Address):
        self.address = address
        self.cluster: Optional["BaseCluster"] = None
        self.crashed = False
        # Per-node metric scope; re-registered with the cluster-wide
        # aggregator on attach (Overlog nodes swap in their runtime's
        # registry instead — see OverlogProcess).
        self.metrics = MetricsRegistry(str(address))
        self._outbox = Outbox(address)
        self._send_depth = 0
        # Telemetry export loop (docs/TELEMETRY.md), armed by
        # Cluster.enable_telemetry: where to ship registry snapshots
        # and how often (None = explicit publish_telemetry() only).
        self._telemetry_dst: Optional[Address] = None
        self._telemetry_interval: Optional[int] = None
        self._telemetry_gen = 0
        # State export loop (docs/OBSERVABILITY.md), armed by
        # Cluster.enable_invariants: ships state_export_rows() snapshots
        # to the monitor for cluster-scoped invariant checking.
        self._state_dst: Optional[Address] = None
        self._state_interval: Optional[int] = None
        self._state_gen = 0

    # -- lifecycle, called by the cluster ------------------------------------

    def attach(self, cluster: "BaseCluster") -> None:
        self.cluster = cluster
        self._register_metrics()

    def _register_metrics(self) -> None:
        if self.cluster is not None:
            self.metrics = self.cluster.metrics.adopt(self.metrics)

    @property
    def tracer(self) -> Optional[Tracer]:
        return self.cluster.tracer if self.cluster is not None else None

    def start(self) -> None:
        """Called once when the node joins the cluster (and on restart)."""

    def on_crash(self) -> None:
        """Called when the node crashes (before it stops receiving)."""

    # -- messaging -------------------------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        raise NotImplementedError

    @contextmanager
    def sending(self):
        """Scope one delivery unit: sends made inside buffer into the
        outbox and flush as batched envelopes on outermost exit."""
        self._send_depth += 1
        try:
            yield
        finally:
            self._send_depth -= 1
            if self._send_depth == 0:
                self._flush_sends()

    def send(self, dst: Address, relation: str, row: tuple) -> None:
        assert self.cluster is not None, "process not attached"
        tracer = self.tracer
        # The trace context is captured at buffer time (batching must not
        # blur which span caused which delta); the mid rides the envelope.
        mid = (
            tracer.on_send(self.address, dst, relation)
            if tracer is not None
            else None
        )
        self._outbox.add(dst, relation, tuple(row), mid)
        if self._send_depth == 0:
            self._flush_sends()

    def _flush_sends(self) -> None:
        if self.cluster is None or not len(self._outbox):
            return
        transport = self.cluster.transport
        for env in self._outbox.flush(batch=self.cluster.batching):
            transport.send(env)

    def discard_unsent(self) -> None:
        """Crash semantics: unflushed sends are volatile state, lost."""
        self._outbox.clear()

    # -- time --------------------------------------------------------------------

    @property
    def now(self) -> int:
        assert self.cluster is not None
        return self.cluster.now

    def after(self, delay_ms: int, action: Callable[[], None]) -> TimerHandle:
        """Schedule ``action`` unless this node has crashed by then.  The
        action runs as its own delivery unit (its sends batch per dest)."""
        assert self.cluster is not None

        def guarded() -> None:
            if not self.crashed:
                with self.sending():
                    action()

        return self.cluster.schedule(delay_ms, guarded)

    # -- telemetry export (docs/TELEMETRY.md) ----------------------------------

    def enable_telemetry(
        self, monitor: Address, interval_ms: Optional[int] = None
    ) -> None:
        """Start shipping this node's registry to ``monitor`` as
        ``telemetry`` tuples: every ``interval_ms`` when set, and on any
        explicit :meth:`publish_telemetry` call.  Called by the cluster
        on enable, on membership changes and after restarts; each call
        supersedes any previous export loop (a crash kills the timer
        chain, so the restart path must be able to arm a fresh one)."""
        self._telemetry_dst = monitor
        self._telemetry_interval = interval_ms
        self._telemetry_gen += 1
        if interval_ms is not None:
            self._arm_telemetry(self._telemetry_gen)

    def disable_telemetry(self) -> None:
        self._telemetry_dst = None
        self._telemetry_interval = None
        self._telemetry_gen += 1

    def _arm_telemetry(self, gen: int) -> None:
        def tick() -> None:
            if gen != self._telemetry_gen or self._telemetry_interval is None:
                return  # superseded by a newer enable/disable
            self.publish_telemetry()
            self._arm_telemetry(gen)

        self.after(self._telemetry_interval, tick)

    def publish_telemetry(self, clock: Optional[int] = None) -> int:
        """Snapshot the registry into ``telemetry(node, metric, kind,
        payload, clock)`` tuples and ship them to the monitor over the
        ordinary envelope transport.  ``clock`` defaults to transport
        time; deterministic tests pass an explicit round number so both
        backends emit identical tuples.  Returns the tuple count."""
        if self._telemetry_dst is None or self.crashed:
            return 0
        from ..telemetry.export import telemetry_rows

        rows = telemetry_rows(
            self.metrics,
            node=str(self.address),
            clock=self.now if clock is None else clock,
        )
        with self.sending():
            for row in rows:
                self.send(self._telemetry_dst, "telemetry", row)
        return len(rows)

    # -- state export (cluster-scoped invariants) ------------------------------

    def enable_state_export(
        self, monitor: Address, interval_ms: Optional[int] = None
    ) -> None:
        """Start shipping this node's :meth:`state_export_rows` snapshot
        to ``monitor``: every ``interval_ms`` when set, and on any
        explicit :meth:`publish_state` call.  Same loop-generation
        discipline as telemetry (a crash kills the timer chain; the
        restart path arms a fresh one)."""
        self._state_dst = monitor
        self._state_interval = interval_ms
        self._state_gen += 1
        if interval_ms is not None:
            self._arm_state_export(self._state_gen)

    def disable_state_export(self) -> None:
        self._state_dst = None
        self._state_interval = None
        self._state_gen += 1

    def _arm_state_export(self, gen: int) -> None:
        def tick() -> None:
            if gen != self._state_gen or self._state_interval is None:
                return  # superseded by a newer enable/disable
            self.publish_state()
            self._arm_state_export(gen)

        self.after(self._state_interval, tick)

    def publish_state(self, clock: Optional[int] = None) -> int:
        """Snapshot this node's safety-relevant state into
        ``(relation, row)`` deltas and ship them to the monitor, where
        the cluster-scoped invariant packs join them across nodes
        (:mod:`repro.monitoring.global_invariants`).  ``clock`` defaults
        to transport time; deterministic tests pass explicit round
        numbers.  Returns the tuple count."""
        if self._state_dst is None or self.crashed:
            return 0
        rows = self.state_export_rows(
            self.now if clock is None else clock
        )
        with self.sending():
            for relation, row in rows:
                self.send(self._state_dst, relation, row)
        return len(rows)

    def state_export_rows(self, clock: int) -> list[tuple]:
        """Hook: ``(relation, row)`` pairs describing this node's
        safety-relevant state at ``clock``.  The default exports
        nothing; components with cross-node invariants override it."""
        return []


class OverlogProcess(Process):
    """A node whose behaviour is an Overlog program.

    The runtime's timestep loop is driven by the cluster clock: each
    arriving message (or due timer) schedules a step; each step's remote
    sends are flushed through the transport as one envelope per
    destination (flush-on-fixpoint).

    CPU service time is modelled by ``step_cost_ms`` (fixed cost per
    timestep) plus ``per_derivation_cost_us`` (microseconds per derived
    tuple): after a step, the node is *busy* for that long and the next
    step cannot start earlier.  Both default to zero (infinitely fast
    node), which is right for protocol tests; throughput experiments set
    them to expose the metadata plane as a bottleneck.

    ``METRICS`` is forwarded to the runtime: ``None`` (default) enables
    the always-on registry, ``False`` disables it — an ablation hook for
    measuring instrumentation overhead (bench E4/E8).  ``COMPILE_MODE``
    likewise forwards an evaluator tier override (``"source"`` /
    ``"closure"`` / ``"interpreter"``, ``None`` = runtime default) — the
    codegen-ablation hook bench E4 subclasses.

    ``provenance``/``profile`` turn on the runtime's derivation ledger
    and sampled plan profiler (both off by default — see
    docs/PROVENANCE.md); the ledger is registered with the cluster's
    :class:`~repro.provenance.why.ClusterProvenance` so ``Cluster.why``
    stitches derivations across nodes, and re-registered after a restart
    (a restarted node's provenance starts from blank, like the rest of
    its soft state).
    """

    METRICS: Any = None
    COMPILE_MODE: Optional[str] = None

    def __init__(
        self,
        address: Address,
        program: Program | str,
        seed: int = 0,
        step_cost_ms: int = 0,
        per_derivation_cost_us: int = 0,
        extra_functions: Optional[dict[str, Callable[..., Any]]] = None,
        provenance: bool = False,
        provenance_capacity: Optional[int] = None,
        profile: bool = False,
    ):
        super().__init__(address)
        self._program = program
        self._seed = seed
        self._extra_functions = extra_functions
        self._provenance = provenance
        self._provenance_capacity = provenance_capacity
        self._profile = profile
        self.step_cost_ms = step_cost_ms
        self.per_derivation_cost_us = per_derivation_cost_us
        self.runtime = self._make_runtime()
        if self.runtime.metrics is not None:
            self.metrics = self.runtime.metrics.registry
        self._step_pending = False
        self._busy_until = 0
        self._timer_handle: Optional[TimerHandle] = None
        self._woke_by_timer = False

    def _make_runtime(self) -> OverlogRuntime:
        return OverlogRuntime(
            self._program,
            address=self.address,
            seed=self._seed,
            extra_functions=self._extra_functions,
            compile_mode=self.COMPILE_MODE,
            metrics=self.METRICS,
            provenance=self._provenance,
            provenance_capacity=self._provenance_capacity,
            profile=self._profile,
        )

    # -- lifecycle --------------------------------------------------------------

    def attach(self, cluster: "BaseCluster") -> None:
        super().attach(cluster)
        self._register_ledger()

    def _register_ledger(self) -> None:
        if self.cluster is not None and self.runtime.ledger is not None:
            self.cluster.provenance.register(self.address, self.runtime.ledger)

    def start(self) -> None:
        self.bootstrap()
        self._schedule_timer_wakeup()
        self._schedule_step()

    def bootstrap(self) -> None:
        """Hook: install initial facts into the runtime.  Called at start
        and again after a restart (which begins from a blank runtime)."""

    def on_restart(self) -> None:
        """Hook invoked after the runtime has been rebuilt on restart."""

    def reset_for_restart(self) -> None:
        """Rebuild the runtime from scratch (crash loses soft state)."""
        self.runtime = self._make_runtime()
        # Metrics are soft state too: a restarted node reports from zero,
        # and its fresh registry replaces the old one cluster-wide.
        if self.runtime.metrics is not None:
            self.metrics = self.runtime.metrics.registry
        self._register_metrics()
        # A fresh runtime means a fresh ledger; re-register it so
        # cluster-wide why() keeps resolving through this node.
        self._register_ledger()
        self._step_pending = False
        self._busy_until = 0
        self._timer_handle = None
        self._woke_by_timer = False
        self._outbox.clear()

    def on_crash(self) -> None:
        if self._timer_handle is not None:
            self._timer_handle.cancel()
            self._timer_handle = None

    # -- messaging ----------------------------------------------------------------

    def handle_message(self, relation: str, row: tuple) -> None:
        # Deliveries run under the message's span context (set by the
        # cluster when unpacking the envelope); remember it on the inbox
        # tuple so the step that eventually consumes it resumes the trace.
        tracer = self.tracer
        ctx = tracer.current if tracer is not None else ()
        self.runtime.insert(relation, row, trace=ctx)
        self._schedule_step()

    def inject(self, relation: str, row: tuple, trace: Any = None) -> None:
        """Locally insert an event (e.g. an application request) and wake
        the node up.  ``trace`` may be a SpanRef (or tuple of them) to
        stamp the event with a causal trace; otherwise the ambient tracer
        context, if any, is inherited."""
        if self.crashed:
            return
        if trace is None:
            tracer = self.tracer
            ctx = tracer.current if tracer is not None else ()
        elif isinstance(trace, tuple):
            ctx = trace
        else:
            ctx = (trace,)
        self.runtime.insert(relation, tuple(row), trace=ctx)
        self._schedule_step()

    # -- stepping ------------------------------------------------------------------

    def _schedule_step(self) -> None:
        if self._step_pending or self.crashed or self.cluster is None:
            return
        self._step_pending = True
        delay = max(self.step_cost_ms, self._busy_until - self.now)
        self.cluster.schedule(delay, self._run_step)

    def _run_step(self) -> None:
        self._step_pending = False
        if self.crashed:
            return
        tracer = self.tracer
        # Per-step rule attribution for the latency accounting layer:
        # snapshot the evaluator's cumulative fire counts so the step
        # annotation can carry this tick's per-rule fires.  Only paid
        # when at least one trace exists (untraced runs skip the copy).
        fires_before = (
            dict(self.runtime.evaluator.rule_fires)
            if tracer is not None and tracer._trace_n
            else None
        )
        woke_by_timer = self._woke_by_timer
        self._woke_by_timer = False
        result = self.runtime.tick(now=self.now)
        cost_ms = 0
        if self.per_derivation_cost_us:
            cost_ms = (
                result.derivation_count * self.per_derivation_cost_us
            ) // 1000
            self._busy_until = self.now + self.step_cost_ms + cost_ms
        # The step's effects (result handling, remote sends) execute under
        # the causal context of the inbox tuples that drove the fixpoint,
        # so traces follow requests across nodes.  The sending() scope is
        # the fixpoint boundary: every send the step makes flushes as one
        # envelope per destination when the scope closes.
        ctx = self.runtime.last_step_ctx
        with self.sending():
            if tracer is not None and ctx:
                annotation: dict[str, Any] = {
                    "node": self.address,
                    "derivations": result.derivation_count,
                }
                if woke_by_timer:
                    annotation["timer"] = True
                busy_ms = self.step_cost_ms + cost_ms
                if busy_ms:
                    annotation["busy_ms"] = busy_ms
                if fires_before is not None:
                    fired = sorted(
                        (name, count - fires_before.get(name, 0))
                        for name, count in self.runtime.evaluator.rule_fires.items()
                        if count != fires_before.get(name, 0)
                    )
                    if fired:
                        annotation["rules"] = fired
                tracer.annotate(ctx, "step", **annotation)
                with tracer.activate(ctx):
                    self.handle_step_result(result)
                    for dest, relation, row in result.sends:
                        self.send(dest, relation, row)
            else:
                self.handle_step_result(result)
                for dest, relation, row in result.sends:
                    self.send(dest, relation, row)
        self._schedule_timer_wakeup()
        # Rules may have produced local events for the next step.
        if self.runtime.has_pending_work:
            self._schedule_step()

    def handle_step_result(self, result: StepResult) -> None:
        """Hook: subclasses react to derived tuples (data-plane bridging)."""

    def _schedule_timer_wakeup(self) -> None:
        next_fire = self.runtime.next_timer_fire()
        if next_fire is None or self.crashed or self.cluster is None:
            return
        if self._timer_handle is not None and not self._timer_handle.cancelled:
            if self._timer_handle.time <= next_fire:
                return
            self._timer_handle.cancel()
        delay = max(0, next_fire - self.now)
        self._timer_handle = self.cluster.schedule(delay, self._timer_fired)

    def _timer_fired(self) -> None:
        self._timer_handle = None
        if not self.crashed:
            # Mark the wakeup source so the step annotation can tell a
            # timer-driven step apart from a message-driven one (the
            # latency accountant classifies the preceding gap as timer
            # wait for any traced tuple that was parked across it).
            self._woke_by_timer = True
            self._run_step()
