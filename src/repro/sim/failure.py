"""Failure-schedule helpers for availability and fault-campaign runs.

The paper's availability revision (§Paxos NameNode) is evaluated by
killing masters mid-run; this module expresses those scenarios as
declarative schedules applied to a :class:`~repro.sim.cluster.Cluster`
(or any :class:`~repro.transport.base_cluster.BaseCluster` backend).

Beyond single crashes and partitions, :func:`generate_campaign` builds a
seeded multi-class schedule — correlated crash groups, rolling
partitions, master stragglers, amnesiac disk-loss restarts, restart
storms — for the fault-campaign observatory (:mod:`repro.campaign`).
Every event carries a ``label`` naming its fault class, and
:meth:`FailureSchedule.apply` accepts an ``observer`` callback that is
invoked at fire time, which is how campaign runners timestamp injections
on the same clock the detection signals use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..transport.base import Address
from ..transport.base_cluster import BaseCluster

#: Fault classes :func:`generate_campaign` knows how to synthesise.
FAULT_CLASSES = (
    "crash",
    "partition",
    "slowdown",
    "amnesia",
    "restart-storm",
)

#: ``observer(kind, ms, subject)`` callback type for ``apply``.
FaultObserver = Callable[[str, int, str], None]


@dataclass(frozen=True)
class CrashEvent:
    at_ms: int
    address: Address
    restart_after_ms: Optional[int] = None  # None = stays dead
    #: Lose the disk while down: ``wipe_storage()`` runs just before the
    #: restart, so the node comes back empty but keeps its identity —
    #: the amnesia fault the chunk-agreement invariant exists to catch.
    wipe: bool = False
    label: str = "crash"


@dataclass(frozen=True)
class PartitionEvent:
    at_ms: int
    #: By convention ``groups[0]`` is the isolated minority; observers
    #: get it as the event subject.
    groups: tuple[tuple[Address, ...], ...]
    heal_after_ms: Optional[int] = None
    label: str = "partition"


@dataclass(frozen=True)
class SlowdownEvent:
    """Straggler fault: bump the victim's ``step_cost_ms`` (CPU service
    time per delta) for ``duration_ms``, then restore the baseline."""

    at_ms: int
    address: Address
    step_cost_ms: int
    duration_ms: int
    label: str = "slowdown"


@dataclass
class FailureSchedule:
    """A reproducible list of crash/partition/slowdown events."""

    crashes: list[CrashEvent] = field(default_factory=list)
    partitions: list[PartitionEvent] = field(default_factory=list)
    slowdowns: list[SlowdownEvent] = field(default_factory=list)

    # -- builders -------------------------------------------------------------

    def crash(
        self,
        at_ms: int,
        address: Address,
        restart_after_ms: Optional[int] = None,
        wipe: bool = False,
        label: str = "crash",
    ) -> "FailureSchedule":
        self.crashes.append(
            CrashEvent(at_ms, address, restart_after_ms, wipe, label)
        )
        return self

    def amnesia(
        self, at_ms: int, address: Address, restart_after_ms: int = 500
    ) -> "FailureSchedule":
        """Disk-loss restart: crash, wipe storage, come back *quickly*
        (inside the master's DataNode timeout) so stale location beliefs
        are never retracted by liveness machinery."""
        return self.crash(
            at_ms,
            address,
            restart_after_ms=restart_after_ms,
            wipe=True,
            label="amnesia",
        )

    def partition(
        self,
        at_ms: int,
        *groups: tuple[Address, ...],
        heal_after_ms: Optional[int] = None,
        label: str = "partition",
    ) -> "FailureSchedule":
        self.partitions.append(
            PartitionEvent(
                at_ms, tuple(tuple(g) for g in groups), heal_after_ms, label
            )
        )
        return self

    def slowdown(
        self,
        at_ms: int,
        address: Address,
        step_cost_ms: int,
        duration_ms: int,
        label: str = "slowdown",
    ) -> "FailureSchedule":
        self.slowdowns.append(
            SlowdownEvent(at_ms, address, step_cost_ms, duration_ms, label)
        )
        return self

    # -- interrogation --------------------------------------------------------

    def end_ms(self) -> int:
        """Clock time by which every event (including repairs) has fired."""
        ends = [0]
        for ev in self.crashes:
            ends.append(ev.at_ms + (ev.restart_after_ms or 0))
        for ev in self.partitions:
            ends.append(ev.at_ms + (ev.heal_after_ms or 0))
        for ev in self.slowdowns:
            ends.append(ev.at_ms + ev.duration_ms)
        return max(ends)

    # -- application ----------------------------------------------------------

    def apply(
        self,
        cluster: BaseCluster,
        observer: Optional[FaultObserver] = None,
    ) -> None:
        """Install every event onto the cluster's clock (any backend).

        ``observer(kind, ms, subject)`` is called at fire time for every
        fault (kind = the event's ``label``) and every repair (kinds
        ``restart``, ``heal``, ``slowdown-end``), on the cluster clock —
        campaign runners use it to timestamp injections against the
        detection signals they are matched with.
        """

        def note(kind: str, subject: str) -> None:
            if observer is not None:
                observer(kind, cluster.now, subject)

        for ev in self.crashes:

            def fire_crash(ev: CrashEvent = ev) -> None:
                cluster.crash(ev.address)
                note(ev.label, str(ev.address))

            cluster.schedule_at(ev.at_ms, fire_crash)
            if ev.restart_after_ms is not None:

                def fire_restart(ev: CrashEvent = ev) -> None:
                    if ev.wipe:
                        wipe = getattr(
                            cluster.get(ev.address), "wipe_storage", None
                        )
                        if wipe is not None:
                            wipe()
                    cluster.restart(ev.address)
                    note("restart", str(ev.address))

                cluster.schedule_at(
                    ev.at_ms + ev.restart_after_ms, fire_restart
                )

        for ev in self.partitions:
            subject = "|".join(sorted(str(a) for a in ev.groups[0]))

            def fire_partition(
                ev: PartitionEvent = ev, subject: str = subject
            ) -> None:
                cluster.partition(*[list(g) for g in ev.groups])
                note(ev.label, subject)

            cluster.schedule_at(ev.at_ms, fire_partition)
            if ev.heal_after_ms is not None:

                def fire_heal(
                    ev: PartitionEvent = ev, subject: str = subject
                ) -> None:
                    cluster.heal()
                    note("heal", subject)

                cluster.schedule_at(ev.at_ms + ev.heal_after_ms, fire_heal)

        for ev in self.slowdowns:

            def fire_slowdown(ev: SlowdownEvent = ev) -> None:
                process = cluster.get(ev.address)
                baseline = getattr(process, "step_cost_ms", None)
                if baseline is None:
                    return
                process.step_cost_ms = ev.step_cost_ms
                note(ev.label, str(ev.address))

                def restore() -> None:
                    process.step_cost_ms = baseline
                    note("slowdown-end", str(ev.address))

                cluster.schedule(ev.duration_ms, restore)

            cluster.schedule_at(ev.at_ms, fire_slowdown)


def random_crash_schedule(
    addresses: list[Address],
    horizon_ms: int,
    crash_count: int,
    seed: int = 0,
    restart_after_ms: Optional[int] = None,
) -> FailureSchedule:
    """Crash ``crash_count`` distinct random nodes at random times —
    the workhorse of fault-injection tests."""
    rng = random.Random(seed)
    schedule = FailureSchedule()
    victims = rng.sample(addresses, min(crash_count, len(addresses)))
    for victim in victims:
        at = rng.randrange(1, max(2, horizon_ms))
        schedule.crash(at, victim, restart_after_ms=restart_after_ms)
    return schedule


def generate_campaign(
    masters: Sequence[Address],
    datanodes: Sequence[Address],
    others: Sequence[Address] = (),
    seed: int = 0,
    start_ms: int = 3000,
    slot_ms: int = 12_000,
    classes: Iterable[str] = FAULT_CLASSES,
    crash_group_size: int = 2,
    crash_restart_ms: int = 5000,
    partition_heal_ms: int = 4000,
    slowdown_cost_ms: int = 40,
    slowdown_duration_ms: int = 5000,
    amnesia_restart_ms: int = 500,
    storm_count: int = 3,
    storm_gap_ms: int = 800,
    storm_restart_ms: int = 1500,
) -> FailureSchedule:
    """Seeded multi-class fault campaign over one cluster topology.

    Each requested fault class gets one sequential time slot (``slot_ms``
    apart, starting at ``start_ms``) so detection episodes for faults
    sharing an alarm key never overlap; victim selection inside each
    slot flows from ``seed`` only, so the same arguments always produce
    byte-identical schedules.

    * ``crash`` — a correlated group of DataNodes fail-stops together
      and restarts after ``crash_restart_ms``;
    * ``partition`` — a minority of DataNodes is isolated from
      everything else (masters, remaining DataNodes, ``others`` — pass
      the monitor/load-generator addresses here) and healed after
      ``partition_heal_ms``;
    * ``slowdown`` — one master straggles: ``step_cost_ms`` jumps to
      ``slowdown_cost_ms`` for ``slowdown_duration_ms``;
    * ``amnesia`` — one DataNode loses its disk but restarts inside the
      master's timeout, leaving stale chunk beliefs only the
      cluster-scoped chunk-agreement invariant catches;
    * ``restart-storm`` — a staggered wave of quick crash/restarts.
    """
    rng = random.Random(seed)
    masters = list(masters)
    datanodes = list(datanodes)
    others = list(others)
    schedule = FailureSchedule()
    at = start_ms
    for cls in classes:
        if cls == "crash":
            group = rng.sample(
                datanodes, min(crash_group_size, len(datanodes))
            )
            for victim in group:
                schedule.crash(
                    at, victim, restart_after_ms=crash_restart_ms
                )
        elif cls == "partition":
            k = 2 if len(datanodes) >= 4 else 1
            victims = rng.sample(datanodes, k)
            rest = [
                a
                for a in (*masters, *datanodes, *others)
                if a not in victims
            ]
            schedule.partition(
                at,
                tuple(victims),
                tuple(rest),
                heal_after_ms=partition_heal_ms,
            )
        elif cls == "slowdown":
            victim = rng.choice(masters)
            schedule.slowdown(
                at,
                victim,
                step_cost_ms=slowdown_cost_ms,
                duration_ms=slowdown_duration_ms,
            )
        elif cls == "amnesia":
            victim = rng.choice(datanodes)
            schedule.amnesia(at, victim, restart_after_ms=amnesia_restart_ms)
        elif cls == "restart-storm":
            group = rng.sample(datanodes, min(storm_count, len(datanodes)))
            for i, victim in enumerate(group):
                schedule.crash(
                    at + i * storm_gap_ms,
                    victim,
                    restart_after_ms=storm_restart_ms,
                    label="restart-storm",
                )
        else:
            raise ValueError(f"unknown fault class {cls!r}")
        at += slot_ms
    return schedule
