"""Failure-schedule helpers for availability experiments.

The paper's availability revision (§Paxos NameNode) is evaluated by
killing masters mid-run; this module expresses those scenarios as
declarative schedules applied to a :class:`~repro.sim.cluster.Cluster`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..transport.base import Address
from ..transport.base_cluster import BaseCluster


@dataclass(frozen=True)
class CrashEvent:
    at_ms: int
    address: Address
    restart_after_ms: Optional[int] = None  # None = stays dead


@dataclass(frozen=True)
class PartitionEvent:
    at_ms: int
    groups: tuple[tuple[Address, ...], ...]
    heal_after_ms: Optional[int] = None


@dataclass
class FailureSchedule:
    """A reproducible list of crash/partition events."""

    crashes: list[CrashEvent] = field(default_factory=list)
    partitions: list[PartitionEvent] = field(default_factory=list)

    def crash(
        self, at_ms: int, address: Address, restart_after_ms: Optional[int] = None
    ) -> "FailureSchedule":
        self.crashes.append(CrashEvent(at_ms, address, restart_after_ms))
        return self

    def partition(
        self,
        at_ms: int,
        *groups: tuple[Address, ...],
        heal_after_ms: Optional[int] = None,
    ) -> "FailureSchedule":
        self.partitions.append(
            PartitionEvent(at_ms, tuple(tuple(g) for g in groups), heal_after_ms)
        )
        return self

    def apply(self, cluster: BaseCluster) -> None:
        """Install every event onto the cluster's clock (any backend)."""
        for ev in self.crashes:
            cluster.crash_at(ev.at_ms, ev.address)
            if ev.restart_after_ms is not None:
                cluster.restart_at(ev.at_ms + ev.restart_after_ms, ev.address)
        for ev in self.partitions:
            groups = ev.groups
            cluster.schedule_at(
                ev.at_ms, lambda g=groups: cluster.partition(*g)
            )
            if ev.heal_after_ms is not None:
                cluster.schedule_at(ev.at_ms + ev.heal_after_ms, cluster.heal)


def random_crash_schedule(
    addresses: list[Address],
    horizon_ms: int,
    crash_count: int,
    seed: int = 0,
    restart_after_ms: Optional[int] = None,
) -> FailureSchedule:
    """Crash ``crash_count`` distinct random nodes at random times —
    the workhorse of fault-injection tests."""
    rng = random.Random(seed)
    schedule = FailureSchedule()
    victims = rng.sample(addresses, min(crash_count, len(addresses)))
    for victim in victims:
        at = rng.randrange(1, max(2, horizon_ms))
        schedule.crash(at, victim, restart_after_ms=restart_after_ms)
    return schedule
