"""Discrete-event simulation substrate.

Replaces the paper's EC2 testbed: a deterministic virtual-time event loop
(:class:`Simulator`), a message network with latency/loss/partitions
(:class:`Network`), node abstractions (:class:`Process`,
:class:`OverlogProcess`) and the top-level :class:`Cluster`.

All time is integer milliseconds; all randomness flows from seeds, so any
distributed execution in this repository can be replayed exactly.
"""

from .cluster import Cluster
from .failure import (
    CrashEvent,
    FailureSchedule,
    PartitionEvent,
    random_crash_schedule,
)
from .network import Address, LatencyModel, Message, Network, NetworkStats
from .node import OverlogProcess, Process
from .simulator import EventHandle, Simulator

__all__ = [
    "Address",
    "Cluster",
    "CrashEvent",
    "EventHandle",
    "FailureSchedule",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "OverlogProcess",
    "PartitionEvent",
    "Process",
    "Simulator",
    "random_crash_schedule",
]
