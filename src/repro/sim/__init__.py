"""Discrete-event simulation substrate.

Replaces the paper's EC2 testbed: a deterministic virtual-time event loop
(:class:`Simulator`), node abstractions (:class:`Process`,
:class:`OverlogProcess`) and the top-level :class:`Cluster`.  The
network itself lives in :mod:`repro.transport` — the simulator backend
is :class:`~repro.transport.sim_transport.SimTransport`, re-exported
here with the transport contract (:class:`Transport`,
:class:`Envelope`, :class:`TransportStats`) for convenience; ``Network``
and ``NetworkStats`` remain as historical aliases.

All time is integer milliseconds; all randomness flows from seeds, so any
distributed execution in this repository can be replayed exactly.
"""

from ..transport import (
    Address,
    Envelope,
    LatencyModel,
    NetworkStats,
    Outbox,
    SimTransport,
    Transport,
    TransportStats,
)
from .cluster import Cluster
from .failure import (
    FAULT_CLASSES,
    CrashEvent,
    FailureSchedule,
    PartitionEvent,
    SlowdownEvent,
    generate_campaign,
    random_crash_schedule,
)
from .network import Message, Network
from .node import OverlogProcess, Process
from .simulator import EventHandle, Simulator

__all__ = [
    "Address",
    "Cluster",
    "CrashEvent",
    "Envelope",
    "EventHandle",
    "FAULT_CLASSES",
    "FailureSchedule",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "Outbox",
    "OverlogProcess",
    "PartitionEvent",
    "Process",
    "SimTransport",
    "Simulator",
    "SlowdownEvent",
    "Transport",
    "TransportStats",
    "generate_campaign",
    "random_crash_schedule",
]
