"""Abstract syntax tree for the Overlog dialect.

The dialect follows P2/JOL conventions:

* relation and function names start with a lowercase letter,
* variables start with an uppercase letter (``_`` is an anonymous variable),
* ``@Var`` in an atom marks the location-specifier column,
* rule heads may contain aggregate specs such as ``count<X>``,
* body elements are positive atoms, ``notin``-negated atoms, assignments
  (``X := expr``) and boolean conditions.

Every node is an immutable dataclass so that programs can be hashed,
compared, and safely rewritten by the metaprogramming layer
(:mod:`repro.monitoring.rewrite`), which produces new trees instead of
mutating existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Optional, Union

AGGREGATE_FUNCS = (
    "count",
    "sum",
    "min",
    "max",
    "avg",
    "list",
    # Sketch-backed approximate aggregates (docs/TELEMETRY.md):
    # percentile<X> folds numbers/t-digest payloads into a merged digest
    # payload; count_distinct_approx<X> estimates distinct X via HLL.
    "percentile",
    "count_distinct_approx",
)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A variable reference.  ``_`` is the anonymous wildcard."""

    name: str

    @property
    def is_wildcard(self) -> bool:
        return self.name == "_"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal constant: int, float, str, bool or None (``nil``)."""

    value: Union[int, float, str, bool, None]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return '"' + self.value + '"'
        if self.value is None:
            return "nil"
        return str(self.value)


@dataclass(frozen=True)
class FuncCall:
    """A call to a builtin function, e.g. ``f_concat_path(Base, Name)``."""

    name: str
    args: tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class BinOp:
    """A binary operation over two sub-expressions."""

    op: str  # + - * / % == != < <= > >= && ||
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp:
    """A unary operation (numeric negation or boolean ``!``)."""

    op: str  # - !
    operand: "Expr"

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


Expr = Union[Var, Const, FuncCall, BinOp, UnOp]


@dataclass(frozen=True)
class AggSpec:
    """An aggregate head argument, e.g. ``count<ChunkId>``.

    ``var`` may be a wildcard for ``count<*>`` (count of groups rows).
    """

    func: str  # one of AGGREGATE_FUNCS
    var: Var

    def __str__(self) -> str:
        return f"{self.func}<{self.var}>"


HeadArg = Union[Expr, AggSpec]


# ---------------------------------------------------------------------------
# Atoms and body elements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A predicate occurrence ``name(arg0, ..., argN)``.

    ``loc`` gives the index of the argument carrying the ``@`` location
    specifier, or ``None`` for purely local atoms.
    """

    name: str
    args: tuple[HeadArg, ...]
    loc: Optional[int] = None

    @property
    def arity(self) -> int:
        return len(self.args)

    def arg_str(self, i: int) -> str:
        prefix = "@" if self.loc == i else ""
        return prefix + str(self.args[i])

    def __str__(self) -> str:
        inner = ", ".join(self.arg_str(i) for i in range(len(self.args)))
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class NotIn:
    """A negated body atom: ``notin name(args)``."""

    atom: Atom

    def __str__(self) -> str:
        return f"notin {self.atom}"


@dataclass(frozen=True)
class Assign:
    """A body assignment ``Var := expr``; binds ``var`` when evaluated."""

    var: Var
    expr: Expr

    def __str__(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass(frozen=True)
class Cond:
    """A body condition; the expression must evaluate truthy to keep the
    candidate binding."""

    expr: Expr

    def __str__(self) -> str:
        return str(self.expr)


BodyElem = Union[Atom, NotIn, Assign, Cond]


# ---------------------------------------------------------------------------
# Rules and declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """A single Overlog rule.

    ``delete`` marks deletion rules (``delete head :- body``) whose derived
    head tuples are *removed* from the head table at the end of the
    timestep instead of inserted.

    ``deferred`` marks ``@next`` rules (``head(...)@next :- body``): the
    derived tuples take effect at the start of the *next* timestep instead
    of immediately.  Deferred rules contribute no edges to the stratification
    graph — they are how Overlog state-machine programs break
    read-check/update cycles (Dedalus-style temporal stratification).
    """

    name: str
    head: Atom
    body: tuple[BodyElem, ...]
    delete: bool = False
    deferred: bool = False

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(a, AggSpec) for a in self.head.args)

    # The evaluator walks a rule's positive/negated atoms on every
    # semi-naive pass; cached_property writes straight into __dict__, which
    # frozen dataclasses permit, and the cache never leaks into
    # equality/hashing (those use the declared fields only).
    @cached_property
    def positives(self) -> tuple[Atom, ...]:
        return tuple(e for e in self.body if isinstance(e, Atom))

    @cached_property
    def negatives(self) -> tuple[Atom, ...]:
        return tuple(e.atom for e in self.body if isinstance(e, NotIn))

    def positive_atoms(self) -> tuple[Atom, ...]:
        return self.positives

    def negated_atoms(self) -> tuple[Atom, ...]:
        return self.negatives

    def __str__(self) -> str:
        kw = "delete " if self.delete else ""
        suffix = "@next" if self.deferred else ""
        body = ", ".join(str(e) for e in self.body)
        return f"{self.name} {kw}{self.head}{suffix} :- {body};"


@dataclass(frozen=True)
class TableDecl:
    """``define(name, keys(...), {Type, ...});`` — a materialized table.

    ``keys`` lists primary-key column indices.  An empty key tuple means the
    whole row is the key (set semantics).  ``types`` are informational
    strings (``Int``, ``Str``, ...) checked loosely on insert.
    """

    name: str
    keys: tuple[int, ...]
    types: tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.types)

    def __str__(self) -> str:
        keys = ", ".join(map(str, self.keys))
        types = ", ".join(self.types)
        return f"define({self.name}, keys({keys}), {{{types}}});"


@dataclass(frozen=True)
class EventDecl:
    """``event(name, arity);`` — a transient (non-materialized) relation."""

    name: str
    arity: int

    def __str__(self) -> str:
        return f"event({self.name}, {self.arity});"


@dataclass(frozen=True)
class TimerDecl:
    """``timer(name, period_ms);`` — a periodic event source.

    Each firing inserts a tuple ``name(fire_count, now_ms)`` at the node.
    """

    name: str
    period_ms: int

    def __str__(self) -> str:
        return f"timer({self.name}, {self.period_ms});"


Decl = Union[TableDecl, EventDecl, TimerDecl]


@dataclass(frozen=True)
class Program:
    """A parsed Overlog program: declarations plus rules."""

    name: str
    decls: tuple[Decl, ...] = ()
    rules: tuple[Rule, ...] = ()

    def tables(self) -> tuple[TableDecl, ...]:
        return tuple(d for d in self.decls if isinstance(d, TableDecl))

    def events(self) -> tuple[EventDecl, ...]:
        return tuple(d for d in self.decls if isinstance(d, EventDecl))

    def timers(self) -> tuple[TimerDecl, ...]:
        return tuple(d for d in self.decls if isinstance(d, TimerDecl))

    def rule(self, name: str) -> Rule:
        for r in self.rules:
            if r.name == name:
                return r
        raise KeyError(name)

    def with_rules(self, rules: tuple[Rule, ...]) -> "Program":
        """Return a copy of this program with a different rule set (used by
        metaprogramming rewrites)."""
        return replace(self, rules=rules)

    def merged(self, other: "Program") -> "Program":
        """Union of two programs (declarations deduplicated by identity)."""
        decls = list(self.decls)
        for d in other.decls:
            if d not in decls:
                decls.append(d)
        return Program(
            name=f"{self.name}+{other.name}",
            decls=tuple(decls),
            rules=self.rules + other.rules,
        )

    def __str__(self) -> str:
        parts = [f"program {self.name};"]
        parts += [str(d) for d in self.decls]
        parts += [str(r) for r in self.rules]
        return "\n".join(parts)


def expr_vars(e: Union[Expr, AggSpec]) -> set[str]:
    """Collect the non-wildcard variable names referenced by an expression."""
    out: set[str] = set()
    _collect_vars(e, out)
    return out


def _collect_vars(e: Union[Expr, AggSpec], out: set[str]) -> None:
    if isinstance(e, Var):
        if not e.is_wildcard:
            out.add(e.name)
    elif isinstance(e, AggSpec):
        _collect_vars(e.var, out)
    elif isinstance(e, FuncCall):
        for a in e.args:
            _collect_vars(a, out)
    elif isinstance(e, BinOp):
        _collect_vars(e.left, out)
        _collect_vars(e.right, out)
    elif isinstance(e, UnOp):
        _collect_vars(e.operand, out)


def atom_vars(atom: Atom) -> set[str]:
    """Collect all non-wildcard variables in an atom's arguments."""
    out: set[str] = set()
    for a in atom.args:
        _collect_vars(a, out)
    return out


def rule_vars(rule: Rule) -> set[str]:
    """Collect all non-wildcard variables appearing anywhere in a rule."""
    out: set[str] = set()
    for a in rule.head.args:
        _collect_vars(a, out)
    for e in rule.body:
        if isinstance(e, Atom):
            out |= atom_vars(e)
        elif isinstance(e, NotIn):
            out |= atom_vars(e.atom)
        elif isinstance(e, Assign):
            out.add(e.var.name)
            _collect_vars(e.expr, out)
        elif isinstance(e, Cond):
            _collect_vars(e.expr, out)
    return out
