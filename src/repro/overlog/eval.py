"""Stratified, semi-naive fixpoint evaluation of Overlog rules.

One :class:`Evaluator` instance belongs to one runtime (one simulated node)
and executes *timesteps* in the JOL style:

1. the caller hands it the timestep's inbox (network tuples, timer firings,
   injected client events),
2. rules run to fixpoint, stratum by stratum; insertions into materialized
   tables are visible immediately, primary-key collisions replace,
3. effects are returned: remote sends (head atoms whose ``@`` location is
   not the local address), deletions derived by ``delete`` rules (applied
   at the end of the step), and the set of freshly derived tuples
   (consumed by watchers).

Event-relation tuples live only inside the step and are discarded when it
ends.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .ast import (
    AggSpec,
    Assign,
    Atom,
    BinOp,
    Cond,
    Const,
    Expr,
    FuncCall,
    NotIn,
    Rule,
    UnOp,
    Var,
)
from .catalog import Catalog, Row
from .errors import CatalogError, EvaluationError
from .functions import FunctionLibrary
from .plan import PlanCache, aggregate as _aggregate, compile_expr
from .strata import compute_strata, rules_by_stratum

# A fixpoint that runs longer than this many semi-naive iterations within a
# single stratum is assumed to be oscillating through primary-key updates.
MAX_FIXPOINT_ITERATIONS = 10_000

Env = dict[str, Any]


@dataclass
class StepResult:
    """Effects of one timestep."""

    sends: list[tuple[Any, str, Row]] = field(default_factory=list)
    deletions: list[tuple[str, Row]] = field(default_factory=list)
    deferred_inserts: list[tuple[str, Row]] = field(default_factory=list)
    deferred_deletes: list[tuple[str, Row]] = field(default_factory=list)
    fired: dict[str, list[Row]] = field(default_factory=dict)
    derivation_count: int = 0
    # (stratum index, semi-naive passes run) for each stratum that had
    # work this step — the fixpoint-depth profile the metrics layer reads.
    stratum_iterations: list[tuple[int, int]] = field(default_factory=list)

    def fired_rows(self, relation: str) -> list[Row]:
        return self.fired.get(relation, [])


def eval_expr(expr: Expr, env: Env, functions: FunctionLibrary) -> Any:
    """Evaluate an expression under a variable binding environment."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        if expr.is_wildcard:
            raise EvaluationError("wildcard _ used where a value is required")
        try:
            return env[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {expr.name}") from None
    if isinstance(expr, FuncCall):
        args = tuple(eval_expr(a, env, functions) for a in expr.args)
        return functions.call(expr.name, args)
    if isinstance(expr, UnOp):
        val = eval_expr(expr.operand, env, functions)
        if expr.op == "-":
            return -val
        if expr.op == "!":
            return not val
        raise EvaluationError(f"unknown unary operator {expr.op}")
    if isinstance(expr, BinOp):
        return _eval_binop(expr, env, functions)
    raise EvaluationError(f"cannot evaluate {expr!r}")


def _eval_binop(expr: BinOp, env: Env, functions: FunctionLibrary) -> Any:
    op = expr.op
    if op == "&&":
        return bool(
            eval_expr(expr.left, env, functions)
            and eval_expr(expr.right, env, functions)
        )
    if op == "||":
        return bool(
            eval_expr(expr.left, env, functions)
            or eval_expr(expr.right, env, functions)
        )
    left = eval_expr(expr.left, env, functions)
    right = eval_expr(expr.right, env, functions)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        # Integer operands use integer division (Overlog is int-heavy:
        # chunk offsets, slot counts); any float operand gives float math.
        if isinstance(left, int) and isinstance(right, int):
            return left // right
        return left / right
    if op == "%":
        return left % right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise EvaluationError(f"unknown operator {op}")


def match_atom(
    atom: Atom, row: Row, env: Env, functions: FunctionLibrary
) -> Optional[Env]:
    """Try to unify ``row`` with ``atom`` under ``env``.

    Returns the extended environment, or None when the row does not match.
    Unbound variables bind to the row value; bound variables and constant
    expressions must compare equal.
    """
    if len(row) != len(atom.args):
        return None
    new_env: Optional[Env] = None
    for arg, value in zip(atom.args, row):
        if isinstance(arg, Var):
            if arg.is_wildcard:
                continue
            current = env if new_env is None else new_env
            if arg.name in current:
                if current[arg.name] != value:
                    return None
            else:
                if new_env is None:
                    new_env = dict(env)
                new_env[arg.name] = value
        else:
            expected = eval_expr(arg, env if new_env is None else new_env, functions)
            if expected != value:
                return None
    return env if new_env is None else new_env


class Evaluator:
    """Executes timesteps for a fixed rule set over a catalog."""

    def __init__(
        self,
        rules: tuple[Rule, ...],
        catalog: Catalog,
        functions: FunctionLibrary,
        local_address: Any,
        naive: bool = False,
        compile_plans: bool = True,
        compile_mode: Optional[str] = None,
    ):
        self.catalog = catalog
        self.functions = functions
        self.local_address = local_address
        # Naive mode re-evaluates every rule against the full database on
        # every iteration (no delta restriction, no cross-step activity
        # gating).  It exists to validate the semi-naive optimization
        # (results must coincide for deterministic programs) and to
        # measure what the optimization buys (ablation A1/A2).  It is NOT
        # sound for rules calling nondeterministic builtins (f_uid etc.),
        # which rely on exactly-once firing.
        self.naive = naive
        # Evaluator tiers, fastest first:
        #
        # * ``"source"`` (default): plans additionally carry per-rule
        #   Python functions generated by :mod:`repro.overlog.codegen`
        #   and exec-compiled at install time — flat nested loops with no
        #   per-step environment lists.  Rules the generator cannot prove
        #   equivalent for (see codegen.Unsupported) silently run on the
        #   closure tier.
        # * ``"closure"``: the compiled step-pipeline plans of
        #   repro.overlog.plan alone.
        # * ``"interpreter"``: the AST-walking reference path, kept as
        #   what the differential tests (and the A1 ablation) compare
        #   against.  Naive mode always interprets — it IS the reference
        #   semantics.
        #
        # ``compile_mode`` picks a tier explicitly and wins over the
        # legacy ``compile_plans`` flag; ``compile_plans=False`` is the
        # historical spelling of ``compile_mode="interpreter"``.
        if compile_mode is not None and compile_mode not in (
            "source", "closure", "interpreter"
        ):
            raise ValueError(
                f"compile_mode must be 'source', 'closure' or "
                f"'interpreter', got {compile_mode!r}"
            )
        if naive:
            mode = None
        elif compile_mode is not None:
            mode = None if compile_mode == "interpreter" else compile_mode
        elif compile_plans:
            mode = "source"
        else:
            mode = None
        self.compile_mode = mode if mode is not None else "interpreter"
        self.planner: Optional[PlanCache] = (
            PlanCache(catalog, functions, mode=mode) if mode is not None else None
        )
        # Optional observability hooks (attach_ledger / attach_profiler):
        # a provenance DerivationLedger recording every head derivation,
        # and a sampled per-plan profiler.  Both None (off) by default —
        # the hot path pays only a None check.
        self._ledger = None
        self._profiler = None
        self._cur_stratum = 0
        self._cur_pass = 0
        # (rel, row) -> rule name, for tombstoning provenance entries
        # with the deleting rule when deletions are applied.
        self._delete_rules: dict[tuple[str, Row], str] = {}
        self._deferred_delete_rules: dict[tuple[str, Row], str] = {}
        # Per-rule witness-reconstruction recipes (provenance): how to
        # rebuild each positive body atom's matched row from a final body
        # environment.  Keyed by id(rule); cleared on program swap.
        self._body_recipes: dict[int, tuple] = {}
        self._install_rules(rules)
        # Mutable per-step state.
        self._event_pool: dict[str, set[Row]] = {}
        self._result: StepResult = StepResult()
        self._seen_sends: set[tuple[Any, str, Row]] = set()
        self._pending_deletes: set[tuple[str, Row]] = set()
        self._seen_deferred: set[tuple[bool, str, Row]] = set()
        # Incremental cross-step evaluation.  Monotone growth is handled
        # row-wise: every insertion this step lands in ``_accumulated`` and
        # is delta-joined into each stratum exactly once.  Non-monotone
        # changes (deletions, primary-key displacement, out-of-band
        # installs) cannot be handled by insert deltas — relations they
        # touch go into ``_full_dirty_pending`` and every rule reading them
        # is fully re-evaluated on the next step.  Everything starts fully
        # dirty so bootstrap facts are seen.
        self._full_dirty_pending: set[str] = {
            *catalog.tables,
            *catalog.events,
            *catalog.timers,
        }
        self._full_dirty: set[str] = set()
        self._accumulated: dict[str, set[Row]] = {}
        self._active: set[str] = set()
        # Always-on profiling counters (cumulative over the runtime's
        # life): head derivations staged per rule, and semi-naive passes
        # per stratum.  Plain dicts — one lookup per staged tuple — so the
        # cost stays far below the joins that produced the tuple.
        self.rule_fires: dict[str, int] = {}
        self.stratum_iteration_totals: dict[int, int] = {}

    # -- rule installation ---------------------------------------------------

    def _install_rules(self, rules: tuple[Rule, ...]) -> None:
        """Validate, stratify, and compile a rule set (install time).

        Join plans for every rule × delta-position are compiled here,
        once, so the per-pass hot path never re-derives index choices or
        re-walks expression ASTs.
        """
        self._validate(rules)
        strata = compute_strata(rules)
        self.strata = strata
        self.stratum_buckets = rules_by_stratum(rules, strata)
        self.rules = rules
        self._body_recipes.clear()
        if self.planner is not None:
            self.planner.invalidate()
            self.planner.compile_program(rules)
        # Per-stratum execution structures, resolved once at install time
        # so the per-pass hot loop touches no rule metadata: the
        # normal/aggregate split (``is_aggregate`` walks the head args),
        # each rule's compiled plans, and a delta dispatch map — relation
        # name -> the (rule-index, position, rule, delta-plan) tuples
        # whose positive atom at ``position`` reads it.  The semi-naive
        # inner loop consults the map instead of scanning every rule ×
        # position per iteration; candidates are sorted by (rule-index,
        # position) at use, reproducing the exact staging order of the
        # per-rule loop it replaces.
        planner = self.planner
        self._stratum_exec: list[dict[str, Any]] = []
        for bucket in self.stratum_buckets:
            normal = [r for r in bucket if not r.is_aggregate]
            aggs = [r for r in bucket if r.is_aggregate]
            plans_of = (
                {id(r): planner.plans_for(r) for r in bucket}
                if planner is not None
                else {}
            )
            dispatch: dict[str, list] = {}
            readers: dict[str, list[int]] = {}
            for ridx, rule in enumerate(normal):
                rp = plans_of.get(id(rule))
                for pos, atom in enumerate(rule.positives):
                    # Predicate-dispatch hint: a constant column in the
                    # delta atom (e.g. the op-type string of request
                    # rules).  The per-pass loop buckets the delta rows by
                    # that column once and skips rules whose constant has
                    # no matching rows — the plan itself re-checks the
                    # constant, so the hint is purely a filter.
                    ccol = cval = None
                    for col, arg in enumerate(atom.args):
                        if isinstance(arg, Const):
                            try:
                                hash(arg.value)
                            except TypeError:
                                continue
                            ccol, cval = col, arg.value
                            break
                    dispatch.setdefault(atom.name, []).append(
                        (ridx, pos, rule,
                         None if rp is None else rp.by_pos[pos],
                         ccol, cval)
                    )
                seen_rels: set[str] = set()
                for atom in (*rule.positives, *rule.negatives):
                    if atom.name not in seen_rels:
                        seen_rels.add(atom.name)
                        readers.setdefault(atom.name, []).append(ridx)
            # Aggregate entries carry event-atom constant hints: when an
            # aggregate body reads an event relation with a constant
            # column (the request op-type pattern) and this step's pool
            # has no matching event, the body cannot bind and the whole
            # evaluation is skipped.
            agg_entries = []
            for r in aggs:
                hints = []
                for atom in r.positives:
                    if self.catalog.is_materialized(atom.name):
                        continue
                    for col, arg in enumerate(atom.args):
                        if isinstance(arg, Const):
                            try:
                                hash(arg.value)
                            except TypeError:
                                continue
                            hints.append((atom.name, col, arg.value))
                            break
                agg_entries.append(
                    (r, plans_of.get(id(r)), tuple(hints))
                )
            self._stratum_exec.append({
                "normal": [(r, plans_of.get(id(r))) for r in normal],
                "aggs": agg_entries,
                "normal_rules": normal,
                "agg_rules": aggs,
                "dispatch": dispatch,
                # relation -> rule indexes reading it anywhere (positive
                # or negated) — the full-dirty fan-out set.
                "readers": readers,
                # Every relation any rule in the stratum reads (positive,
                # negated, or inside an aggregate body): when none of them
                # is active this step, the stratum cannot derive anything
                # and its fixpoint is skipped outright.
                "read_rels": frozenset(
                    atom.name
                    for r in bucket
                    for atom in (*r.positives, *r.negatives)
                ),
            })

    def add_rule(self, rule: Rule) -> None:
        """Install one additional rule (invalidates the plan cache)."""
        self.set_rules(self.rules + (rule,))

    def set_rules(self, rules: tuple[Rule, ...]) -> None:
        """Swap in a new rule set (program swap).

        The plan cache is invalidated and rebuilt, and every relation the
        new rules read is marked fully dirty so the next step re-derives
        against existing facts.
        """
        self._install_rules(rules)
        for rule in rules:
            for atom in (*rule.positives, *rule.negatives):
                self._full_dirty_pending.add(atom.name)

    def explain(self, rule_name: Optional[str] = None) -> str:
        """Render the compiled join plans as text (see docs/EVALUATOR.md),
        annotated with each rule's cumulative fire count so the output
        cross-references the profiler's hot-rules report by rule id."""
        if self.planner is None:
            return "(no compiled plans: interpreted evaluator)"
        return self.planner.explain(rule_name, rule_fires=self.rule_fires)

    # -- observability hooks -------------------------------------------------

    def attach_ledger(self, ledger) -> None:
        """Attach a provenance :class:`DerivationLedger`.  Requires the
        compiled evaluator — lineage is tracked by the plan steps."""
        if self.planner is None:
            raise EvaluationError(
                "provenance requires the compiled evaluator "
                "(compile_plans=True and naive=False)"
            )
        ledger.resolver = self._witness_body
        self._ledger = ledger

    def attach_profiler(self, profiler) -> None:
        """Attach a sampled :class:`PlanProfiler` (no-op for the
        interpreted evaluator, which has no plans to time).  The plan
        cache keeps the reference so a program swap flushes stale
        (rule, tag)-keyed stats along with the plans."""
        self._profiler = profiler
        if self.planner is not None:
            self.planner.profiler = profiler

    # -- validation ---------------------------------------------------------

    def _validate(self, rules: tuple[Rule, ...]) -> None:
        for rule in rules:
            for atom in (rule.head, *rule.positive_atoms(), *rule.negated_atoms()):
                if not self.catalog.is_declared(atom.name):
                    raise CatalogError(
                        f"rule {rule.name}: relation {atom.name!r} is not declared"
                    )
                expected = self.catalog.arity(atom.name)
                if atom.arity != expected:
                    raise CatalogError(
                        f"rule {rule.name}: {atom.name} used with arity "
                        f"{atom.arity}, declared {expected}"
                    )
            if rule.delete:
                if not self.catalog.is_materialized(rule.head.name):
                    raise CatalogError(
                        f"rule {rule.name}: delete head {rule.head.name!r} "
                        f"must be a materialized table"
                    )
                if rule.head.loc is not None:
                    raise CatalogError(
                        f"rule {rule.name}: delete rules cannot have a "
                        f"remote location specifier"
                    )
            if rule.deferred and rule.head.loc is not None:
                raise CatalogError(
                    f"rule {rule.name}: @next rules cannot have a location "
                    f"specifier (defer locally, then send)"
                )
            if rule.head.name in self.catalog.timers:
                raise CatalogError(
                    f"rule {rule.name}: cannot derive timer relation "
                    f"{rule.head.name!r}"
                )

    # -- relation access ----------------------------------------------------

    def _rows(self, name: str) -> Iterable[Row]:
        if self.catalog.is_materialized(name):
            return self.catalog.table(name).scan()
        return list(self._event_pool.get(name, ()))

    def rows(self, name: str) -> list[Row]:
        """Public snapshot of a relation's current contents."""
        return list(self._rows(name))

    # -- timestep driver ----------------------------------------------------

    def step(
        self,
        inbox: Iterable[tuple[str, Row]],
        pre_deletes: Iterable[tuple[str, Row]] = (),
    ) -> StepResult:
        """Run one timestep with the given inbox tuples.

        ``pre_deletes`` (from last step's ``@next`` delete rules) are
        applied before the fixpoint, so this step's rules see the
        post-deletion state.
        """
        self._event_pool = {}
        self._result = StepResult()
        self._seen_sends = set()
        self._pending_deletes = set()
        self._seen_deferred = set()
        self._accumulated = {}
        self._delete_rules = {}
        deferred_reasons = self._deferred_delete_rules
        self._deferred_delete_rules = {}

        self._full_dirty = self._full_dirty_pending
        self._full_dirty_pending = set()
        self._active = set(self._full_dirty)
        for rel, row in pre_deletes:
            if self.catalog.table(rel).delete(tuple(row)):
                self._result.deletions.append((rel, tuple(row)))
                self._full_dirty.add(rel)
                self._active.add(rel)
                if self._ledger is not None:
                    by = deferred_reasons.get((rel, tuple(row)))
                    self._ledger.retract(
                        rel,
                        tuple(row),
                        f"delete@next by {by}" if by else "deleted",
                    )
        for rel, row in inbox:
            if not self.catalog.is_declared(rel):
                raise CatalogError(f"inbox tuple for undeclared relation {rel!r}")
            self._insert_local(rel, tuple(row))

        for index, bucket in enumerate(self.stratum_buckets):
            if bucket:
                self._run_stratum(index, bucket)

        # Apply deletions derived by delete rules.  The fixpoint has already
        # run, so rules reading these tables must reconsider next step.
        for rel, row in sorted(self._pending_deletes, key=repr):
            if self.catalog.table(rel).delete(row):
                self._result.deletions.append((rel, row))
                self._full_dirty_pending.add(rel)
                if self._ledger is not None:
                    by = self._delete_rules.get((rel, row))
                    self._ledger.retract(
                        rel, row, f"delete by {by}" if by else "deleted"
                    )

        self._event_pool = {}
        return self._result

    def mark_dirty(self, relation: str) -> None:
        """Record an out-of-band table mutation (e.g. a bootstrap install)
        so the next step re-evaluates rules reading ``relation``."""
        self._full_dirty_pending.add(relation)

    def _rule_is_active(self, rule: Rule) -> bool:
        for atom in rule.positives:
            if atom.name in self._active:
                return True
        for atom in rule.negatives:
            if atom.name in self._active:
                return True
        return False

    def _rule_needs_full_eval(self, rule: Rule) -> bool:
        """A rule must be fully re-evaluated when a relation it reads
        changed non-monotonically (insert deltas can't express removals)."""
        for atom in rule.positives:
            if atom.name in self._full_dirty:
                return True
        for atom in rule.negatives:
            if atom.name in self._full_dirty:
                return True
        return False

    def _insert_local(self, rel: str, row: Row) -> bool:
        """Insert a tuple locally; returns True when it is new."""
        if self.catalog.is_materialized(rel):
            res = self.catalog.table(rel).insert(row)
            if res.inserted:
                self._record_fired(rel, row)
                self._active.add(rel)
                self._add_accumulated(rel, row)
                if res.displaced is not None:
                    # A primary-key update removed a row: negation readers
                    # in earlier strata (or earlier steps) may now derive —
                    # only a full re-evaluation can find those bindings.
                    self._full_dirty.add(rel)
                    self._full_dirty_pending.add(rel)
                    if self._ledger is not None:
                        self._ledger.retract(
                            rel,
                            res.displaced,
                            "displaced by primary-key update",
                        )
            return res.inserted
        pools = self._event_pool
        pool = pools.get(rel)
        if pool is None:
            pool = pools[rel] = set()
        elif row in pool:
            return False
        pool.add(row)
        self._record_fired(rel, row)
        self._active.add(rel)
        self._add_accumulated(rel, row)
        return True

    def _add_accumulated(self, rel: str, row: Row) -> None:
        accumulated = self._accumulated
        rows = accumulated.get(rel)
        if rows is None:
            accumulated[rel] = {row}
        else:
            rows.add(row)

    def _record_fired(self, rel: str, row: Row) -> None:
        fired = self._result.fired
        rows = fired.get(rel)
        if rows is None:
            fired[rel] = [row]
        else:
            rows.append(row)
        self._result.derivation_count += 1

    # -- stratum fixpoint ---------------------------------------------------

    def _record_iterations(self, index: int, passes: int) -> None:
        self._result.stratum_iterations.append((index, passes))
        totals = self.stratum_iteration_totals
        totals[index] = totals.get(index, 0) + passes

    def _run_stratum(self, index: int, bucket: tuple[Rule, ...]) -> None:
        """Fixpoint for one stratum with exactly-once firing per binding.

        Each iteration evaluates rules against a *consistent snapshot*:
        derived head tuples are staged and dispatched only after every rule
        has been evaluated, then form the next iteration's delta.  The
        delta pass uses the textbook semi-naive split (delta at position i,
        full view before i, pre-delta view after i) so a binding involving
        several new tuples still fires exactly once.  This matters because
        builtins like ``f_uid()`` are nondeterministic: re-firing the same
        binding would mint spurious fresh identifiers.
        """
        info = self._stratum_exec[index]
        if self.naive:
            self._run_stratum_naive(
                index, info["normal_rules"], info["agg_rules"]
            )
            return

        self._cur_stratum = index
        self._cur_pass = 0
        # Idle-stratum early exit: ``_active`` is a superset of both the
        # full-dirty set and the accumulated-delta relations, so a stratum
        # reading none of it can derive nothing — skip the snapshot,
        # candidate build, and empty dispatch (most strata, most steps).
        if self._active.isdisjoint(info["read_rels"]):
            self._record_iterations(index, 1)
            return
        # With no observers attached the per-derivation dispatch in
        # ``_derive`` is pure overhead; call the generated source (or the
        # closure pipeline) directly.  Sampled/tracked runs keep the full
        # path so ledger and profiler see every execution.
        fast = (
            self.planner is not None
            and self._profiler is None
            and self._ledger is None
        )
        # Staged entries are (rule, derivations) batches where each
        # derivation is (rel, row) — or (rel, row, body_tuples) under the
        # provenance ledger's tracked execution.  Batching by rule keeps
        # the dispatch order identical while skipping one tuple
        # allocation per derived head.
        staged: list[tuple[Rule, list]] = []
        # Aggregates read only lower strata (guaranteed by stratification),
        # so one evaluation suffices; their outputs seed the delta.
        for rule, rp, hints in info["aggs"]:
            if not self._rule_is_active(rule):
                continue
            if fast:
                if hints:
                    # Event-atom constant hint: no matching event in the
                    # pool means the body cannot bind — the plan would
                    # return [] after scanning; skip the call.
                    pool_miss = False
                    for rel, col, val in hints:
                        hit = False
                        pool = self._event_pool.get(rel)
                        if pool:
                            for r in pool:
                                if len(r) > col and r[col] == val:
                                    hit = True
                                    break
                        if not hit:
                            pool_miss = True
                            break
                    if pool_miss:
                        continue
                items = rp.agg.execute(self)
            else:
                items = self._derive_aggregate(
                    rule, None if rp is None else rp.agg
                )
            if items:
                staged.append((rule, items))

        # Iteration 0: rules touching a non-monotonically changed relation
        # are fully re-evaluated; everything else is delta-joined against
        # the rows that accumulated this step (inbox plus lower strata),
        # which is what makes steady-state operations O(delta) rather than
        # O(database).  The snapshot is taken here because the stratum's
        # own loop keeps growing ``_accumulated``.  Each relation's delta
        # is materialized as a list once and shared by every rule in the
        # pass.
        # Only relations this stratum actually reads matter: the exclude
        # view is consulted solely for body atoms, all in ``read_rels``.
        # The live sets are referenced *without copying*: plan executions
        # are pure, staged insertions land only after every iteration-0
        # candidate has run, and ``acc`` is not consulted after that.
        read = info["read_rels"]
        acc = {
            rel: rows
            for rel, rows in self._accumulated.items()
            if rel in read
        }
        normal = info["normal"]
        dispatch = info["dispatch"]
        # Rules reading a non-monotonically changed relation run a full
        # evaluation (entered at pseudo-position -1); everything else is
        # delta-joined per reading position.  One merged (rule-index,
        # position) sort reproduces the rule-major staging order of the
        # all-rules loop this replaces.
        need_full: set[int] = set()
        if self._full_dirty:
            readers = info["readers"]
            for rel in self._full_dirty:
                ridxs = readers.get(rel)
                if ridxs:
                    need_full.update(ridxs)
        candidates: list[tuple] = []
        for ridx in need_full:
            rule, rp = normal[ridx]
            candidates.append(
                (ridx, -1, rule, None if rp is None else rp.full, ())
            )
        for rel, rows in acc.items():
            entries = dispatch.get(rel)
            if entries:
                rows_list = list(rows)
                buckets: dict[int, dict] = {}
                for ridx, pos, rule, plan, ccol, cval in entries:
                    if ridx in need_full:
                        continue
                    if fast and ccol is not None:
                        # Predicate dispatch: hand the rule only the
                        # delta rows matching its constant column, and
                        # skip the call entirely when there are none.
                        b = buckets.get(ccol)
                        if b is None:
                            b = buckets[ccol] = {}
                            for r in rows_list:
                                if len(r) > ccol:
                                    b.setdefault(r[ccol], []).append(r)
                        sub = b.get(cval)
                        if not sub:
                            continue
                        candidates.append((ridx, pos, rule, plan, sub))
                    else:
                        candidates.append((ridx, pos, rule, plan, rows_list))
        # Plain tuple sort: (rule-index, position) pairs are unique, so
        # comparison never reaches the Rule element.
        candidates.sort()
        for _ridx, pos, rule, plan, rows_list in candidates:
            excl = None if pos < 0 else acc
            if fast:
                fn = plan.src_execute
                if fn is not None:
                    items = fn(self, rows_list, excl)
                else:
                    items = plan.execute(self, rows_list, excl)
            elif pos < 0:
                items = self._derive(
                    rule, delta_pos=None, delta_rows=(), plan=plan
                )
            else:
                items = self._derive(rule, pos, rows_list, exclude=acc, plan=plan)
            if items:
                staged.append((rule, items))

        delta = self._apply_staged(staged)
        iterations = 0
        while delta:
            iterations += 1
            if iterations > MAX_FIXPOINT_ITERATIONS:
                raise EvaluationError(
                    "fixpoint did not converge (primary-key oscillation?)"
                )
            self._cur_pass = iterations
            staged = []
            # Only (rule, pos) pairs whose atom's relation actually has a
            # delta run this pass; sorting restores the per-rule staging
            # order the dispatch map flattened away.
            candidates: list[tuple] = []
            for rel, rows in delta.items():
                entries = dispatch.get(rel)
                if entries:
                    rows_list = list(rows)
                    buckets = {}
                    for ridx, pos, rule, plan, ccol, cval in entries:
                        if fast and ccol is not None:
                            b = buckets.get(ccol)
                            if b is None:
                                b = buckets[ccol] = {}
                                for r in rows_list:
                                    if len(r) > ccol:
                                        b.setdefault(r[ccol], []).append(r)
                            sub = b.get(cval)
                            if not sub:
                                continue
                            candidates.append((ridx, pos, rule, plan, sub))
                        else:
                            candidates.append(
                                (ridx, pos, rule, plan, rows_list)
                            )
            candidates.sort()
            for _ridx, pos, rule, plan, rows_list in candidates:
                if fast:
                    fn = plan.src_execute
                    if fn is not None:
                        items = fn(self, rows_list, delta)
                    else:
                        items = plan.execute(self, rows_list, delta)
                else:
                    items = self._derive(
                        rule, pos, rows_list, exclude=delta, plan=plan
                    )
                if items:
                    staged.append((rule, items))
            delta = self._apply_staged(staged)
        self._record_iterations(index, iterations + 1)

    # -- plan/interpreter dispatch ------------------------------------------

    def _derive(
        self,
        rule: Rule,
        delta_pos: Optional[int],
        delta_rows: list[Row],
        exclude: Optional[dict[str, set[Row]]] = None,
        plan: Any = None,
    ) -> list[tuple]:
        """Derive a non-aggregate rule's head tuples through the compiled
        plan when available, otherwise the AST-walking reference path.

        ``plan`` is the pre-resolved JoinPlan from the stratum's install-
        time execution structures; when omitted (external callers) it is
        looked up from the plan cache.  Items are ``(rel, row)``, or
        ``(rel, row, body_tuples)`` when the provenance ledger is
        attached (tracked execution).
        """
        planner = self.planner
        if planner is not None:
            if plan is None:
                plans = planner.plans_for(rule)
                plan = (
                    plans.full if delta_pos is None
                    else plans.by_pos[delta_pos]
                )
            tracked = self._ledger is not None
            prof = self._profiler
            if prof is not None:
                # Sampling decision inlined: one stat load, an increment
                # and a modulo on the un-sampled hot path.  Sampled
                # executions run the step pipeline (the profiler times
                # per-step), which produces bit-identical results to the
                # generated source, so tiers may interleave freely.
                stat = plan._prof
                if stat is None:
                    stat = prof.link(plan)
                n = stat.execs
                stat.execs = n + 1
                if n % prof.sample_every == 0:
                    return prof.run_plan(
                        plan, self, delta_rows, exclude, tracked
                    )
            if tracked:
                src = plan.src_execute_tracked
                if src is not None:
                    return src(self, delta_rows, exclude)
                return plan.execute_tracked(self, delta_rows, exclude)
            src = plan.src_execute
            if src is not None:
                return src(self, delta_rows, exclude)
            return plan.execute(self, delta_rows, exclude)
        return self._eval_rule(rule, delta_pos, delta_rows, exclude)

    def _derive_aggregate(self, rule: Rule, plan: Any = None) -> list[tuple]:
        planner = self.planner
        if planner is not None:
            if plan is None:
                plan = planner.plans_for(rule).agg
            tracked = self._ledger is not None
            prof = self._profiler
            if prof is not None:
                stat = plan._prof
                if stat is None:
                    stat = prof.link(plan)
                n = stat.execs
                stat.execs = n + 1
                if n % prof.sample_every == 0:
                    return prof.run_agg_plan(plan, self, tracked)
            if tracked:
                return plan.execute_tracked(self)
            return plan.execute(self)
        return self._eval_aggregate_rule(rule)

    def _run_stratum_naive(
        self, index: int, normal_rules: list[Rule], agg_rules: list[Rule]
    ) -> None:
        """Textbook naive fixpoint: all rules, full database, every round,
        until a round derives nothing new."""
        iterations = 0
        while True:
            iterations += 1
            if iterations > MAX_FIXPOINT_ITERATIONS:
                raise EvaluationError("naive fixpoint did not converge")
            staged: list[tuple[Rule, list]] = []
            for rule in agg_rules:
                items = self._eval_aggregate_rule(rule)
                if items:
                    staged.append((rule, items))
            for rule in normal_rules:
                items = self._eval_rule(rule, delta_pos=None, delta_rows=())
                if items:
                    staged.append((rule, items))
            if not self._apply_staged(staged):
                self._record_iterations(index, iterations)
                return

    def _apply_staged(
        self, staged: list[tuple[Rule, list]]
    ) -> dict[str, set[Row]]:
        """Dispatch buffered head tuples (batched per rule); returns the
        genuinely-new local insertions, which become the next semi-naive
        delta."""
        delta: dict[str, set[Row]] = defaultdict(set)
        fires = self.rule_fires
        dispatch = self._dispatch_head
        if self._ledger is not None:
            # Tracked items are always (rel, row, witness-env) triples.
            for rule, items in staged:
                fires[rule.name] = fires.get(rule.name, 0) + len(items)
                for rel, row, witness in items:
                    if dispatch(rule, rel, row, witness):
                        delta[rel].add(row)
            return delta
        catalog = self.catalog
        local = self.local_address
        for rule, items in staged:
            fires[rule.name] = fires.get(rule.name, 0) + len(items)
            if rule.deferred or rule.delete:
                for rel, row in items:
                    dispatch(rule, rel, row)
                continue
            # A rule's head relation is constant, so the routing checks
            # (@loc column, materialized-or-event) and the table/delta-set
            # lookups hoist out of the per-item loop; the loop body below
            # transcribes _dispatch_head + _insert_local for the
            # ledger-less case.
            rel = items[0][0]
            loc = rule.head.loc
            seen_sends = self._seen_sends
            sends = self._result.sends
            if catalog.is_materialized(rel):
                insert = catalog.table(rel).insert
                dset = None
                for _rel, row in items:
                    if loc is not None:
                        dest = row[loc]
                        if dest != local:
                            key = (dest, rel, row)
                            if key not in seen_sends:
                                seen_sends.add(key)
                                sends.append((dest, rel, row))
                            continue
                    res = insert(row)
                    if res.inserted:
                        self._record_fired(rel, row)
                        self._active.add(rel)
                        self._add_accumulated(rel, row)
                        if res.displaced is not None:
                            self._full_dirty.add(rel)
                            self._full_dirty_pending.add(rel)
                        if dset is None:
                            dset = delta[rel]
                        dset.add(row)
            else:
                pools = self._event_pool
                pool = pools.get(rel)
                dset = None
                for _rel, row in items:
                    if loc is not None:
                        dest = row[loc]
                        if dest != local:
                            key = (dest, rel, row)
                            if key not in seen_sends:
                                seen_sends.add(key)
                                sends.append((dest, rel, row))
                            continue
                    if pool is None:
                        pool = pools[rel] = set()
                    elif row in pool:
                        continue
                    pool.add(row)
                    self._record_fired(rel, row)
                    self._active.add(rel)
                    self._add_accumulated(rel, row)
                    if dset is None:
                        dset = delta[rel]
                    dset.add(row)
        return delta

    def _dispatch_head(
        self, rule: Rule, rel: str, row: Row, witness: Any = None
    ) -> bool:
        """Route a derived head tuple; returns True when it extends the
        local database (and hence must join the semi-naive delta).

        With the ledger attached, this is also where derivations are
        recorded: ``next`` for @next deferrals (at deferral time, so the
        deriving rule is known when the tuple re-enters next step),
        ``send`` for remote shipments, ``rule`` for genuinely-new local
        insertions.  ``witness`` is the final body environment the tuple
        was projected from (a tuple of them for aggregates); the body
        tuples are reconstructed from it only when an entry is actually
        recorded, so tracking costs nothing per joined row.
        """
        ledger = self._ledger
        if rule.deferred:
            key = (rule.delete, rel, row)
            if key not in self._seen_deferred:
                self._seen_deferred.add(key)
                if rule.delete:
                    self._result.deferred_deletes.append((rel, row))
                    if ledger is not None:
                        self._deferred_delete_rules[(rel, row)] = rule.name
                else:
                    self._result.deferred_inserts.append((rel, row))
                    if ledger is not None:
                        ledger.record(
                            "next", rule.name, self._cur_stratum,
                            self._cur_pass, rel, row, witness,
                            witness_rule=rule,
                        )
            return False
        if rule.delete:
            self._pending_deletes.add((rel, row))
            if ledger is not None:
                self._delete_rules[(rel, row)] = rule.name
            return False
        head = rule.head
        if head.loc is not None:
            dest = row[head.loc]
            if dest != self.local_address:
                key = (dest, rel, row)
                if key not in self._seen_sends:
                    self._seen_sends.add(key)
                    self._result.sends.append((dest, rel, row))
                    if ledger is not None:
                        ledger.record(
                            "send", rule.name, self._cur_stratum,
                            self._cur_pass, rel, row, witness,
                            dest=dest, witness_rule=rule,
                        )
                return False
        inserted = self._insert_local(rel, row)
        if inserted and ledger is not None:
            ledger.record(
                "rule", rule.name, self._cur_stratum, self._cur_pass,
                rel, row, witness, None, rule,
            )
        return inserted

    # -- witness reconstruction (provenance) ---------------------------------

    # An aggregate over thousands of bindings would otherwise record a
    # body entry per contributing tuple; cap the recorded witnesses.
    MAX_AGG_WITNESSES = 64

    def _witness_body(self, rule: Rule, witness: Any) -> tuple:
        """Body tuples ``((rel, row), ...)`` for a recorded derivation,
        rebuilt from the final body environment(s) it was projected from.

        Non-wildcard variable and constant columns are exact — they are
        the very values the join matched.  Wildcard and expression
        columns are re-resolved by probing the relation on the exact
        columns; when several rows agree on those, the first probe hit is
        recorded (a documented why-provenance restriction, see
        docs/PROVENANCE.md).
        """
        if witness is None:
            return ()
        if rule.is_aggregate:
            seen: set = set()
            out: list = []
            for env in witness[: self.MAX_AGG_WITNESSES]:
                for item in self._body_from_env(rule, env):
                    if item not in seen:
                        seen.add(item)
                        out.append(item)
            return tuple(out)
        return self._body_from_env(rule, witness)

    def _body_from_env(self, rule: Rule, env: Env) -> tuple:
        recipe = self._body_recipes.get(id(rule))
        if recipe is None:
            recipe = self._compile_body_recipe(rule)
            self._body_recipes[id(rule)] = recipe
        out = []
        for name, fns, probe in recipe:
            if probe is None:
                out.append((name, tuple(fn(env) for fn in fns)))
                continue
            arity, cols = probe
            vals = tuple(fn(env) for fn in fns)
            found = self._probe_witness_row(name, cols, vals, arity)
            if found is None:
                row: list = [None] * arity
                for col, value in zip(cols, vals):
                    row[col] = value
                found = tuple(row)
            out.append((name, found))
        return tuple(out)

    def _compile_body_recipe(self, rule: Rule) -> tuple:
        """How to rebuild each positive body atom's matched row from a
        final body environment.  Per atom: ``(name, column_fns, probe)``
        — ``probe`` is None when every column is a bound variable or a
        constant (the fns produce the full row), else ``(arity,
        exact_cols)`` with fns for the exact columns only; the wildcard/
        expression columns are re-resolved by probing the relation."""
        recipe = []
        functions = self.functions

        def exact(arg: Any) -> bool:
            return isinstance(arg, Const) or (
                isinstance(arg, Var) and not arg.is_wildcard
            )

        for atom in rule.positives:
            if all(exact(a) for a in atom.args):
                fns = tuple(compile_expr(a, functions) for a in atom.args)
                recipe.append((atom.name, fns, None))
            else:
                cols = tuple(
                    i for i, a in enumerate(atom.args) if exact(a)
                )
                fns = tuple(
                    compile_expr(atom.args[i], functions) for i in cols
                )
                recipe.append((atom.name, fns, (len(atom.args), cols)))
        return tuple(recipe)

    def _probe_witness_row(
        self, name: str, cols: tuple[int, ...], vals: tuple, arity: int
    ) -> Optional[Row]:
        """First stored row of ``name`` agreeing with the bound columns
        (used for wildcard/expression columns the env cannot name).

        Falls back to the ledger's own records when the tables miss:
        resolution is lazy, so by the time a witness is read an event
        tuple has vanished with its timestep (and a materialized row may
        have been deleted) — but its own provenance entry still names it.
        """
        if self.catalog.is_materialized(name):
            table = self.catalog.table(name)
            if cols:
                for row in table.rows_matching_cols(cols, vals):
                    return row
            else:
                for row in table.rows_list():
                    return row
        else:
            for row in self._event_pool.get(name, ()):
                if len(row) == arity and all(
                    row[c] == v for c, v in zip(cols, vals)
                ):
                    return row
        if self._ledger is not None:
            return self._ledger.find_row(name, cols, vals, arity)
        return None

    # -- single-rule evaluation ---------------------------------------------

    def _eval_rule(
        self,
        rule: Rule,
        delta_pos: Optional[int],
        delta_rows: Iterable[Row],
        exclude: Optional[dict[str, set[Row]]] = None,
    ) -> list[tuple[str, Row]]:
        """Evaluate a non-aggregate rule body; returns derived head tuples.

        When ``delta_pos`` is given, the positive atom at that index ranges
        only over ``delta_rows``; positive atoms *after* it exclude the
        current delta (``exclude``), completing the exactly-once
        semi-naive split.
        """
        envs = self._body_envs(rule, delta_pos, delta_rows, exclude)
        # ``_body_envs`` already deduplicates identical environments at
        # every atom step, and the later body elements (assignments,
        # conditions, negation) preserve distinctness — so the
        # environments arriving here are pairwise distinct and need no
        # second signature-freezing pass.  (Wildcard joins producing
        # several identical environments fire once per distinct binding,
        # which is what keeps nondeterministic builtins like f_uid from
        # minting spurious extra tuples.)
        head_name = rule.head.name
        head_args = rule.head.args
        functions = self.functions
        return [
            (
                head_name,
                tuple(eval_expr(arg, env, functions) for arg in head_args),
            )
            for env in envs
        ]

    def _body_envs(
        self,
        rule: Rule,
        delta_pos: Optional[int],
        delta_rows: Iterable[Row],
        exclude: Optional[dict[str, set[Row]]] = None,
    ) -> list[Env]:
        envs: list[Env] = [{}]
        pos = 0
        for elem in rule.body:
            if not envs:
                return []
            if isinstance(elem, Atom):
                rows: Optional[list[Row]] = None
                index_plan: Optional[tuple[int, Any]] = None
                if pos == delta_pos:
                    # Callers pass an already-materialized list (shared
                    # across every rule in the pass); avoid re-copying it
                    # here, on the hottest call path.
                    rows = (
                        delta_rows
                        if isinstance(delta_rows, list)
                        else list(delta_rows)
                    )
                elif (
                    delta_pos is not None
                    and pos > delta_pos
                    and exclude
                    and elem.name in exclude
                ):
                    banned = exclude[elem.name]
                    rows = [
                        r for r in self._rows(elem.name) if r not in banned
                    ]
                else:
                    # Bound-column join: if some argument is a constant or
                    # an already-bound variable, probe the table's hash
                    # index instead of scanning.  The bound-variable set is
                    # identical across envs at a given body position, so
                    # one plan serves every env.
                    index_plan = self._index_plan(elem, envs)
                    if index_plan is None:
                        rows = list(self._rows(elem.name))
                new_envs: list[Env] = []
                # Wildcard columns can match many rows onto the *same*
                # binding; dedupe eagerly so later (possibly
                # nondeterministic) assignments fire once per binding.
                seen: set[frozenset] = set()
                table = (
                    self.catalog.table(elem.name)
                    if index_plan is not None
                    else None
                )
                for env in envs:
                    if index_plan is not None:
                        column, arg = index_plan
                        value = (
                            arg.value
                            if isinstance(arg, Const)
                            else env[arg.name]
                        )
                        candidate_rows = table.rows_matching(column, value)
                    else:
                        candidate_rows = rows
                    for row in candidate_rows:
                        matched = match_atom(elem, row, env, self.functions)
                        if matched is not None:
                            signature = frozenset(matched.items())
                            if signature not in seen:
                                seen.add(signature)
                                new_envs.append(matched)
                envs = new_envs
                pos += 1
            elif isinstance(elem, NotIn):
                neg_plan = self._index_plan(elem.atom, envs)
                neg_table = (
                    self.catalog.table(elem.atom.name)
                    if neg_plan is not None
                    else None
                )
                neg_rows = (
                    None if neg_plan is not None
                    else list(self._rows(elem.atom.name))
                )
                kept: list[Env] = []
                for env in envs:
                    if neg_plan is not None:
                        column, arg = neg_plan
                        value = (
                            arg.value
                            if isinstance(arg, Const)
                            else env[arg.name]
                        )
                        candidates = neg_table.rows_matching(column, value)
                    else:
                        candidates = neg_rows
                    if not any(
                        match_atom(elem.atom, row, env, self.functions)
                        is not None
                        for row in candidates
                    ):
                        kept.append(env)
                envs = kept
            elif isinstance(elem, Assign):
                new_envs = []
                for env in envs:
                    value = eval_expr(elem.expr, env, self.functions)
                    if elem.var.name in env:
                        if env[elem.var.name] == value:
                            new_envs.append(env)
                    else:
                        extended = dict(env)
                        extended[elem.var.name] = value
                        new_envs.append(extended)
                envs = new_envs
            elif isinstance(elem, Cond):
                envs = [
                    env
                    for env in envs
                    if eval_expr(elem.expr, env, self.functions)
                ]
            else:  # pragma: no cover - parser prevents this
                raise EvaluationError(f"unknown body element {elem!r}")
        return envs

    def _index_plan(
        self, atom: Atom, envs: list[Env]
    ) -> Optional[tuple[int, Any]]:
        """Pick a column of ``atom`` usable as an index probe: a constant
        argument, or a variable bound by the envs' shared prefix.  Returns
        (column, arg) or None (then the caller scans)."""
        if not envs or not self.catalog.is_materialized(atom.name):
            return None
        bound = envs[0].keys()
        for column, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                return column, arg
            if isinstance(arg, Var) and not arg.is_wildcard and arg.name in bound:
                return column, arg
        return None

    # -- aggregation ---------------------------------------------------------

    def _eval_aggregate_rule(self, rule: Rule) -> list[tuple[str, Row]]:
        envs = self._body_envs(rule, delta_pos=None, delta_rows=())
        head = rule.head
        group_positions = [
            i for i, a in enumerate(head.args) if not isinstance(a, AggSpec)
        ]
        agg_positions = [i for i, a in enumerate(head.args) if isinstance(a, AggSpec)]

        # Bag aggregation over distinct *bindings* (SQL semantics): the
        # body evaluator already deduplicates identical environments, so
        # two different bindings contributing the same value both count —
        # e.g. sum of chunk sizes where several chunks are equally large.
        groups: dict[Row, list[Row]] = defaultdict(list)
        for env in envs:
            key = tuple(
                eval_expr(head.args[i], env, self.functions)
                for i in group_positions
            )
            agg_values = []
            for i in agg_positions:
                spec = head.args[i]
                assert isinstance(spec, AggSpec)
                if spec.var.is_wildcard:
                    agg_values.append(None)  # count<*>: one per binding
                else:
                    agg_values.append(eval_expr(spec.var, env, self.functions))
            groups[key].append(tuple(agg_values))

        out: list[tuple[str, Row]] = []
        for key, value_rows in groups.items():
            row: list[Any] = [None] * len(head.args)
            for slot, i in enumerate(group_positions):
                row[i] = key[slot]
            for slot, i in enumerate(agg_positions):
                spec = head.args[i]
                assert isinstance(spec, AggSpec)
                if spec.var.is_wildcard:
                    row[i] = len(value_rows)
                    continue
                values = [vr[slot] for vr in value_rows]
                row[i] = _aggregate(spec.func, values)
            out.append((head.name, tuple(row)))
        return out
