"""Exception hierarchy for the Overlog runtime.

All engine-raised errors derive from :class:`OverlogError` so callers can
catch a single type at the public-API boundary.
"""

from __future__ import annotations


class OverlogError(Exception):
    """Base class for all Overlog runtime errors."""


class LexError(OverlogError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class ParseError(OverlogError):
    """Raised when the parser encounters malformed Overlog source."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        loc = f" (line {line}, col {col})" if line else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.col = col


class CatalogError(OverlogError):
    """Raised for schema violations: unknown tables, arity mismatches,
    duplicate definitions, or primary-key specs out of range."""


class StratificationError(OverlogError):
    """Raised when a program has negation or aggregation inside a recursive
    cycle and therefore admits no stratified evaluation."""


class EvaluationError(OverlogError):
    """Raised when rule evaluation fails at runtime: unbound variables,
    bad function calls, or a diverging fixpoint."""


class UnknownFunctionError(EvaluationError):
    """Raised when a rule references a builtin function that is not
    registered in the function library."""
