"""Table catalog and tuple storage for the Overlog runtime.

Materialized tables follow P2 semantics: each table has a primary key (a
subset of columns); inserting a row whose key collides with an existing row
*replaces* that row.  An empty key spec means the whole row is the key,
giving plain set semantics.

Storage layout
--------------

Rows are Python tuples, keyed by primary key in ``_rows`` — that dict is
the ground truth and what ``lookup_key`` (the codegen tier's PK fast path,
see :mod:`repro.overlog.codegen`) reads with a single hash probe.  Around
it the table keeps *derived* columnar structures, all built lazily and
invalidated by a version counter:

* a **scan snapshot** (``rows_list``): the full row list is materialized
  once per version and shared by every scan until the next mutation.
  Join-plan scans, ``scan()`` iterators and witness probes all reuse it,
  so a steady-state table costs one list build per change, not per read.
  Callers must treat the returned list as read-only.
* **columnar projections** (``column_values``): per-column value arrays
  aligned with the scan snapshot, for column-at-a-time consumers
  (aggregate folds, replication scans) that would otherwise zip tuples.
* **tuple interning**: inserted rows are canonicalized through an intern
  table, so the equal-row tuples that circulate through deltas, banned
  sets and provenance keys share one object and compare by identity
  fast-path inside set/dict probes.

Secondary hash indexes (single-column and composite) are built on first
probe and maintained in place on every insert/delete — including through
``clear()``, which empties them *without replacing the dicts*, so a
compiled plan holding a reference from ``ensure_index`` stays correct
across a clear-then-reinsert cycle (``index_builds`` counts from-scratch
constructions only, and a clear does not reset it).

Event relations are transient: their tuples live only for the duration of a
single timestep and are managed by the evaluator, not stored here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .ast import EventDecl, Program, TableDecl, TimerDecl
from .errors import CatalogError

Row = tuple

_TYPE_CHECKS = {
    "Int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "Float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "Str": lambda v: isinstance(v, str),
    "String": lambda v: isinstance(v, str),
    "Bool": lambda v: isinstance(v, bool),
    "List": lambda v: isinstance(v, tuple),
    "Any": lambda v: True,
}


@dataclass
class InsertResult:
    """Outcome of a table insert."""

    inserted: bool  # True if the table changed
    displaced: Optional[Row] = None  # row replaced by a primary-key update


# Shared instances for the two allocation-free outcomes (callers only
# read the fields, never mutate them).
_NOT_INSERTED = InsertResult(inserted=False)
_INSERTED_CLEAN = InsertResult(inserted=True)


class Table:
    """A single materialized relation with primary-key update semantics."""

    def __init__(self, decl: TableDecl):
        if any(k < 0 or k >= decl.arity for k in decl.keys):
            raise CatalogError(
                f"table {decl.name}: key column out of range for arity {decl.arity}"
            )
        self.decl = decl
        self.name = decl.name
        self._rows: dict[Row, Row] = {}
        # Canonical instances of stored rows: equal tuples arriving from
        # different producers (network decode, rule projection) are folded
        # onto one object so downstream identity fast-paths fire.
        self._intern: dict[Row, Row] = {}
        # Lazily-built secondary hash indexes (column -> value -> rows),
        # used by the evaluator for bound-column joins; maintained on
        # every insert/delete once built.
        self._indexes: dict[int, dict] = {}
        # Composite hash indexes keyed by an ordered column tuple
        # (columns -> key tuple -> rows).  Built on demand by the join
        # plans that probe them (see repro.overlog.plan); maintained on
        # every insert/delete once built.  ``index_builds`` counts
        # from-scratch constructions so tests can assert each index is
        # built exactly once.
        self._composite_indexes: dict[tuple[int, ...], dict[Row, set[Row]]] = {}
        self.index_builds = 0
        # Per-column type validators, resolved once: only columns with a
        # real check are visited per insert.
        self._type_checks = tuple(
            (col, check)
            for col, tname in enumerate(decl.types)
            if (check := _TYPE_CHECKS.get(tname)) is not None
            and tname != "Any"
        )
        # Derived columnar state, invalidated by bumping ``_version``:
        # the memoized scan snapshot and per-column projections.
        self._version = 0
        self._scan_cache: Optional[list[Row]] = None
        self._scan_version = -1
        self._columns: dict[int, list] = {}
        self._columns_version = -1

    def _key_of(self, row: Row) -> Row:
        if not self.decl.keys:
            return row
        return tuple(row[k] for k in self.decl.keys)

    def _check_row(self, row: Row) -> None:
        if len(row) != self.decl.arity:
            raise CatalogError(
                f"table {self.name}: arity mismatch, expected "
                f"{self.decl.arity} got {len(row)}: {row!r}"
            )
        for col, check in self._type_checks:
            value = row[col]
            if value is not None and not check(value):
                raise CatalogError(
                    f"table {self.name}: value {value!r} is not of type "
                    f"{self.decl.types[col]}"
                )

    def insert(self, row: Row) -> InsertResult:
        """Insert ``row``; a primary-key collision replaces the old row."""
        self._check_row(row)
        row = self._intern.setdefault(row, row)
        key = self._key_of(row)
        old = self._rows.get(key)
        if old is row or old == row:
            return _NOT_INSERTED
        self._rows[key] = row
        self._version += 1
        if old is not None and self._intern.get(old) is old:
            del self._intern[old]
        for column, index in self._indexes.items():
            if old is not None:
                bucket = index.get(old[column])
                if bucket is not None:
                    bucket.discard(old)
            index.setdefault(row[column], set()).add(row)
        for columns, index in self._composite_indexes.items():
            if old is not None:
                bucket = index.get(tuple(old[c] for c in columns))
                if bucket is not None:
                    bucket.discard(old)
            index.setdefault(
                tuple(row[c] for c in columns), set()
            ).add(row)
        if old is None:
            return _INSERTED_CLEAN
        return InsertResult(inserted=True, displaced=old)

    def delete(self, row: Row) -> bool:
        """Delete ``row`` if present (exact match).  Returns True on change."""
        key = self._key_of(row)
        stored = self._rows.get(key)
        if stored == row:
            del self._rows[key]
            self._version += 1
            if self._intern.get(stored) is stored:
                del self._intern[stored]
            for column, index in self._indexes.items():
                bucket = index.get(stored[column])
                if bucket is not None:
                    bucket.discard(stored)
            for columns, index in self._composite_indexes.items():
                bucket = index.get(tuple(stored[c] for c in columns))
                if bucket is not None:
                    bucket.discard(stored)
            return True
        return False

    def rows_matching(self, column: int, value) -> list[Row]:
        """Rows whose ``column`` equals ``value``, via a hash index built
        on first use for that column."""
        index = self._indexes.get(column)
        if index is None:
            index = self.ensure_single_index(column)
        return list(index.get(value, ()))

    def rows_matching_ref(self, column: int, value):
        """Like :meth:`rows_matching` but returns the live index bucket
        (a set) without copying.  Callers must finish iterating before
        any table mutation — generated plan functions qualify: they are
        pure and materialize their full output before the evaluator
        applies staged insertions."""
        index = self._indexes.get(column)
        if index is None:
            index = self.ensure_single_index(column)
        return index.get(value, ())

    def ensure_single_index(self, column: int) -> dict:
        """Get-or-build the single-column hash index over ``column``.
        Returned dicts stay valid for the table's lifetime: maintenance
        (including :meth:`clear`) mutates them in place."""
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._rows.values():
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
            self.index_builds += 1
        return index

    def ensure_index(self, columns: tuple[int, ...]) -> dict:
        """Get-or-build the composite hash index over ``columns``.

        Single-column probes use the legacy per-column index so the two
        machineries never duplicate storage for the same column.  As with
        :meth:`ensure_single_index`, the returned dict is maintained in
        place forever, so callers may cache the reference.
        """
        index = self._composite_indexes.get(columns)
        if index is None:
            index = {}
            for row in self._rows.values():
                index.setdefault(
                    tuple(row[c] for c in columns), set()
                ).add(row)
            self._composite_indexes[columns] = index
            self.index_builds += 1
        return index

    def rows_matching_cols(
        self, columns: tuple[int, ...], values: Row
    ) -> list[Row]:
        """Rows where ``row[c] == v`` for each paired column/value, via a
        composite hash index built on first use for that column tuple."""
        if len(columns) == 1:
            return self.rows_matching(columns[0], values[0])
        return list(self.ensure_index(columns).get(values, ()))

    def contains(self, row: Row) -> bool:
        return self._rows.get(self._key_of(row)) == row

    def lookup_key(self, key: Row) -> Optional[Row]:
        """Fetch the row stored under a primary key, or None."""
        return self._rows.get(key)

    def scan(self) -> Iterator[Row]:
        # The snapshot list is immutable-by-convention and replaced (not
        # mutated) on change, so handing out an iterator over it is safe
        # even if evaluation inserts into this table mid-scan.
        return iter(self.rows_list())

    def rows_list(self) -> list[Row]:
        """Memoized snapshot of all rows as a list (what join plans
        scan).  Rebuilt at most once per table version; treat as
        read-only — mutating the returned list corrupts every concurrent
        scan of the same version."""
        if self._scan_version != self._version:
            self._scan_cache = list(self._rows.values())
            self._scan_version = self._version
        return self._scan_cache

    def column_values(self, column: int) -> list:
        """Columnar projection: all values of ``column``, aligned with
        :meth:`rows_list` order.  Materialized lazily per version and
        cached, for column-at-a-time consumers (folds, health scans)."""
        if self._columns_version != self._version:
            self._columns.clear()
            self._columns_version = self._version
        values = self._columns.get(column)
        if values is None:
            values = self._columns[column] = [
                row[column] for row in self.rows_list()
            ]
        return values

    def clear(self) -> None:
        """Remove every row.  Built indexes are emptied *in place* (the
        dict objects survive), so plan-cached references from
        ``ensure_index``/``ensure_single_index`` remain correct; they are
        not rebuilt, so ``index_builds`` does not change."""
        self._rows.clear()
        self._intern.clear()
        self._version += 1
        for index in self._indexes.values():
            index.clear()
        for index in self._composite_indexes.values():
            index.clear()

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.scan()


class Catalog:
    """The set of relations known to one runtime instance.

    Built from one or more programs; relation names are global, so two
    programs loaded into the same runtime share tables with matching
    declarations (conflicting redeclarations are rejected).
    """

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.events: dict[str, EventDecl] = {}
        self.timers: dict[str, TimerDecl] = {}

    def load(self, program: Program) -> None:
        for decl in program.decls:
            if isinstance(decl, TableDecl):
                self._add_table(decl)
            elif isinstance(decl, EventDecl):
                self._add_event(decl)
            elif isinstance(decl, TimerDecl):
                self._add_timer(decl)

    def _add_table(self, decl: TableDecl) -> None:
        if decl.name in self.events or decl.name in self.timers:
            raise CatalogError(f"{decl.name} already declared as an event/timer")
        existing = self.tables.get(decl.name)
        if existing is not None:
            if existing.decl != decl:
                raise CatalogError(f"conflicting redefinition of table {decl.name}")
            return
        self.tables[decl.name] = Table(decl)

    def _add_event(self, decl: EventDecl) -> None:
        if decl.name in self.tables or decl.name in self.timers:
            raise CatalogError(f"{decl.name} already declared as a table/timer")
        existing = self.events.get(decl.name)
        if existing is not None and existing != decl:
            raise CatalogError(f"conflicting redefinition of event {decl.name}")
        self.events[decl.name] = decl

    def _add_timer(self, decl: TimerDecl) -> None:
        if decl.name in self.tables or decl.name in self.events:
            raise CatalogError(f"{decl.name} already declared as a table/event")
        existing = self.timers.get(decl.name)
        if existing is not None and existing != decl:
            raise CatalogError(f"conflicting redefinition of timer {decl.name}")
        self.timers[decl.name] = decl

    def is_materialized(self, name: str) -> bool:
        return name in self.tables

    def is_event(self, name: str) -> bool:
        # Timers behave as events at evaluation time: a firing injects a
        # transient tuple.
        return name in self.events or name in self.timers

    def is_declared(self, name: str) -> bool:
        return name in self.tables or self.is_event(name)

    def arity(self, name: str) -> int:
        if name in self.tables:
            return self.tables[name].decl.arity
        if name in self.events:
            return self.events[name].arity
        if name in self.timers:
            return 2  # (fire_count, now_ms)
        raise CatalogError(f"unknown relation {name}")

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name}") from None
