"""Table catalog and tuple storage for the Overlog runtime.

Materialized tables follow P2 semantics: each table has a primary key (a
subset of columns); inserting a row whose key collides with an existing row
*replaces* that row.  An empty key spec means the whole row is the key,
giving plain set semantics.

Event relations are transient: their tuples live only for the duration of a
single timestep and are managed by the evaluator, not stored here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .ast import EventDecl, Program, TableDecl, TimerDecl
from .errors import CatalogError

Row = tuple

_TYPE_CHECKS = {
    "Int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "Float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "Str": lambda v: isinstance(v, str),
    "String": lambda v: isinstance(v, str),
    "Bool": lambda v: isinstance(v, bool),
    "List": lambda v: isinstance(v, tuple),
    "Any": lambda v: True,
}


@dataclass
class InsertResult:
    """Outcome of a table insert."""

    inserted: bool  # True if the table changed
    displaced: Optional[Row] = None  # row replaced by a primary-key update


class Table:
    """A single materialized relation with primary-key update semantics."""

    def __init__(self, decl: TableDecl):
        if any(k < 0 or k >= decl.arity for k in decl.keys):
            raise CatalogError(
                f"table {decl.name}: key column out of range for arity {decl.arity}"
            )
        self.decl = decl
        self.name = decl.name
        self._rows: dict[Row, Row] = {}
        # Lazily-built secondary hash indexes (column -> value -> rows),
        # used by the evaluator for bound-column joins; maintained on
        # every insert/delete once built.
        self._indexes: dict[int, dict] = {}
        # Composite hash indexes keyed by an ordered column tuple
        # (columns -> key tuple -> rows).  Built on demand by the join
        # plans that probe them (see repro.overlog.plan); maintained on
        # every insert/delete once built.  ``index_builds`` counts
        # from-scratch constructions so tests can assert each index is
        # built exactly once.
        self._composite_indexes: dict[tuple[int, ...], dict[Row, set[Row]]] = {}
        self.index_builds = 0

    def _key_of(self, row: Row) -> Row:
        if not self.decl.keys:
            return row
        return tuple(row[k] for k in self.decl.keys)

    def _check_row(self, row: Row) -> None:
        if len(row) != self.decl.arity:
            raise CatalogError(
                f"table {self.name}: arity mismatch, expected "
                f"{self.decl.arity} got {len(row)}: {row!r}"
            )
        for value, tname in zip(row, self.decl.types):
            check = _TYPE_CHECKS.get(tname)
            if check is not None and value is not None and not check(value):
                raise CatalogError(
                    f"table {self.name}: value {value!r} is not of type {tname}"
                )

    def insert(self, row: Row) -> InsertResult:
        """Insert ``row``; a primary-key collision replaces the old row."""
        self._check_row(row)
        key = self._key_of(row)
        old = self._rows.get(key)
        if old == row:
            return InsertResult(inserted=False)
        self._rows[key] = row
        for column, index in self._indexes.items():
            if old is not None:
                bucket = index.get(old[column])
                if bucket is not None:
                    bucket.discard(old)
            index.setdefault(row[column], set()).add(row)
        for columns, index in self._composite_indexes.items():
            if old is not None:
                bucket = index.get(tuple(old[c] for c in columns))
                if bucket is not None:
                    bucket.discard(old)
            index.setdefault(
                tuple(row[c] for c in columns), set()
            ).add(row)
        return InsertResult(inserted=True, displaced=old)

    def delete(self, row: Row) -> bool:
        """Delete ``row`` if present (exact match).  Returns True on change."""
        key = self._key_of(row)
        if self._rows.get(key) == row:
            del self._rows[key]
            for column, index in self._indexes.items():
                bucket = index.get(row[column])
                if bucket is not None:
                    bucket.discard(row)
            for columns, index in self._composite_indexes.items():
                bucket = index.get(tuple(row[c] for c in columns))
                if bucket is not None:
                    bucket.discard(row)
            return True
        return False

    def rows_matching(self, column: int, value) -> list[Row]:
        """Rows whose ``column`` equals ``value``, via a hash index built
        on first use for that column."""
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._rows.values():
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
            self.index_builds += 1
        return list(index.get(value, ()))

    def ensure_index(self, columns: tuple[int, ...]) -> dict:
        """Get-or-build the composite hash index over ``columns``.

        Single-column probes use the legacy per-column index so the two
        machineries never duplicate storage for the same column.
        """
        index = self._composite_indexes.get(columns)
        if index is None:
            index = {}
            for row in self._rows.values():
                index.setdefault(
                    tuple(row[c] for c in columns), set()
                ).add(row)
            self._composite_indexes[columns] = index
            self.index_builds += 1
        return index

    def rows_matching_cols(
        self, columns: tuple[int, ...], values: Row
    ) -> list[Row]:
        """Rows where ``row[c] == v`` for each paired column/value, via a
        composite hash index built on first use for that column tuple."""
        if len(columns) == 1:
            return self.rows_matching(columns[0], values[0])
        return list(self.ensure_index(columns).get(values, ()))

    def contains(self, row: Row) -> bool:
        return self._rows.get(self._key_of(row)) == row

    def lookup_key(self, key: Row) -> Optional[Row]:
        """Fetch the row stored under a primary key, or None."""
        return self._rows.get(key)

    def scan(self) -> Iterator[Row]:
        # Snapshot: evaluation may insert into this table mid-scan.
        return iter(list(self._rows.values()))

    def rows_list(self) -> list[Row]:
        """Snapshot of all rows as a list (what join plans scan)."""
        return list(self._rows.values())

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()
        self._composite_indexes.clear()

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.scan()


class Catalog:
    """The set of relations known to one runtime instance.

    Built from one or more programs; relation names are global, so two
    programs loaded into the same runtime share tables with matching
    declarations (conflicting redeclarations are rejected).
    """

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.events: dict[str, EventDecl] = {}
        self.timers: dict[str, TimerDecl] = {}

    def load(self, program: Program) -> None:
        for decl in program.decls:
            if isinstance(decl, TableDecl):
                self._add_table(decl)
            elif isinstance(decl, EventDecl):
                self._add_event(decl)
            elif isinstance(decl, TimerDecl):
                self._add_timer(decl)

    def _add_table(self, decl: TableDecl) -> None:
        if decl.name in self.events or decl.name in self.timers:
            raise CatalogError(f"{decl.name} already declared as an event/timer")
        existing = self.tables.get(decl.name)
        if existing is not None:
            if existing.decl != decl:
                raise CatalogError(f"conflicting redefinition of table {decl.name}")
            return
        self.tables[decl.name] = Table(decl)

    def _add_event(self, decl: EventDecl) -> None:
        if decl.name in self.tables or decl.name in self.timers:
            raise CatalogError(f"{decl.name} already declared as a table/timer")
        existing = self.events.get(decl.name)
        if existing is not None and existing != decl:
            raise CatalogError(f"conflicting redefinition of event {decl.name}")
        self.events[decl.name] = decl

    def _add_timer(self, decl: TimerDecl) -> None:
        if decl.name in self.tables or decl.name in self.events:
            raise CatalogError(f"{decl.name} already declared as a table/event")
        existing = self.timers.get(decl.name)
        if existing is not None and existing != decl:
            raise CatalogError(f"conflicting redefinition of timer {decl.name}")
        self.timers[decl.name] = decl

    def is_materialized(self, name: str) -> bool:
        return name in self.tables

    def is_event(self, name: str) -> bool:
        # Timers behave as events at evaluation time: a firing injects a
        # transient tuple.
        return name in self.events or name in self.timers

    def is_declared(self, name: str) -> bool:
        return name in self.tables or self.is_event(name)

    def arity(self, name: str) -> int:
        if name in self.tables:
            return self.tables[name].decl.arity
        if name in self.events:
            return self.events[name].arity
        if name in self.timers:
            return 2  # (fire_count, now_ms)
        raise CatalogError(f"unknown relation {name}")

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name}") from None
