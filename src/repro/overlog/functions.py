"""Builtin function library for Overlog expressions.

Overlog has no user-defined functions; instead the runtime provides a fixed
set of builtins, all prefixed ``f_`` (the parser relies on this prefix to
distinguish function calls from predicate atoms).

Pure functions live in :data:`DEFAULT_FUNCTIONS`.  Stateful functions
(``f_now``, ``f_newid``, ``f_rand``) depend on the runtime's clock, id
counter and seeded RNG and are registered per-runtime by
:class:`repro.overlog.runtime.OverlogRuntime`.

Collections are represented as Python tuples so that tuples containing them
remain hashable.
"""

from __future__ import annotations

import hashlib
import math
import posixpath
import re
from typing import Any, Callable

from .errors import EvaluationError, UnknownFunctionError


def stable_hash(value: Any) -> int:
    """A hash that is stable across processes and runs (unlike ``hash()``).

    Exposed publicly because cluster components outside the Overlog engine
    (e.g. the partitioned-namespace client) must agree with ``f_hash``.
    """
    digest = hashlib.md5(repr(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


_stable_hash = stable_hash


def f_concat_path(base: str, name: str) -> str:
    """Join a directory path and a child name, POSIX style."""
    if base.endswith("/"):
        return base + name
    return base + "/" + name


def f_dirname(path: str) -> str:
    return posixpath.dirname(path) or "/"


def f_basename(path: str) -> str:
    return posixpath.basename(path)


def f_size(value: Any) -> int:
    try:
        return len(value)
    except TypeError as exc:
        raise EvaluationError(f"f_size: {value!r} has no length") from exc


def f_append(coll: tuple, item: Any) -> tuple:
    if not isinstance(coll, tuple):
        raise EvaluationError(f"f_append: {coll!r} is not a list")
    return coll + (item,)


def f_member(coll: tuple, item: Any) -> bool:
    return item in coll


def f_nth(coll: tuple, index: int) -> Any:
    try:
        return coll[index]
    except (IndexError, TypeError) as exc:
        raise EvaluationError(f"f_nth: bad index {index!r} for {coll!r}") from exc


def f_if(cond: Any, then_val: Any, else_val: Any) -> Any:
    return then_val if cond else else_val


def f_match(pattern: str, text: str) -> bool:
    return re.search(pattern, text) is not None


def f_quantile(payload: tuple, p: float) -> float:
    """Value at percentile ``p`` (0-100) of a t-digest payload — the
    column type the ``percentile<>`` aggregate produces.  This is how
    monitor rules turn a folded cluster digest into p50/p99/p999 numbers
    (docs/TELEMETRY.md)."""
    from ..sketches import TDigest, is_tdigest_payload

    if not is_tdigest_payload(payload):
        raise EvaluationError(f"f_quantile: not a t-digest payload: {payload!r}")
    return TDigest.from_payload(payload).percentile(p)


def f_sketch_count(payload: tuple) -> int:
    """Number of observations folded into a t-digest payload."""
    from ..sketches import TDigest, is_tdigest_payload

    if not is_tdigest_payload(payload):
        raise EvaluationError(
            f"f_sketch_count: not a t-digest payload: {payload!r}"
        )
    return int(TDigest.from_payload(payload).count)


def f_distinct_estimate(payload: tuple) -> int:
    """Distinct-count estimate of an HLL payload (a ``Distinct`` metric
    shipped by the telemetry exporter)."""
    from ..sketches import HyperLogLog, is_hll_payload

    if not is_hll_payload(payload):
        raise EvaluationError(
            f"f_distinct_estimate: not an HLL payload: {payload!r}"
        )
    return HyperLogLog.from_payload(payload).estimate()


DEFAULT_FUNCTIONS: dict[str, Callable[..., Any]] = {
    # strings / paths
    "f_concat_path": f_concat_path,
    "f_dirname": f_dirname,
    "f_basename": f_basename,
    "f_concat": lambda a, b: str(a) + str(b),
    "f_tostr": lambda v: str(v),
    "f_toint": lambda v: int(v),
    "f_substr": lambda s, i, j: s[i:j],
    "f_startswith": lambda s, prefix: s.startswith(prefix),
    "f_endswith": lambda s, suffix: s.endswith(suffix),
    "f_match": f_match,
    "f_lower": lambda s: s.lower(),
    # collections (tuples)
    "f_size": f_size,
    "f_list": lambda *items: tuple(items),
    "f_append": f_append,
    "f_member": f_member,
    "f_nth": f_nth,
    "f_flatten": lambda coll: tuple(x for sub in coll for x in sub),
    "f_take": lambda coll, n: tuple(coll[:n]),
    "f_project": lambda coll, i: tuple(item[i] for item in coll),
    # arithmetic
    "f_abs": abs,
    "f_min": min,
    "f_max": max,
    "f_mod": lambda a, b: a % b,
    "f_floor": lambda v: math.floor(v),
    "f_ceil": lambda v: math.ceil(v),
    "f_pow": lambda a, b: a**b,
    # sketches (telemetry payloads — docs/TELEMETRY.md)
    "f_quantile": f_quantile,
    "f_sketch_count": f_sketch_count,
    "f_distinct_estimate": f_distinct_estimate,
    # misc
    "f_hash": _stable_hash,
    "f_hashmod": lambda v, m: _stable_hash(v) % m,
    "f_if": f_if,
    "f_is_nil": lambda v: v is None,
}


class FunctionLibrary:
    """A per-runtime registry mapping function names to Python callables."""

    def __init__(self, extra: dict[str, Callable[..., Any]] | None = None):
        self._funcs = dict(DEFAULT_FUNCTIONS)
        if extra:
            self._funcs.update(extra)

    def register(self, name: str, func: Callable[..., Any]) -> None:
        if not name.startswith("f_"):
            raise EvaluationError(f"function name {name!r} must start with 'f_'")
        self._funcs[name] = func

    def call(self, name: str, args: tuple) -> Any:
        func = self._funcs.get(name)
        if func is None:
            raise UnknownFunctionError(f"unknown builtin function {name}")
        try:
            return func(*args)
        except (EvaluationError, UnknownFunctionError):
            raise
        except Exception as exc:
            raise EvaluationError(f"{name}{args!r} failed: {exc}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._funcs
