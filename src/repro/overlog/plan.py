"""Rule compilation: cached join plans for the Overlog evaluator.

The interpreted evaluator (:mod:`repro.overlog.eval`) re-derives the same
decisions on every semi-naive pass: which column of each body atom can be
probed through a hash index, which variables are bound at each body
position, and how to evaluate every head/predicate expression (a recursive
AST walk per derived tuple).  All of those are static properties of the
rule text, so this module resolves them **once, at program-install time**:

* ``compile_expr`` turns an expression AST into a Python closure
  ``env -> value`` with the same semantics (including Overlog's integer
  division and short-circuit ``&&``/``||``).
* ``JoinPlan`` is the compiled form of one rule body for one semi-naive
  delta position: an ordered sequence of steps (delta scan, composite
  index probe, table scan, negation check, assignment, condition) with
  the bound-variable sets and index column choices frozen in.
* ``PlanCache`` owns every plan for a rule set — one ``JoinPlan`` per
  rule × delta-position plus a full-evaluation plan and, for aggregate
  rules, an ``AggregatePlan`` — and is invalidated wholesale when rules
  are added or swapped.

Plans probe composite (multi-column) hash indexes: where the interpreter
probed only the *first* bound column, a plan probes **all** bound columns
at once (`Table.rows_matching_cols`), so a join like
``chunk(File, Id, Node)`` with ``File`` and ``Node`` bound touches only
the rows matching both.  The candidate-row filter that remains after the
probe is a specialized matcher closure, not a generic ``match_atom``
interpretation.

Correctness notes (load-bearing, relied on by the differential tests):

* Step-level dedup of identical environments is only needed when an atom
  contains a wildcard argument.  For wildcard-free atoms, distinct input
  environments with the same key set extend to distinct outputs (new
  bindings only add keys; rows that agree on every checked and bound
  column are the same row), so plans skip the frozenset dedup entirely —
  this is where most of the interpreter's per-tuple overhead went.
* Environments reaching the head are pairwise distinct for the same
  reason, so head projection needs no second dedup pass (the interpreted
  path re-froze every environment to check this).
* Expression evaluation order, integer-division semantics and error
  behavior are preserved exactly; the compiled path must be
  indistinguishable from the interpreter in everything but speed.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Optional

from .ast import (
    AggSpec,
    Assign,
    Atom,
    BinOp,
    Cond,
    Const,
    Expr,
    FuncCall,
    NotIn,
    Rule,
    UnOp,
    Var,
)
from .catalog import Catalog, Row, Table
from .codegen import atom_needs_dedup
from .errors import EvaluationError
from .functions import FunctionLibrary

Env = dict[str, Any]
ExprFn = Callable[[Env], Any]


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_expr(expr: Expr, functions: FunctionLibrary) -> ExprFn:
    """Compile an expression AST into a closure ``env -> value``.

    Semantics mirror :func:`repro.overlog.eval.eval_expr` exactly,
    including error messages, so the compiled and interpreted paths are
    interchangeable.
    """
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Var):
        if expr.is_wildcard:
            def wildcard(env: Env) -> Any:
                raise EvaluationError("wildcard _ used where a value is required")
            return wildcard
        name = expr.name
        def load(env: Env) -> Any:
            try:
                return env[name]
            except KeyError:
                raise EvaluationError(f"unbound variable {name}") from None
        return load
    if isinstance(expr, FuncCall):
        fname = expr.name
        call = functions.call
        arg_fns = tuple(compile_expr(a, functions) for a in expr.args)
        return lambda env: call(fname, tuple(fn(env) for fn in arg_fns))
    if isinstance(expr, UnOp):
        operand = compile_expr(expr.operand, functions)
        if expr.op == "-":
            return lambda env: -operand(env)
        if expr.op == "!":
            return lambda env: not operand(env)
        raise EvaluationError(f"unknown unary operator {expr.op}")
    if isinstance(expr, BinOp):
        return _compile_binop(expr, functions)
    raise EvaluationError(f"cannot evaluate {expr!r}")


def _compile_binop(expr: BinOp, functions: FunctionLibrary) -> ExprFn:
    op = expr.op
    left = compile_expr(expr.left, functions)
    right = compile_expr(expr.right, functions)
    if op == "&&":
        return lambda env: bool(left(env) and right(env))
    if op == "||":
        return lambda env: bool(left(env) or right(env))
    if op == "/":
        def divide(env: Env) -> Any:
            lv = left(env)
            rv = right(env)
            # Integer operands use integer division (Overlog is int-heavy:
            # chunk offsets, slot counts); any float operand gives float math.
            if isinstance(lv, int) and isinstance(rv, int):
                return lv // rv
            return lv / rv
        return divide
    fn = _BINOPS.get(op)
    if fn is None:
        raise EvaluationError(f"unknown operator {op}")
    return lambda env: fn(left(env), right(env))


# ---------------------------------------------------------------------------
# Atom matchers
# ---------------------------------------------------------------------------

# Matcher micro-ops, resolved at compile time.  ``check_var`` and
# ``check_expr`` read the *effective* environment (including bindings made
# by earlier columns of the same atom), matching the interpreter's strict
# left-to-right unification.
_BIND = 0
_CHECK_VAR = 1
_CHECK_CONST = 2
_CHECK_EXPR = 3

MatchFn = Callable[[Row, Env], Optional[Env]]


def _compile_matcher(
    atom: Atom,
    bound: frozenset,
    probe_cols: tuple[int, ...],
    functions: FunctionLibrary,
) -> MatchFn:
    """Build ``match(row, env) -> extended env | None`` for one atom.

    Columns in ``probe_cols`` were already constrained by the index probe
    (constants and previously-bound variables), so the matcher skips them.
    """
    arity = len(atom.args)
    probed = set(probe_cols)
    ops: list[tuple[int, int, Any]] = []
    seen_new: set[str] = set()
    for col, arg in enumerate(atom.args):
        if isinstance(arg, Var):
            if arg.is_wildcard:
                continue
            if arg.name in bound or arg.name in seen_new:
                if col not in probed:
                    ops.append((_CHECK_VAR, col, arg.name))
            else:
                ops.append((_BIND, col, arg.name))
                seen_new.add(arg.name)
        elif isinstance(arg, Const):
            if col not in probed:
                ops.append((_CHECK_CONST, col, arg.value))
        else:
            ops.append((_CHECK_EXPR, col, compile_expr(arg, functions)))

    if all(kind == _BIND for kind, _, _ in ops):
        bind_pairs = tuple((col, name) for _, col, name in ops)

        def match_bind_only(row: Row, env: Env) -> Optional[Env]:
            if len(row) != arity:
                return None
            new_env = dict(env)
            for col, name in bind_pairs:
                new_env[name] = row[col]
            return new_env

        # With zero ops every column is probed/wildcard: any row of the
        # right arity matches without extending the environment.
        if not bind_pairs:
            def match_any(row: Row, env: Env) -> Optional[Env]:
                return env if len(row) == arity else None
            return match_any
        return match_bind_only

    op_tuple = tuple(ops)

    def match(row: Row, env: Env) -> Optional[Env]:
        if len(row) != arity:
            return None
        new_env: Optional[Env] = None
        for kind, col, payload in op_tuple:
            if kind == _BIND:
                if new_env is None:
                    new_env = dict(env)
                new_env[payload] = row[col]
            elif kind == _CHECK_VAR:
                cur = env if new_env is None else new_env
                if cur[payload] != row[col]:
                    return None
            elif kind == _CHECK_CONST:
                if payload != row[col]:
                    return None
            else:  # _CHECK_EXPR
                cur = env if new_env is None else new_env
                if payload(cur) != row[col]:
                    return None
        return env if new_env is None else new_env

    return match


def _probe_spec(
    atom: Atom, bound: frozenset, functions: FunctionLibrary
) -> tuple[tuple[int, ...], tuple[ExprFn, ...]]:
    """All columns usable as an index probe — every constant argument and
    every previously-bound variable — i.e. the *most-bound* composite key
    available at this body position."""
    cols: list[int] = []
    fns: list[ExprFn] = []
    for col, arg in enumerate(atom.args):
        if isinstance(arg, Const):
            cols.append(col)
            fns.append(compile_expr(arg, functions))
        elif isinstance(arg, Var) and not arg.is_wildcard and arg.name in bound:
            cols.append(col)
            fns.append(compile_expr(arg, functions))
    return tuple(cols), tuple(fns)


# ---------------------------------------------------------------------------
# Plan steps
# ---------------------------------------------------------------------------

# Lineage tracking (provenance ledger support).  When the evaluator runs
# with a DerivationLedger attached, plans execute through
# ``execute_tracked``, which returns each head tuple together with the
# *final body environment* that produced it.  The join steps themselves
# are untouched (environments are never mutated after a step emits them,
# so holding references is free); the evaluator reconstructs the witness
# body tuples from the environment only for derivations it actually
# records — genuinely-new tuples — instead of paying per joined row.


# How an atom step sources its candidate rows relative to the plan's
# semi-naive delta position.
_SRC_NORMAL = "full"        # full relation (probe or scan)
_SRC_DELTA = "delta"        # ranges over the pass's delta rows
_SRC_POST_DELTA = "full-minus-delta"  # full relation minus the delta


class _AtomStep:
    """One positive body atom: delta scan, composite-index probe, or
    full scan, followed by the specialized matcher."""

    __slots__ = (
        "atom", "name", "source", "table", "probe_cols", "probe_fns",
        "match", "needs_dedup",
    )

    def __init__(
        self,
        atom: Atom,
        source: str,
        table: Optional[Table],
        probe_cols: tuple[int, ...],
        probe_fns: tuple[ExprFn, ...],
        match: MatchFn,
        needs_dedup: bool,
    ):
        self.atom = atom
        self.name = atom.name
        self.source = source
        self.table = table
        self.probe_cols = probe_cols
        self.probe_fns = probe_fns
        self.match = match
        # Only atoms with wildcard columns can map distinct rows onto the
        # same environment; everything else is provably duplicate-free.
        self.needs_dedup = needs_dedup

    def run(
        self,
        ev: Any,
        envs: list[Env],
        delta_rows: list[Row],
        exclude: Optional[dict[str, set[Row]]],
    ) -> list[Env]:
        banned: Optional[set[Row]] = None
        rows: Optional[Iterable[Row]] = None
        probing = False
        if self.source == _SRC_DELTA:
            rows = delta_rows
        else:
            if (
                self.source == _SRC_POST_DELTA
                and exclude is not None
            ):
                banned = exclude.get(self.name)
            if self.table is not None and self.probe_cols:
                probing = True
            elif self.table is not None:
                rows = self.table.rows_list()
            else:
                rows = ev._event_pool.get(self.name, ())
            if banned is not None and not probing:
                rows = [r for r in rows if r not in banned]

        out: list[Env] = []
        match = self.match
        seen: Optional[set] = set() if self.needs_dedup else None
        if probing:
            table = self.table
            cols = self.probe_cols
            fns = self.probe_fns
            for env in envs:
                values = tuple(fn(env) for fn in fns)
                for row in table.rows_matching_cols(cols, values):
                    if banned is not None and row in banned:
                        continue
                    matched = match(row, env)
                    if matched is not None:
                        if seen is not None:
                            sig = frozenset(matched.items())
                            if sig in seen:
                                continue
                            seen.add(sig)
                        out.append(matched)
        else:
            for env in envs:
                for row in rows:
                    matched = match(row, env)
                    if matched is not None:
                        if seen is not None:
                            sig = frozenset(matched.items())
                            if sig in seen:
                                continue
                            seen.add(sig)
                        out.append(matched)
        return out

    def describe(self) -> str:
        if self.source == _SRC_DELTA:
            access = f"delta({self.name})"
        elif self.table is not None and self.probe_cols:
            keys = ", ".join(
                f"col{c}={self.atom.arg_str(c)}" for c in self.probe_cols
            )
            access = f"probe {self.name}[{keys}]"
        else:
            kind = "scan" if self.table is not None else "scan-events"
            access = f"{kind} {self.name}"
        if self.source == _SRC_POST_DELTA:
            access += " \\ delta"
        binds = sorted(
            a.name
            for a in self.atom.args
            if isinstance(a, Var) and not a.is_wildcard
        )
        suffix = f" -> bind {', '.join(binds)}" if binds else ""
        if self.needs_dedup:
            suffix += " [dedup]"
        return access + suffix


class _NegStep:
    """A ``notin`` check: keep environments with no matching row."""

    __slots__ = ("atom", "name", "table", "probe_cols", "probe_fns", "match")

    def __init__(
        self,
        atom: Atom,
        table: Optional[Table],
        probe_cols: tuple[int, ...],
        probe_fns: tuple[ExprFn, ...],
        match: MatchFn,
    ):
        self.atom = atom
        self.name = atom.name
        self.table = table
        self.probe_cols = probe_cols
        self.probe_fns = probe_fns
        self.match = match

    def run(
        self,
        ev: Any,
        envs: list[Env],
        delta_rows: list[Row],
        exclude: Optional[dict[str, set[Row]]],
    ) -> list[Env]:
        match = self.match
        kept: list[Env] = []
        if self.table is not None and self.probe_cols:
            table = self.table
            cols = self.probe_cols
            fns = self.probe_fns
            for env in envs:
                values = tuple(fn(env) for fn in fns)
                if not any(
                    match(row, env) is not None
                    for row in table.rows_matching_cols(cols, values)
                ):
                    kept.append(env)
            return kept
        if self.table is not None:
            rows: Iterable[Row] = self.table.rows_list()
        else:
            rows = ev._event_pool.get(self.name, ())
        for env in envs:
            if not any(match(row, env) is not None for row in rows):
                kept.append(env)
        return kept

    def describe(self) -> str:
        if self.table is not None and self.probe_cols:
            keys = ", ".join(
                f"col{c}={self.atom.arg_str(c)}" for c in self.probe_cols
            )
            return f"antijoin probe {self.name}[{keys}]"
        return f"antijoin scan {self.name}"


class _AssignStep:
    """``Var := expr`` — binds when unbound (statically known), otherwise
    filters on equality."""

    __slots__ = ("name", "fn", "already_bound")

    def __init__(self, name: str, fn: ExprFn, already_bound: bool):
        self.name = name
        self.fn = fn
        self.already_bound = already_bound

    def run(
        self,
        ev: Any,
        envs: list[Env],
        delta_rows: list[Row],
        exclude: Optional[dict[str, set[Row]]],
    ) -> list[Env]:
        fn = self.fn
        name = self.name
        if self.already_bound:
            return [env for env in envs if env[name] == fn(env)]
        out: list[Env] = []
        for env in envs:
            value = fn(env)
            extended = dict(env)
            extended[name] = value
            out.append(extended)
        return out

    def describe(self) -> str:
        verb = "check" if self.already_bound else "assign"
        return f"{verb} {self.name}"


class _CondStep:
    """A boolean condition filter."""

    __slots__ = ("fn", "text")

    def __init__(self, fn: ExprFn, text: str):
        self.fn = fn
        self.text = text

    def run(
        self,
        ev: Any,
        envs: list[Env],
        delta_rows: list[Row],
        exclude: Optional[dict[str, set[Row]]],
    ) -> list[Env]:
        fn = self.fn
        return [env for env in envs if fn(env)]

    def describe(self) -> str:
        return f"filter {self.text}"


# ---------------------------------------------------------------------------
# Join plans
# ---------------------------------------------------------------------------


class JoinPlan:
    """The compiled body of one rule for one semi-naive delta position
    (``delta_pos=None`` is the full-evaluation plan), plus the compiled
    head projection for non-aggregate rules.

    Under the source-codegen tier (``compile_mode="source"``, see
    :mod:`repro.overlog.codegen`) the plan additionally carries flat
    ``exec``-generated functions — ``src_execute`` / ``src_execute_tracked``
    / ``src_envs`` — that produce bit-identical output to ``execute`` /
    ``execute_tracked`` / ``body_envs`` without the step pipeline.  They
    are ``None`` on the closure tier or when the emitter declined the
    rule shape; callers must fall back to the step path then.
    """

    __slots__ = (
        "rule", "delta_pos", "steps", "head_name", "head_fns", "_prof",
        "src_execute", "src_execute_tracked", "src_envs", "source",
    )

    def __init__(
        self,
        rule: Rule,
        delta_pos: Optional[int],
        steps: tuple,
        head_fns: Optional[tuple[ExprFn, ...]],
    ):
        self.rule = rule
        self.delta_pos = delta_pos
        self.steps = steps
        self.head_name = rule.head.name
        self.head_fns = head_fns
        # Profiler stat slot, lazily filled by PlanProfiler.should_sample
        # so the sampling decision is one attribute load per execution.
        self._prof = None
        # Source-codegen overlay (filled by RulePlans on the source tier).
        self.src_execute = None
        self.src_execute_tracked = None
        self.src_envs = None
        self.source: Optional[str] = None

    def body_envs(
        self,
        ev: Any,
        delta_rows: list[Row],
        exclude: Optional[dict[str, set[Row]]],
    ) -> list[Env]:
        envs: list[Env] = [{}]
        for step in self.steps:
            if not envs:
                return envs
            envs = step.run(ev, envs, delta_rows, exclude)
        return envs

    def execute(
        self,
        ev: Any,
        delta_rows: list[Row] = (),
        exclude: Optional[dict[str, set[Row]]] = None,
    ) -> list[tuple[str, Row]]:
        """Derive head tuples.  Environments reaching the head are
        pairwise distinct (see module docstring), so no re-dedup."""
        envs = self.body_envs(ev, delta_rows, exclude)
        if not envs:
            return []
        name = self.head_name
        fns = self.head_fns
        return [
            (name, tuple(fn(env) for fn in fns)) for env in envs
        ]

    def execute_tracked(
        self,
        ev: Any,
        delta_rows: list[Row] = (),
        exclude: Optional[dict[str, set[Row]]] = None,
    ) -> list[tuple[str, Row, Env]]:
        """Like :meth:`execute`, but each result carries the final body
        environment it was projected from: ``(relation, row, env)``.
        The evaluator reconstructs witness body tuples from the env only
        for derivations it records (environments are immutable once a
        step emits them, so the references stay valid)."""
        envs = self.body_envs(ev, delta_rows, exclude)
        if not envs:
            return []
        name = self.head_name
        fns = self.head_fns
        return [
            (name, tuple(fn(env) for fn in fns), env) for env in envs
        ]

    def explain(self) -> str:
        """Human-readable plan: one line per step, in execution order."""
        tag = "full" if self.delta_pos is None else f"delta@{self.delta_pos}"
        lines = [f"[{tag}]"]
        lines += [f"  {i}. {s.describe()}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)


class AggregatePlan:
    """An aggregate rule: compiled body plan plus grouping/fold spec."""

    __slots__ = (
        "rule", "body", "head_name", "group_fns", "agg_specs", "arity",
        "_prof", "src_pairs",
    )

    # Profiler tag (JoinPlans use their delta_pos instead).
    delta_pos = "agg"

    def __init__(self, rule: Rule, body: JoinPlan, functions: FunctionLibrary):
        self.rule = rule
        self.body = body
        self._prof = None
        # Source-tier overlay: a generated function yielding one
        # (group-key, agg-values) pair per distinct binding, replacing
        # the env materialization + per-env closure extraction below.
        self.src_pairs = None
        head = rule.head
        self.head_name = head.name
        self.arity = len(head.args)
        self.group_fns = tuple(
            (i, compile_expr(a, functions))
            for i, a in enumerate(head.args)
            if not isinstance(a, AggSpec)
        )
        self.agg_specs = tuple(
            (
                i,
                a.func,
                None if a.var.is_wildcard else compile_expr(a.var, functions),
            )
            for i, a in enumerate(head.args)
            if isinstance(a, AggSpec)
        )

    def execute(self, ev: Any) -> list[tuple[str, Row]]:
        # Bag aggregation over distinct bindings (SQL semantics) — the
        # body plan already guarantees distinct environments/pairs.
        # Single-spec rules bucket bare values (the generated ``agg``
        # shape emits scalars for them); multi-spec rules bucket values
        # tuples.  Both fold in first-seen group order, matching the
        # closure fold exactly.
        groups: dict[Row, list] = {}
        specs = self.agg_specs
        single = len(specs) == 1
        pairs_fn = self.src_pairs
        if pairs_fn is not None:
            for key, values in pairs_fn(ev, (), None):
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [values]
                else:
                    bucket.append(values)
        else:
            envs_fn = self.body.src_envs
            if envs_fn is not None:
                envs = envs_fn(ev, (), None)
            else:
                envs = self.body.body_envs(ev, (), None)
            group_fns = self.group_fns
            if single:
                _, _, vfn = specs[0]
                for env in envs:
                    key = tuple(fn(env) for _, fn in group_fns)
                    value = None if vfn is None else vfn(env)
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [value]
                    else:
                        bucket.append(value)
            else:
                for env in envs:
                    key = tuple(fn(env) for _, fn in group_fns)
                    values = tuple(
                        None if fn is None else fn(env)
                        for _, _, fn in specs
                    )
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [values]
                    else:
                        bucket.append(values)
        out: list[tuple[str, Row]] = []
        head_name = self.head_name
        arity = self.arity
        group_fns = self.group_fns
        if single:
            i, func, fn = specs[0]
            for key, values in groups.items():
                row: list[Any] = [None] * arity
                for slot, (gi, _fn) in enumerate(group_fns):
                    row[gi] = key[slot]
                if fn is None:
                    row[i] = len(values)  # count<*>: one per binding
                else:
                    row[i] = aggregate(func, values)
                out.append((head_name, tuple(row)))
            return out
        for key, value_rows in groups.items():
            row = [None] * arity
            for slot, (gi, _fn) in enumerate(group_fns):
                row[gi] = key[slot]
            for slot, (i, func, fn) in enumerate(specs):
                if fn is None:
                    row[i] = len(value_rows)  # count<*>: one per binding
                else:
                    row[i] = aggregate(func, [vr[slot] for vr in value_rows])
            out.append((head_name, tuple(row)))
        return out

    def execute_tracked(self, ev: Any) -> list[tuple[str, Row, tuple]]:
        """Like :meth:`execute`; each aggregate output carries the tuple
        of contributing body environments (one per distinct binding in
        the group), from which the evaluator reconstructs witnesses."""
        envs_fn = self.body.src_envs
        if envs_fn is not None:
            envs = envs_fn(ev, (), None)
        else:
            envs = self.body.body_envs(ev, (), None)
        group_fns = self.group_fns
        agg_specs = self.agg_specs
        groups: dict[Row, list[Row]] = {}
        witnesses: dict[Row, list[Env]] = {}
        for env in envs:
            key = tuple(fn(env) for _, fn in group_fns)
            values = tuple(
                None if fn is None else fn(env) for _, _, fn in agg_specs
            )
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [values]
                witnesses[key] = [env]
            else:
                bucket.append(values)
                witnesses[key].append(env)
        out: list[tuple[str, Row, tuple]] = []
        for key, value_rows in groups.items():
            row: list[Any] = [None] * self.arity
            for slot, (i, _fn) in enumerate(group_fns):
                row[i] = key[slot]
            for slot, (i, func, fn) in enumerate(agg_specs):
                if fn is None:
                    row[i] = len(value_rows)  # count<*>: one per binding
                else:
                    row[i] = aggregate(func, [vr[slot] for vr in value_rows])
            out.append((self.head_name, tuple(row), tuple(witnesses[key])))
        return out

    def explain(self) -> str:
        aggs = ", ".join(f"{func}@{i}" for i, func, _ in self.agg_specs)
        return self.body.explain() + f"\n  => aggregate [{aggs}]"


# ---------------------------------------------------------------------------
# Aggregate folds (shared with the interpreted reference path)
# ---------------------------------------------------------------------------


def _sort_key(value: Any) -> tuple:
    return (type(value).__name__, repr(value))


def aggregate(func: str, values: list[Any]) -> Any:
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    if func == "list":
        # A deterministic sorted tuple; mixed types fall back to a
        # type-name/repr ordering so the result is still reproducible.
        try:
            return tuple(sorted(values))
        except TypeError:
            return tuple(sorted(values, key=_sort_key))
    # Sketch aggregates: both folds canonicalize their input order
    # internally, so the result is identical whatever order the group's
    # deltas arrived in — the property the sim/asyncio telemetry
    # differential tests depend on (docs/TELEMETRY.md).
    if func == "percentile":
        from ..sketches import fold_percentile

        try:
            return fold_percentile(values)
        except (TypeError, ValueError) as exc:
            raise EvaluationError(f"percentile<>: {exc}") from exc
    if func == "count_distinct_approx":
        from ..sketches import fold_count_distinct

        try:
            return fold_count_distinct(values)
        except (TypeError, ValueError) as exc:
            raise EvaluationError(f"count_distinct_approx<>: {exc}") from exc
    raise EvaluationError(f"unknown aggregate {func}")


# ---------------------------------------------------------------------------
# Compilation driver
# ---------------------------------------------------------------------------


def _compile_body(
    rule: Rule,
    delta_pos: Optional[int],
    catalog: Catalog,
    functions: FunctionLibrary,
) -> tuple:
    steps: list = []
    bound: set[str] = set()
    pos = 0
    for elem in rule.body:
        if isinstance(elem, Atom):
            frozen = frozenset(bound)
            materialized = catalog.is_materialized(elem.name)
            table = catalog.tables.get(elem.name)
            if delta_pos is not None and pos == delta_pos:
                source = _SRC_DELTA
            elif delta_pos is not None and pos > delta_pos:
                source = _SRC_POST_DELTA
            else:
                source = _SRC_NORMAL
            if materialized and source != _SRC_DELTA:
                probe_cols, probe_fns = _probe_spec(elem, frozen, functions)
            else:
                probe_cols, probe_fns = (), ()
            match = _compile_matcher(elem, frozen, probe_cols, functions)
            # Dedup only where duplicates are possible (see
            # codegen.atom_needs_dedup): wildcard columns, minus the
            # keyed-table case where the key is fully visible.  Delta
            # steps always keep it — a primary-key displacement can put
            # two same-key row versions into one delta list.
            needs_dedup = atom_needs_dedup(
                elem, None if source == _SRC_DELTA else table
            )
            steps.append(
                _AtomStep(
                    elem, source, table, probe_cols, probe_fns, match,
                    needs_dedup,
                )
            )
            for arg in elem.args:
                if isinstance(arg, Var) and not arg.is_wildcard:
                    bound.add(arg.name)
            pos += 1
        elif isinstance(elem, NotIn):
            frozen = frozenset(bound)
            atom = elem.atom
            table = catalog.tables.get(atom.name)
            if table is not None:
                probe_cols, probe_fns = _probe_spec(atom, frozen, functions)
            else:
                probe_cols, probe_fns = (), ()
            match = _compile_matcher(atom, frozen, probe_cols, functions)
            steps.append(_NegStep(atom, table, probe_cols, probe_fns, match))
        elif isinstance(elem, Assign):
            steps.append(
                _AssignStep(
                    elem.var.name,
                    compile_expr(elem.expr, functions),
                    elem.var.name in bound,
                )
            )
            bound.add(elem.var.name)
        elif isinstance(elem, Cond):
            steps.append(_CondStep(compile_expr(elem.expr, functions), str(elem)))
        else:  # pragma: no cover - parser prevents this
            raise EvaluationError(f"unknown body element {elem!r}")
    return tuple(steps)


def compile_rule(
    rule: Rule,
    delta_pos: Optional[int],
    catalog: Catalog,
    functions: FunctionLibrary,
) -> JoinPlan:
    """Compile one rule body for one delta position into a JoinPlan."""
    steps = _compile_body(rule, delta_pos, catalog, functions)
    if rule.is_aggregate:
        head_fns = None  # projection handled by AggregatePlan
    else:
        head_fns = tuple(
            compile_expr(a, functions) for a in rule.head.args
        )
    return JoinPlan(rule, delta_pos, steps, head_fns)


class RulePlans:
    """Every compiled plan for one rule: the full-evaluation plan, one
    delta plan per positive body atom, and the aggregate wrapper when the
    head aggregates.

    With ``mode="source"`` each plan is additionally compiled to flat
    Python source (:mod:`repro.overlog.codegen`); the generated text is
    kept in ``sources`` (tag -> source) for inspection (``\\src`` in the
    REPL) and the executable functions land on the plans.  Emission
    failures fall back to the closure step path plan-by-plan and are
    counted in ``codegen_errors``.
    """

    __slots__ = ("rule", "full", "by_pos", "agg", "sources", "codegen_errors")

    def __init__(
        self,
        rule: Rule,
        catalog: Catalog,
        functions: FunctionLibrary,
        mode: str = "closure",
    ):
        self.rule = rule
        self.sources: dict[str, str] = {}
        self.codegen_errors = 0
        self.full = compile_rule(rule, None, catalog, functions)
        if rule.is_aggregate:
            # Aggregates are evaluated once per stratum over the full
            # body (they read only lower strata), never delta-joined.
            self.by_pos: tuple[JoinPlan, ...] = ()
            self.agg: Optional[AggregatePlan] = AggregatePlan(
                rule, self.full, functions
            )
            if mode == "source":
                self._attach_source(
                    self.full, catalog, functions, ("envs", "agg")
                )
        else:
            self.by_pos = tuple(
                compile_rule(rule, pos, catalog, functions)
                for pos in range(len(rule.positives))
            )
            self.agg = None
            if mode == "source":
                kinds = ("plain", "tracked")
                self._attach_source(self.full, catalog, functions, kinds)
                for plan in self.by_pos:
                    self._attach_source(plan, catalog, functions, kinds)

    def _attach_source(
        self,
        plan: JoinPlan,
        catalog: Catalog,
        functions: FunctionLibrary,
        kinds: tuple[str, ...],
    ) -> None:
        from .codegen import Unsupported, generate_plan_source

        try:
            fns, source = generate_plan_source(
                plan.rule, plan.delta_pos, catalog, functions, kinds
            )
        except Unsupported:
            self.codegen_errors += 1
            return
        plan.source = source
        tag = "full" if plan.delta_pos is None else f"delta@{plan.delta_pos}"
        self.sources[tag] = source
        plan.src_execute = fns.get("plain")
        plan.src_execute_tracked = fns.get("tracked")
        plan.src_envs = fns.get("envs")
        if self.agg is not None:
            self.agg.src_pairs = fns.get("agg")

    def explain(self, fires: Optional[int] = None) -> str:
        lines = [str(self.rule)]
        if fires is not None:
            # Cumulative head derivations staged for this rule over the
            # evaluator's life — the same counter the profiler's
            # hot-rules report keys on, so the two cross-reference by
            # rule id.
            lines.append(f"  fires: {fires} cumulative")
        if self.agg is not None:
            lines.append(self.agg.explain())
        else:
            lines.append(self.full.explain())
            lines += [p.explain() for p in self.by_pos]
        return "\n".join(lines)


class PlanCache:
    """All compiled plans for an installed rule set.

    Compiled eagerly at program-install time; ``invalidate`` drops every
    plan (rule addition / program swap), after which the evaluator
    recompiles.  ``compile_count`` counts whole-program compilations so
    tests can assert plans are reused, not rebuilt, across timesteps.

    ``mode`` selects the execution tier the cache compiles for:
    ``"closure"`` (step pipeline only) or ``"source"`` (step pipeline
    plus exec-generated flat functions, the default evaluator tier —
    see :mod:`repro.overlog.codegen`).

    Invalidation flushes *everything* keyed by the outgoing rule set:
    the plans, the cached generated source, and — when a profiler is
    attached (``self.profiler``, set by ``Evaluator.attach_profiler``) —
    the profiler's per-(rule, tag) sample stats, which would otherwise
    attribute a new program's timings to old rules of the same name.
    """

    def __init__(
        self,
        catalog: Catalog,
        functions: FunctionLibrary,
        mode: str = "closure",
    ):
        self.catalog = catalog
        self.functions = functions
        self.mode = mode
        self._by_rule: dict[int, RulePlans] = {}
        self._rules: tuple[Rule, ...] = ()
        self.compile_count = 0
        self.codegen_errors = 0
        # (rule name, plan tag) -> generated source text, for \src.
        self.generated: dict[tuple[str, str], str] = {}
        self.profiler = None

    def compile_program(self, rules: tuple[Rule, ...]) -> None:
        """Compile every rule × delta-position up front."""
        self._rules = rules  # keeps ids stable while plans are cached
        self._by_rule = {
            id(rule): self._compile_one(rule) for rule in rules
        }
        self.compile_count += 1

    def _compile_one(self, rule: Rule) -> RulePlans:
        rp = RulePlans(rule, self.catalog, self.functions, mode=self.mode)
        self.codegen_errors += rp.codegen_errors
        for tag, source in rp.sources.items():
            self.generated[(rule.name, tag)] = source
        return rp

    def invalidate(self) -> None:
        self._by_rule = {}
        self._rules = ()
        self.generated = {}
        if self.profiler is not None:
            self.profiler.invalidate()

    @property
    def plans(self) -> list[RulePlans]:
        return list(self._by_rule.values())

    def plans_for(self, rule: Rule) -> RulePlans:
        rp = self._by_rule.get(id(rule))
        if rp is None:
            # A rule installed outside compile_program (defensive; the
            # evaluator recompiles on any rule-set change).
            rp = self._compile_one(rule)
            self._by_rule[id(rule)] = rp
            self._rules = self._rules + (rule,)
        return rp

    def render_source(self, rule_name: Optional[str] = None) -> str:
        """Generated source text for every cached plan (optionally one
        rule), in rule order — what the REPL's ``\\src`` prints."""
        if self.mode != "source":
            return f"(no generated source: compile_mode={self.mode!r})"
        parts = []
        for rp in self._by_rule.values():
            if rule_name is not None and rp.rule.name != rule_name:
                continue
            for source in rp.sources.values():
                parts.append(source.rstrip("\n"))
            if not rp.sources and (rule_name is not None or rp.codegen_errors):
                parts.append(
                    f"# rule {rp.rule.name}: no generated source "
                    f"(closure-tier fallback)"
                )
        if not parts:
            return (
                f"(no generated source for rule {rule_name!r})"
                if rule_name is not None
                else "(no generated source)"
            )
        return "\n\n".join(parts)

    def explain(
        self,
        rule_name: Optional[str] = None,
        rule_fires: Optional[dict[str, int]] = None,
    ) -> str:
        """Render the cached plans (optionally for one rule) as text.

        ``rule_fires`` — the evaluator's per-rule cumulative fire
        counters — adds a ``fires: N cumulative`` line per rule so plan
        output and profiler output cross-reference by rule id.
        """
        parts = [
            rp.explain(
                None if rule_fires is None
                else rule_fires.get(rp.rule.name, 0)
            )
            for rp in self._by_rule.values()
            if rule_name is None or rp.rule.name == rule_name
        ]
        return "\n\n".join(parts)
