"""Hand-rolled tokenizer for Overlog source text.

Produces a flat list of :class:`Token`.  The grammar is small enough that a
single-pass scanner with one character of lookahead suffices; we avoid
regex-table tricks to keep error positions exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexError

KEYWORDS = {
    "program",
    "define",
    "event",
    "timer",
    "delete",
    "notin",
    "keys",
    "watch",
    "true",
    "false",
    "nil",
}

# Multi-character operators must be listed before their prefixes.
_OPERATORS = [
    ":=",
    ":-",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    ",",
    ";",
    "@",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT VARIABLE NUMBER STRING OP KEYWORD EOF
    value: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Tokenize Overlog source, stripping ``//`` and ``/* */`` comments."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # Whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # Line comment
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        # Block comment
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        # String literal
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            buf: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    esc = source[i + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    advance(2)
                else:
                    buf.append(source[i])
                    advance(1)
            if i >= n:
                raise LexError("unterminated string literal", start_line, start_col)
            advance(1)
            tokens.append(Token("STRING", "".join(buf), start_line, start_col))
            continue
        # Number (integer or float; leading '-' handled by parser as unary op)
        if ch.isdigit():
            start_line, start_col = line, col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("NUMBER", text, start_line, start_col))
            continue
        # Identifier / variable / keyword
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            if text in KEYWORDS:
                tokens.append(Token("KEYWORD", text, start_line, start_col))
            elif text[0].isupper() or text == "_":
                tokens.append(Token("VARIABLE", text, start_line, start_col))
            else:
                tokens.append(Token("IDENT", text, start_line, start_col))
            continue
        # Operators and punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("EOF", "", line, col))
    return tokens
