"""Stratification analysis for Overlog programs.

A program is *stratifiable* when its relations can be assigned integer
strata such that for every rule ``h :- ..., b, ...``:

* ``stratum(h) >= stratum(b)`` for each positive body atom ``b``,
* ``stratum(h) > stratum(b)`` for each negated body atom, and
* ``stratum(h) > stratum(b)`` for *every* body atom when the head contains
  an aggregate (aggregation must see its input complete).

Unstratifiable programs (negation/aggregation through recursion) are
rejected at load time with :class:`StratificationError`.

The evaluator runs strata in ascending order, reaching a fixpoint inside
each stratum before moving on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Program, Rule
from .errors import StratificationError


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    strict: bool  # True for negation / aggregation edges


def _dependency_edges(rules: tuple[Rule, ...]) -> list[_Edge]:
    edges: list[_Edge] = []
    for rule in rules:
        if rule.deferred:
            # @next rules take effect at the next timestep: no same-step
            # dependency from body to head (temporal stratification).
            continue
        head = rule.head.name
        strict_all = rule.is_aggregate
        for atom in rule.positive_atoms():
            edges.append(_Edge(atom.name, head, strict=strict_all))
        for atom in rule.negated_atoms():
            edges.append(_Edge(atom.name, head, strict=True))
    return edges


def _strongly_connected_components(
    nodes: set[str], edges: list[_Edge]
) -> list[set[str]]:
    """Tarjan's algorithm, iterative to survive deep rule chains."""
    adjacency: dict[str, list[str]] = {n: [] for n in nodes}
    for e in edges:
        adjacency[e.src].append(e.dst)

    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = 0

    for root in sorted(nodes):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = adjacency[node]
            for i in range(child_idx, len(children)):
                child = children[i]
                if child not in index_of:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                scc: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def compute_strata(rules: tuple[Rule, ...]) -> dict[str, int]:
    """Assign a stratum to every relation mentioned in ``rules``.

    Raises :class:`StratificationError` if a strict (negation/aggregation)
    edge lies inside a dependency cycle.
    """
    edges = _dependency_edges(rules)
    nodes: set[str] = set()
    for rule in rules:
        nodes.add(rule.head.name)
        for atom in rule.positive_atoms():
            nodes.add(atom.name)
        for atom in rule.negated_atoms():
            nodes.add(atom.name)
    if not nodes:
        return {}

    sccs = _strongly_connected_components(nodes, edges)
    scc_of: dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for name in scc:
            scc_of[name] = i

    for e in edges:
        if e.strict and scc_of[e.src] == scc_of[e.dst]:
            raise StratificationError(
                f"relation {e.dst!r} depends on {e.src!r} through negation or "
                f"aggregation inside a recursive cycle"
            )

    # Condensation is a DAG; longest-path stratum numbering.  Tarjan emits
    # SCCs in reverse topological order, so iterating the list forward
    # visits every SCC after all of its predecessors' strata are final --
    # except that edges go src->dst and Tarjan emits *sinks first*; process
    # in emitted order computing strata by relaxing incoming edges instead.
    scc_edges: dict[int, list[tuple[int, bool]]] = {i: [] for i in range(len(sccs))}
    for e in edges:
        s, d = scc_of[e.src], scc_of[e.dst]
        if s != d:
            scc_edges[d].append((s, e.strict))

    stratum_of_scc: dict[int, int] = {}

    def stratum(scc_idx: int) -> int:
        # Memoized longest path; the condensation is acyclic so plain
        # recursion depth is bounded by the number of SCCs.
        cached = stratum_of_scc.get(scc_idx)
        if cached is not None:
            return cached
        best = 0
        for src, strict in scc_edges[scc_idx]:
            best = max(best, stratum(src) + (1 if strict else 0))
        stratum_of_scc[scc_idx] = best
        return best

    return {name: stratum(scc_of[name]) for name in nodes}


def _rule_stratum(rule: Rule, strata: dict[str, int]) -> int:
    """A rule's evaluation stratum.

    Normal rules run in their head relation's stratum.  Deferred (``@next``)
    rules have no same-step consumers, so they run once their *body* is
    complete: the max stratum over body relations.
    """
    if not rule.deferred:
        return strata.get(rule.head.name, 0)
    body_strata = [
        strata.get(atom.name, 0)
        for atom in (*rule.positive_atoms(), *rule.negated_atoms())
    ]
    return max(body_strata, default=0)


def rules_by_stratum(
    rules: tuple[Rule, ...], strata: dict[str, int]
) -> list[tuple[Rule, ...]]:
    """Group rules into ascending-stratum buckets."""
    if not rules:
        return []
    max_stratum = max(_rule_stratum(r, strata) for r in rules)
    buckets: list[list[Rule]] = [[] for _ in range(max_stratum + 1)]
    for rule in rules:
        buckets[_rule_stratum(rule, strata)].append(rule)
    return [tuple(b) for b in buckets]


def check_program(program: Program) -> dict[str, int]:
    """Validate stratifiability of a whole program; returns the strata map."""
    return compute_strata(program.rules)
